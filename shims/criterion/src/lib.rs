//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds where crates.io is unreachable, so the real
//! criterion cannot be vendored. The shim keeps `cargo bench` working with
//! the same bench sources: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group` with
//! `throughput`/`sample_size`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — calibrate an iteration count to a
//! target batch time, then report min/mean/max per-iteration wall time over
//! a handful of samples. No statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (an alias of the std hint).
pub use std::hint::black_box;

const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, self.sample_size, f);
        self
    }

    /// Opens a named group; settings on the group apply to its benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// How many bytes/elements one iteration processes, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to report a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: double the iteration count until one batch reaches the
    // target time (or the count gets large enough for stable division).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut b);
        if b.elapsed >= TARGET_BATCH || b.iters >= 1 << 20 {
            break;
        }
        b.iters *= 2;
    }
    let iters = b.iters;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  thrpt: {}/s", human_bytes(n as f64 / mean)),
        Throughput::Elements(n) => format!("  thrpt: {} elem/s", human_count(n as f64 / mean)),
    });
    println!(
        "{id:<40} time: [{} {} {}]{}",
        human_time(min),
        human_time(mean),
        human_time(max),
        rate.unwrap_or_default()
    );
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn human_bytes(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} GB", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} MB", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} KB", v / 1e3)
    } else {
        format!("{v:.0} B")
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_apply_settings() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
