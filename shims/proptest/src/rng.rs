//! The deterministic generator driving every strategy.

/// A SplitMix64 PRNG seeded from the test's module path, so every test
/// function explores a stable stream of cases run after run. Set
/// `PROPTEST_SEED=<u64>` to perturb all streams at once.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path gives distinct, stable seeds per test.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`). The modulo bias is
    /// negligible for test-case generation.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        // Overwhelmingly likely to differ.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
