//! The [`Strategy`] trait and the core combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
        U: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into one level of structure. `depth` bounds
    /// the nesting; the size/branch hints are accepted for signature
    /// compatibility and ignored.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat);
            let leaf = base.clone();
            // Bottom out early 1 time in 4 so generated trees vary in depth.
            strat = BoxedStrategy::new(move |rng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        strat
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }

    /// Uniform choice over `arms` (the engine behind [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn union(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::new(move |rng| {
            let i = rng.below(arms.len() as u64) as usize;
            arms[i].generate(rng)
        })
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Regex-lite string strategies: a pattern made of literal characters and
/// character classes with optional `{m,n}` repeats (the subset the
/// workspace's tests use, e.g. `"[a-z][a-z0-9_]{0,8}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&v));
            let u = (0u8..63).generate(&mut rng);
            assert!(u < 63);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = crate::prop_oneof![(0i64..10).prop_map(|v| v * 2), Just(99i64)];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i64..5)
            .prop_map(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = TestRng::for_test("rec");
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 5);
        }
    }
}
