//! `prop::collection`: variable-length collections.

use std::ops::Range;

use crate::strategy::{BoxedStrategy, Strategy};

/// Generates a `Vec` whose length is drawn uniformly from `len` and whose
/// elements come from `elem`.
pub fn vec<S>(elem: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    assert!(len.start < len.end, "empty length range");
    BoxedStrategy::new(move |rng| {
        let n = len.start + rng.below((len.end - len.start) as u64) as usize;
        (0..n).map(|_| elem.generate(rng)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(0i64..10, 2..5);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|e| (0..10).contains(e)));
        }
    }
}
