//! `prop::array`: fixed-size arrays drawn from one element strategy.

use crate::strategy::{BoxedStrategy, Strategy};

/// `[T; 3]` with every element from `s`.
pub fn uniform3<S>(s: S) -> BoxedStrategy<[S::Value; 3]>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy::new(move |rng| std::array::from_fn(|_| s.generate(rng)))
}

/// `[T; 4]` with every element from `s`.
pub fn uniform4<S>(s: S) -> BoxedStrategy<[S::Value; 4]>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy::new(move |rng| std::array::from_fn(|_| s.generate(rng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn arrays_fill_from_strategy() {
        let mut rng = TestRng::for_test("arr");
        let a = uniform3(-5i64..5).generate(&mut rng);
        assert!(a.iter().all(|v| (-5..5).contains(v)));
        let b = uniform4(0u8..2).generate(&mut rng);
        assert!(b.iter().all(|v| *v < 2));
    }
}
