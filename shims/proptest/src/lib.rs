//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the real proptest cannot be vendored. This shim reimplements exactly the
//! API surface the repository's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`,
//! * integer-range, tuple, [`Just`], and regex-lite `&str` strategies,
//! * `prop::collection::vec`, `prop::array::uniform3`/`uniform4`,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] macros and [`ProptestConfig`].
//!
//! Semantics differ from real proptest in two deliberate ways: generation
//! is driven by a deterministic per-test PRNG (seed derived from the test
//! path, overridable with `PROPTEST_SEED`), and failing cases are *not*
//! shrunk — the failing assertion panics directly with the generated
//! values in scope of the panic message.

pub mod array;
pub mod collection;
pub mod rng;
pub mod strategy;
mod string;

/// `prop::` paths as the real crate's prelude exposes them.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Per-test-function configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports the two shapes the workspace uses: an optional leading
/// `#![proptest_config(..)]` inner attribute, then any number of
/// `#[test] fn name(arg in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under proptest's name; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under proptest's name; panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::BoxedStrategy::union(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
