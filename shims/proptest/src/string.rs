//! Regex-lite string generation.
//!
//! Supports the pattern subset the workspace's tests use: a sequence of
//! literal characters and character classes, each optionally followed by a
//! `{n}` or `{m,n}` repeat. Classes support ranges (`a-z`), escapes
//! (`\\`), leading-`^` negation, `&&` intersection, and nested bracketed
//! classes on either side of `&&` (e.g. `[ -~&&[^"\\]]`).

use crate::rng::TestRng;

/// ASCII membership bitmap.
type Bitmap = [bool; 128];

struct Atom {
    set: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(atom.set[rng.below(atom.set.len() as u64) as usize]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let cs: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < cs.len() {
        let set = match cs[i] {
            '[' => {
                let end = class_end(&cs, i);
                let map = class_bitmap(&cs[i + 1..end]);
                i = end + 1;
                bitmap_chars(&map)
            }
            '\\' => {
                assert!(i + 1 < cs.len(), "dangling escape in pattern {pattern}");
                i += 2;
                vec![cs[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < cs.len() && cs[i] == '{' {
            let close = cs[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unterminated repeat in pattern {pattern}"));
            let body: String = cs[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("repeat lower bound"),
                    hi.parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern}"
        );
        assert!(min <= max, "inverted repeat bounds in pattern {pattern}");
        out.push(Atom { set, min, max });
    }
    out
}

/// Index of the `]` matching the `[` at `open`, honouring nesting/escapes.
fn class_end(cs: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < cs.len() {
        match cs[i] {
            '\\' => i += 1,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    panic!("unterminated character class");
}

/// Evaluates class *contents* (the chars between the brackets): top-level
/// `&&`-separated parts are intersected.
fn class_bitmap(contents: &[char]) -> Bitmap {
    let mut parts: Vec<&[char]> = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    let mut i = 0;
    while i < contents.len() {
        match contents[i] {
            '\\' => i += 1,
            '[' => depth += 1,
            ']' => depth -= 1,
            '&' if depth == 0 && contents.get(i + 1) == Some(&'&') => {
                parts.push(&contents[start..i]);
                i += 1;
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&contents[start..]);

    let mut result: Option<Bitmap> = None;
    for part in parts {
        let m = if part.first() == Some(&'[') {
            class_bitmap(&part[1..class_end(part, 0)])
        } else {
            flat_bitmap(part)
        };
        result = Some(match result {
            None => m,
            Some(prev) => std::array::from_fn(|i| prev[i] && m[i]),
        });
    }
    result.expect("class has at least one part")
}

/// A flat (non-nested) item list: optional leading `^`, then single chars,
/// escapes, and ranges.
fn flat_bitmap(items: &[char]) -> Bitmap {
    let (negated, items) = match items.first() {
        Some('^') => (true, &items[1..]),
        _ => (false, items),
    };
    // Decode escapes first: (char, was_escaped).
    let mut toks: Vec<(char, bool)> = Vec::new();
    let mut i = 0;
    while i < items.len() {
        if items[i] == '\\' && i + 1 < items.len() {
            toks.push((items[i + 1], true));
            i += 2;
        } else {
            toks.push((items[i], false));
            i += 1;
        }
    }
    let mut set = [false; 128];
    let mut j = 0;
    while j < toks.len() {
        if j + 2 < toks.len() && toks[j + 1] == ('-', false) {
            let (lo, hi) = (toks[j].0, toks[j + 2].0);
            assert!(
                lo.is_ascii() && hi.is_ascii() && lo <= hi,
                "bad range {lo}-{hi}"
            );
            for b in lo as u8..=hi as u8 {
                set[b as usize] = true;
            }
            j += 3;
        } else {
            let c = toks[j].0;
            assert!(c.is_ascii(), "non-ASCII class member {c:?}");
            set[c as usize] = true;
            j += 1;
        }
    }
    if negated {
        // Negation is relative to the printable-ASCII universe (plus tab
        // and newline) — ample for test-input generation.
        let mut universe = [false; 128];
        for b in 0x20u8..=0x7e {
            universe[b as usize] = true;
        }
        universe[b'\t' as usize] = true;
        universe[b'\n' as usize] = true;
        return std::array::from_fn(|i| universe[i] && !set[i]);
    }
    set
}

fn bitmap_chars(map: &Bitmap) -> Vec<char> {
    (0..128u8)
        .filter(|&b| map[b as usize])
        .map(char::from)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string")
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn intersection_with_negated_nested_class() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("[ -~&&[^\"\\\\]]{0,12}", &mut r);
            assert!(s.len() <= 12);
            for c in s.chars() {
                assert!((' '..='~').contains(&c), "{c:?}");
                assert!(c != '"' && c != '\\', "{c:?}");
            }
        }
    }

    #[test]
    fn literals_and_fixed_repeats() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate("a{3}", &mut r), "aaa");
    }
}
