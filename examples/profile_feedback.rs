//! The full IFPROBBER feedback loop, as a user of the paper's toolchain
//! would have driven it:
//!
//! 1. compile a program,
//! 2. run it over several datasets, folding each run's branch counters
//!    into the profile database,
//! 3. write the accumulated counts out as `!MF! IFPROB` directives,
//! 4. feed the directives into a *fresh compilation* of the same source,
//! 5. build predictors under all three combination rules and compare.
//!
//! ```text
//! cargo run --release --example profile_feedback
//! ```

use fisher92::lang::compile;
use fisher92::predict::{evaluate, BreakConfig, Predictor};
use fisher92::profile::{combine, directives, CombineRule, ProfileDb};
use fisher92::report::Table;
use fisher92::vm::{Input, Vm};

const SOURCE: &str = r#"
// A tiny interpreter-flavoured program: dispatch over an input tape.
fn main(tape: [int], n: int) {
    var acc: int = 0;
    var skips: int = 0;
    for (var i: int = 0; i < n; i = i + 1) {
        var op: int = tape[i];
        if (op == 0) { acc = acc + 1; }
        else if (op == 1) { acc = acc - 1; }
        else if (op == 2) { acc = acc * 2; }
        else if (op == 3) { if (acc > 1000) { acc = acc / 2; } }
        else { skips = skips + 1; }
    }
    emit(acc);
    emit(skips);
}
"#;

fn tape(seed: u64, n: usize, bias: [u64; 5]) -> Vec<i64> {
    // A crude weighted opcode stream.
    let total: u64 = bias.iter().sum();
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut roll = (state >> 33) % total;
            for (op, w) in bias.iter().enumerate() {
                if roll < *w {
                    return op as i64;
                }
                roll -= w;
            }
            4
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE)?;

    // Three training datasets with different opcode mixes.
    let datasets = [
        ("increments", tape(1, 20_000, [6, 1, 1, 1, 1])),
        ("balanced", tape(2, 20_000, [2, 2, 2, 2, 2])),
        ("doublers", tape(3, 20_000, [1, 1, 5, 2, 1])),
    ];

    let mut db = ProfileDb::new();
    for (name, data) in &datasets {
        let n = data.len() as i64;
        let run = Vm::new(&program).run(&[Input::Ints(data.clone()), Input::Int(n)])?;
        db.record(name, &run.stats.branches);
        println!(
            "profiled {name:<11} {:>8} branch executions",
            run.stats.branches.total_executed()
        );
    }

    // Write the database back as source-level directives, then parse them
    // against a fresh compilation — the counts survive recompilation
    // because they are keyed to source branches.
    let accumulated = combine(
        &db.iter().map(|(_, c)| c).collect::<Vec<_>>(),
        CombineRule::Unscaled,
    );
    let mut raw = fisher92::vm::BranchCounts::new();
    for (id, e, t) in accumulated.iter() {
        raw.add(id, e as u64, t as u64);
    }
    let text = directives::write_directives(&program, &raw);
    println!("\ndirective file ({} lines):", text.lines().count());
    for line in text.lines().take(3) {
        println!("  {line}");
    }
    println!("  …");
    let recompiled = compile(SOURCE)?;
    let parsed = directives::parse_directives(&recompiled, &text)?;

    // A held-out target dataset with yet another mix.
    let target_data = tape(99, 40_000, [1, 3, 1, 4, 1]);
    let n = target_data.len() as i64;
    let target = Vm::new(&recompiled).run(&[Input::Ints(target_data), Input::Int(n)])?;

    let cfg = BreakConfig::fig2();
    let mut table = Table::new(&["PREDICTOR", "INSTRS/BREAK", "% CORRECT"]);
    let mut add = |name: &str, p: &Predictor| {
        let m = evaluate(&target.stats, p, cfg);
        table.row_owned(vec![
            name.to_string(),
            format!("{:.1}", m.instrs_per_break),
            format!("{:.1}%", m.correct_fraction() * 100.0),
        ]);
    };

    add(
        "directives (unscaled db)",
        &Predictor::from_counts(&parsed, Default::default()),
    );
    for rule in [
        CombineRule::Scaled,
        CombineRule::Unscaled,
        CombineRule::Polling,
    ] {
        let profiles: Vec<_> = db.iter().map(|(_, c)| c).collect();
        let p = Predictor::from_weighted(&combine(&profiles, rule), Default::default());
        add(&format!("{rule:?}"), &p);
    }
    add("loop heuristic", &Predictor::heuristic(&recompiled));
    add(
        "self (upper bound)",
        &Predictor::from_counts(&target.stats.branches, Default::default()),
    );

    println!("\npredicting a held-out dataset:");
    print!("{}", table.render());
    Ok(())
}
