//! Static vs dynamic branch prediction on one program — the tradeoff the
//! paper's introduction frames (static: free at run time, whole-program
//! knowledge; dynamic: adapts while running, costs hardware).
//!
//! Records a full branch trace, then compares: the loop heuristic, profile
//! feedback from a different dataset, self-prediction (the static bound),
//! 1-bit and 2-bit hardware counters, and the profile-seeded 2-bit hybrid.
//!
//! ```text
//! cargo run --release --example static_vs_dynamic
//! ```

use fisher92::lang::compile;
use fisher92::predict::dynamic::{mispredict_gaps, simulate, simulate_seeded, DynamicScheme};
use fisher92::predict::{evaluate, BreakConfig, Direction, Predictor};
use fisher92::report::Table;
use fisher92::vm::{Input, Vm, VmConfig};

const SOURCE: &str = r#"
// A hash-join-ish kernel: build a table from one array, probe with another.
global table_keys: [int];
global table_vals: [int];

fn hash(k: int) -> int {
    var h: int = (k * 2654435761) % 4096;
    if (h < 0) { h = h + 4096; }
    return h;
}

fn insert(k: int, v: int) {
    var h: int = hash(k);
    while (table_keys[h] != 0) {
        h = h + 1;
        if (h == 4096) { h = 0; }
    }
    table_keys[h] = k;
    table_vals[h] = v;
}

fn probe(k: int) -> int {
    var h: int = hash(k);
    while (table_keys[h] != 0) {
        if (table_keys[h] == k) { return table_vals[h]; }
        h = h + 1;
        if (h == 4096) { h = 0; }
    }
    return -1;
}

fn main(build: [int], probes: [int]) {
    table_keys = new_int(4096);
    table_vals = new_int(4096);
    for (var i: int = 0; i < len(build); i = i + 1) {
        insert(build[i], i + 1);
    }
    var hits: int = 0;
    var sum: int = 0;
    for (var j: int = 0; j < len(probes); j = j + 1) {
        var v: int = probe(probes[j]);
        if (v >= 0) { hits = hits + 1; sum = sum + v; }
    }
    emit(hits);
    emit(sum);
}
"#;

fn keys(seed: i64, n: usize, range: i64) -> Vec<i64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = (s * 1103515245 + 12345) % 2147483647;
            1 + s.abs() % range
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE)?;
    let run_traced = |build: Vec<i64>, probes: Vec<i64>| {
        Vm::with_config(
            &program,
            VmConfig {
                record_branch_trace: true,
                ..VmConfig::default()
            },
        )
        .run(&[Input::Ints(build), Input::Ints(probes)])
    };

    // Train on a miss-heavy workload, test on a hit-heavy one.
    let train = run_traced(keys(1, 1500, 100_000), keys(2, 8_000, 1_000_000))?;
    let test = run_traced(keys(3, 1500, 100_000), keys(4, 20_000, 120_000))?;

    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&["PREDICTOR", "KIND", "% CORRECT", "INSTRS/BREAK"]);
    let trace = &test.branch_trace;
    let unavoidable = test.stats.events.unavoidable();
    let ipb = |mispredicts: u64| {
        test.stats.total_instrs as f64 / (mispredicts + unavoidable).max(1) as f64
    };

    let heuristic = Predictor::heuristic(&program);
    let from_train = Predictor::from_counts(&train.stats.branches, Direction::NotTaken);
    let oracle = Predictor::from_counts(&test.stats.branches, Direction::NotTaken);
    for (name, p) in [
        ("loop heuristic", &heuristic),
        ("profile (other dataset)", &from_train),
        ("self (static bound)", &oracle),
    ] {
        let m = evaluate(&test.stats, p, cfg);
        t.row_owned(vec![
            name.to_string(),
            "static".to_string(),
            format!("{:.1}%", m.correct_fraction() * 100.0),
            format!("{:.1}", m.instrs_per_break),
        ]);
    }
    for (name, r) in [
        (
            "1-bit counters",
            simulate(trace, DynamicScheme::OneBit, Direction::NotTaken),
        ),
        (
            "2-bit counters",
            simulate(trace, DynamicScheme::TwoBit, Direction::NotTaken),
        ),
        (
            "2-bit seeded by profile",
            simulate_seeded(trace, DynamicScheme::TwoBit, &from_train),
        ),
    ] {
        t.row_owned(vec![
            name.to_string(),
            "dynamic".to_string(),
            format!("{:.1}%", r.correct_fraction() * 100.0),
            format!("{:.1}", ipb(r.mispredicted)),
        ]);
    }
    print!("{}", t.render());

    let gaps = mispredict_gaps(trace, &from_train);
    println!(
        "\nrun lengths between mispredicts (profile predictor): \
         mean {:.0}, p10 {}, median {}, p90 {} — {}x p90/p10 spread",
        gaps.mean,
        gaps.p10,
        gaps.p50,
        gaps.p90,
        gaps.p90.checked_div(gaps.p10).unwrap_or(0)
    );
    Ok(())
}
