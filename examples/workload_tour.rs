//! Tour one program of the paper's sample base: run every dataset, then
//! print the Figure 2 / Figure 3 views for that program.
//!
//! ```text
//! cargo run --release --example workload_tour          # default: li
//! cargo run --release --example workload_tour espresso
//! ```

use fisher92::predict::experiment::{self, DatasetRun};
use fisher92::predict::BreakConfig;
use fisher92::profile::CombineRule;
use fisher92::report::Table;
use fisher92::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "li".to_string());
    let all = suite();
    let Some(w) = all.iter().find(|w| w.name == name) else {
        eprintln!(
            "unknown workload `{name}`; available: {}",
            all.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    };

    println!("{} — {}", w.name, w.description);
    let program = w.compile()?;
    println!(
        "{} functions, {} static branches, {} static instructions\n",
        program.functions.len(),
        program.static_branch_count(),
        program.static_instr_count()
    );

    let mut runs = Vec::new();
    for d in &w.datasets {
        let run = w.run(&program, d)?;
        println!(
            "ran {:<12} {:>12} instructions, {:>10} branch executions",
            d.name,
            run.stats.total_instrs,
            run.stats.branches.total_executed()
        );
        runs.push(DatasetRun::new(d.name.clone(), run.stats));
    }

    let cfg = BreakConfig::fig2();
    let mut t = Table::new(&[
        "DATASET",
        "SELF I/B",
        "OTHERS I/B",
        "BEST SINGLE",
        "WORST SINGLE",
        "% TAKEN",
    ]);
    for i in 0..runs.len() {
        let self_m = experiment::self_metrics(&runs[i], cfg);
        let others = if runs.len() > 1 {
            format!(
                "{:.1}",
                experiment::loo_metrics(&runs, i, CombineRule::Scaled, cfg).instrs_per_break
            )
        } else {
            "-".to_string()
        };
        let (best, worst) = match experiment::best_worst(&runs, i, cfg) {
            Some(bw) => (
                format!("{} ({:.0}%)", bw.best.0, bw.best.1 * 100.0),
                format!("{} ({:.0}%)", bw.worst.0, bw.worst.1 * 100.0),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        let taken = runs[i]
            .percent_taken()
            .map(|p| format!("{:.1}%", p * 100.0))
            .unwrap_or_default();
        t.row_owned(vec![
            runs[i].dataset.clone(),
            format!("{:.1}", self_m.instrs_per_break),
            others,
            best,
            worst,
            taken,
        ]);
    }
    println!("\n{}", t.render());
    if let Some((lo, hi)) = experiment::percent_taken_spread(&runs) {
        println!(
            "percent-taken spread: {:.1}% (the paper saw ≤9% on everything but spice2g6)",
            (hi - lo) * 100.0
        );
    }
    Ok(())
}
