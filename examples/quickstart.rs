//! Quickstart: compile a guest program, profile one run, and use that
//! profile to predict a different run — the paper's core loop in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fisher92::lang::compile;
use fisher92::predict::{evaluate, evaluate_unpredicted, BreakConfig, Predictor};
use fisher92::vm::{Input, Vm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A branchy little program: classify numbers by their Collatz length.
    let program = compile(
        r#"
        fn steps(x: int) -> int {
            var n: int = 0;
            while (x != 1) {
                if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
                n = n + 1;
            }
            return n;
        }
        fn main(limit: int) {
            var long_ones: int = 0;
            for (var i: int = 1; i <= limit; i = i + 1) {
                if (steps(i) > 100) { long_ones = long_ones + 1; }
            }
            emit(long_ones);
        }
        "#,
    )?;

    // Train on one input, test on a much larger one.
    let train = Vm::new(&program).run(&[Input::Int(2_000)])?;
    let test = Vm::new(&program).run(&[Input::Int(20_000)])?;
    println!(
        "training run: {} instructions, {} branch executions",
        train.stats.total_instrs,
        train.stats.branches.total_executed()
    );

    // Without prediction, every conditional branch is a break in control.
    let unpredicted = evaluate_unpredicted(&test.stats, BreakConfig::fig1());
    println!(
        "no prediction:      {:6.1} instructions per break",
        unpredicted.instrs_per_break
    );

    // Feedback from the training run.
    let predictor = Predictor::from_counts(&train.stats.branches, Default::default());
    let predicted = evaluate(&test.stats, &predictor, BreakConfig::fig2());
    println!(
        "profile feedback:   {:6.1} instructions per break ({:.1}% branches correct)",
        predicted.instrs_per_break,
        predicted.correct_fraction() * 100.0
    );

    // The self-prediction upper bound: the test run predicting itself.
    let oracle = Predictor::from_counts(&test.stats.branches, Default::default());
    let best = evaluate(&test.stats, &oracle, BreakConfig::fig2());
    println!(
        "best possible:      {:6.1} instructions per break",
        best.instrs_per_break
    );
    println!(
        "feedback recovered {:.0}% of the oracle bound",
        100.0 * predicted.instrs_per_break / best.instrs_per_break
    );
    Ok(())
}
