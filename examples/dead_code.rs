//! The Table 1 experiment on a single program: measure, dynamically, how
//! much of a run the compiler's dead-code elimination would have removed —
//! the quantity the paper had to leave *in* to keep its two measurement
//! tools' branch counts in sync.
//!
//! ```text
//! cargo run --release --example dead_code
//! ```

use fisher92::lang::compile;
use fisher92::opt::Pipeline;
use fisher92::report::Table;
use fisher92::vm::{Input, Vm};

const SOURCE: &str = r#"
// A program carrying the kinds of dead weight real code accretes:
// configuration flags fixed at build time, generality tests with constant
// outcomes, and defensive checks that never fire.
fn checksum(data: [int], n: int) -> int {
    var h: int = 0;
    for (var i: int = 0; i < n; i = i + 1) {
        var scale: int = 31 * 1;                   // folds to a constant
        h = (h * scale + data[i]) % 1000000007;
    }
    return h;
}

fn main(data: [int], n: int) {
    var debug: int = 0;        // build-time flags, fixed for this build
    var wide_mode: int = 0;
    var total: int = 0;
    for (var round: int = 0; round < 40; round = round + 1) {
        var v: int = checksum(data, n);
        if (wide_mode) { v = v * 65536 + 17; }     // constant-false branch
        total = (total + v) % 1000000007;
        if (debug) { emit(total); }                // constant-false branch
    }
    emit(total);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data: Vec<i64> = (0..4000).map(|i| (i * 37 + 11) % 251).collect();
    let n = data.len() as i64;
    let inputs = [Input::Ints(data), Input::Int(n)];

    // The profiling build: optimization off, exactly as the paper ran.
    let base = compile(SOURCE)?;
    let base_run = Vm::new(&base).run(&inputs)?;

    // The production build: full classical pipeline with DCE.
    let mut opt = base.clone();
    Pipeline::standard().run(&mut opt);
    let opt_run = Vm::new(&opt).run(&inputs)?;

    assert_eq!(
        base_run.output, opt_run.output,
        "optimization must not change results"
    );

    let mut t = Table::new(&["BUILD", "DYN INSTRS", "STATIC BRANCHES", "DYN BRANCHES"]);
    for (name, program, run) in [
        ("profiling (DCE off)", &base, &base_run),
        ("optimized", &opt, &opt_run),
    ] {
        t.row_owned(vec![
            name.to_string(),
            run.stats.total_instrs.to_string(),
            program.static_branch_count().to_string(),
            run.stats.branches.total_executed().to_string(),
        ]);
    }
    print!("{}", t.render());

    let dead = 1.0 - opt_run.stats.total_instrs as f64 / base_run.stats.total_instrs as f64;
    println!("\ndead code (dynamic): {:.0}%", dead * 100.0);
    println!(
        "branches with constant outcomes removed: {}",
        base.static_branch_count() - opt.static_branch_count()
    );

    // The branch counts of the surviving branches are identical across
    // builds — the property that lets one profile serve any compilation.
    for id in opt.live_branches().keys() {
        assert_eq!(
            base_run.stats.branches.get(*id),
            opt_run.stats.branches.get(*id)
        );
    }
    println!("surviving branch ids report identical counts in both builds ✓");
    Ok(())
}
