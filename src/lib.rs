#![warn(missing_docs)]

//! # fisher92
//!
//! A full reproduction of Joseph A. Fisher and Stefan M. Freudenberger,
//! *Predicting Conditional Branch Directions From Previous Runs of a
//! Program* (ASPLOS V, 1992) — profile-guided static branch prediction,
//! measured in instructions per break in control.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ir`] — the Trace-style RISC-level IR ([`trace_ir`]),
//! * [`lang`] — the guest-language compiler ([`mflang`]),
//! * [`opt`] — classical optimizer passes, including the Table 1 DCE
//!   ([`mfopt`]),
//! * [`vm`] — the counting interpreter: MFPixie + IFPROBBER in one
//!   ([`trace_vm`]),
//! * [`profile`] — profile database, combination rules, directive feedback
//!   ([`ifprob`]),
//! * [`predict`] — the paper's contribution: predictors and the
//!   instructions-per-break metrics ([`bpredict`]),
//! * [`workloads`] — the Table 2 program sample base ([`mfwork`]),
//! * [`report`] — table/chart rendering ([`mfreport`]).
//!
//! ```
//! use fisher92::predict::{evaluate, BreakConfig, Predictor};
//! use fisher92::lang::compile;
//! use fisher92::vm::{Input, Vm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile(
//!     "fn main(n: int) {
//!         var hits: int = 0;
//!         for (var i: int = 0; i < n; i = i + 1) {
//!             if (i % 10 == 0) { hits = hits + 1; }
//!         }
//!         emit(hits);
//!     }",
//! )?;
//! let train = Vm::new(&program).run(&[Input::Int(1000)])?;
//! let test = Vm::new(&program).run(&[Input::Int(7777)])?;
//! let predictor = Predictor::from_counts(&train.stats.branches, Default::default());
//! let metrics = evaluate(&test.stats, &predictor, BreakConfig::fig2());
//! assert!(metrics.correct_fraction() > 0.85);
//! # Ok(())
//! # }
//! ```

pub use bpredict as predict;
pub use ifprob as profile;
pub use mflang as lang;
pub use mfopt as opt;
pub use mfreport as report;
pub use mfwork as workloads;
pub use trace_ir as ir;
pub use trace_vm as vm;
