//! Metamorphic property tests over *structured* random programs (loops,
//! nested ifs, variable mutation): every compilation configuration —
//! unoptimized, fully optimized, if-conversion off, inlined — must produce
//! identical observable output, and the source-level branch counters of
//! surviving branches must be identical across builds.

use proptest::prelude::*;

use fisher92::lang::{compile, compile_with, CompileOptions};
use fisher92::opt::{Inliner, Pipeline};
use fisher92::vm::{Input, Vm};

/// A bounded statement tree that always lowers to a terminating program.
#[derive(Clone, Debug)]
enum S {
    /// `v<i> = <expr over vars and constants>;`
    Assign(usize, Ex),
    /// `emit(v<i>);`
    Emit(usize),
    /// `if (cond) { .. } else { .. }`
    If(Cond, Vec<S>, Vec<S>),
    /// `for (l = 0; l < k; l = l + 1) { .. }` with constant k ≤ 5.
    Loop(u8, Vec<S>),
}

#[derive(Clone, Debug)]
enum Ex {
    Const(i64),
    Var(usize),
    Add(usize, Box<Ex>),
    Mul(usize, i64),
    Xor(usize, usize),
}

#[derive(Clone, Debug)]
enum Cond {
    /// `v<i> < k`
    Lt(usize, i64),
    /// `v<i> % 2 == 0`
    Even(usize),
    /// `v<i> < v<j> && v<j> != k` — forces short-circuit branches.
    AndPair(usize, usize, i64),
}

const NVARS: usize = 4;

fn expr_src(e: &Ex) -> String {
    match e {
        Ex::Const(k) => {
            if *k < 0 {
                format!("(0 - {})", -k)
            } else {
                k.to_string()
            }
        }
        Ex::Var(i) => format!("v{i}"),
        Ex::Add(i, rest) => format!("(v{i} + {})", expr_src(rest)),
        Ex::Mul(i, k) => format!("(v{i} * {k})"),
        Ex::Xor(i, j) => format!("(v{i} ^ v{j})"),
    }
}

fn cond_src(c: &Cond) -> String {
    match c {
        Cond::Lt(i, k) => format!("v{i} < {k}"),
        Cond::Even(i) => format!("v{i} % 2 == 0"),
        Cond::AndPair(i, j, k) => format!("v{i} < v{j} && v{j} != {k}"),
    }
}

fn stmt_src(s: &S, depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    match s {
        S::Assign(i, e) => out.push_str(&format!("{pad}v{i} = {};\n", expr_src(e))),
        S::Emit(i) => out.push_str(&format!("{pad}emit(v{i});\n")),
        S::If(c, then_b, else_b) => {
            out.push_str(&format!("{pad}if ({}) {{\n", cond_src(c)));
            for st in then_b {
                stmt_src(st, depth + 1, out);
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for st in else_b {
                stmt_src(st, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        S::Loop(k, body) => {
            let l = format!("l{depth}");
            out.push_str(&format!(
                "{pad}for (var {l}: int = 0; {l} < {k}; {l} = {l} + 1) {{\n"
            ));
            for st in body {
                stmt_src(st, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn program_src(stmts: &[S]) -> String {
    let mut out = String::from("fn main(v0: int, v1: int, v2: int, v3: int) {\n");
    for s in stmts {
        stmt_src(s, 0, &mut out);
    }
    for i in 0..NVARS {
        out.push_str(&format!("    emit(v{i});\n"));
    }
    out.push_str("}\n");
    out
}

fn arb_expr() -> impl Strategy<Value = Ex> {
    prop_oneof![
        (-50i64..50).prop_map(Ex::Const),
        (0..NVARS).prop_map(Ex::Var),
        (0..NVARS, -20i64..20).prop_map(|(i, k)| Ex::Mul(i, k)),
        (0..NVARS, 0..NVARS).prop_map(|(i, j)| Ex::Xor(i, j)),
        (0..NVARS, (-50i64..50).prop_map(Ex::Const)).prop_map(|(i, e)| Ex::Add(i, Box::new(e))),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        (0..NVARS, -20i64..20).prop_map(|(i, k)| Cond::Lt(i, k)),
        (0..NVARS).prop_map(Cond::Even),
        (0..NVARS, 0..NVARS, -9i64..9).prop_map(|(i, j, k)| Cond::AndPair(i, j, k)),
    ]
}

fn arb_stmt() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        (0..NVARS, arb_expr()).prop_map(|(i, e)| S::Assign(i, e)),
        (0..NVARS).prop_map(S::Emit),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                arb_cond(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| S::If(c, t, e)),
            (1u8..5, prop::collection::vec(inner, 1..3)).prop_map(|(k, b)| S::Loop(k, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_builds_agree(
        stmts in prop::collection::vec(arb_stmt(), 1..6),
        vars in prop::array::uniform4(-30i64..30),
    ) {
        let src = program_src(&stmts);
        let inputs: Vec<Input> = vars.iter().map(|&v| Input::Int(v)).collect();

        let base = compile(&src).expect("generated program compiles");
        let reference = Vm::new(&base).run(&inputs).expect("base runs");

        // Optimized.
        let mut opt = base.clone();
        Pipeline::standard().run(&mut opt);
        prop_assert_eq!(opt.validate(), Ok(()));
        let o = Vm::new(&opt).run(&inputs).expect("optimized runs");
        prop_assert_eq!(&o.output, &reference.output, "optimizer changed behaviour\n{}", src);
        prop_assert!(o.stats.total_instrs <= reference.stats.total_instrs);

        // If-conversion off.
        let plain = compile_with(
            &src,
            &CompileOptions { if_conversion: false, ..CompileOptions::default() },
        )
        .expect("compiles");
        let p = Vm::new(&plain).run(&inputs).expect("plain runs");
        prop_assert_eq!(&p.output, &reference.output, "if-conversion changed behaviour\n{}", src);

        // Inlined (single function here, but the pass must be a no-op that
        // stays valid).
        let mut inl = base.clone();
        Inliner::default().run(&mut inl);
        prop_assert_eq!(inl.validate_inlined(), Ok(()));
        let i = Vm::new(&inl).run(&inputs).expect("inlined runs");
        prop_assert_eq!(&i.output, &reference.output);
    }

    #[test]
    fn surviving_branch_counts_identical_across_builds(
        stmts in prop::collection::vec(arb_stmt(), 1..6),
        vars in prop::array::uniform4(-30i64..30),
    ) {
        let src = program_src(&stmts);
        let inputs: Vec<Input> = vars.iter().map(|&v| Input::Int(v)).collect();
        let base = compile(&src).expect("compiles");
        let mut opt = base.clone();
        Pipeline::standard().run(&mut opt);
        let b = Vm::new(&base).run(&inputs).expect("runs");
        let o = Vm::new(&opt).run(&inputs).expect("runs");
        for id in opt.live_branches().keys() {
            prop_assert_eq!(
                b.stats.branches.get(*id),
                o.stats.branches.get(*id),
                "branch {:?} diverged\n{}", id, src
            );
        }
    }
}
