//! Integration tests spanning all crates: the full compile → run →
//! profile → predict pipeline on real workloads.

use fisher92::predict::experiment::{self, DatasetRun};
use fisher92::predict::{evaluate, evaluate_unpredicted, BreakConfig, Predictor};
use fisher92::profile::{combine, coverage, overlap, CombineRule, ProfileDb};
use fisher92::workloads::suite;

/// Collect runs for one (cheap) workload.
fn runs_for(name: &str) -> Vec<DatasetRun> {
    let all = suite();
    let w = all
        .iter()
        .find(|w| w.name == name)
        .expect("workload exists");
    let program = w.compile().expect("compiles");
    w.datasets
        .iter()
        .map(|d| {
            let run = w.run(&program, d).expect("runs");
            DatasetRun::new(d.name.clone(), run.stats)
        })
        .collect()
}

#[test]
fn cross_dataset_prediction_pipeline_on_spiff() {
    let runs = runs_for("spiff");
    assert_eq!(runs.len(), 3);
    let cfg = BreakConfig::fig2();

    for i in 0..runs.len() {
        let self_m = experiment::self_metrics(&runs[i], cfg);
        // Self prediction is the bound for every other predictor.
        let loo = experiment::loo_metrics(&runs, i, CombineRule::Scaled, cfg);
        assert!(loo.instrs_per_break <= self_m.instrs_per_break + 1e-9);
        assert!(loo.mispredicted >= self_m.mispredicted);
        // Prediction beats no-prediction.
        let none = evaluate_unpredicted(&runs[i].stats, BreakConfig::fig1());
        assert!(
            self_m.instrs_per_break > 2.0 * none.instrs_per_break,
            "{}: prediction gained too little ({} vs {})",
            runs[i].dataset,
            self_m.instrs_per_break,
            none.instrs_per_break
        );
    }
}

#[test]
fn profile_db_accumulation_equals_unscaled_combination() {
    let runs = runs_for("mfcom");
    let mut db = ProfileDb::new();
    for r in &runs {
        db.record("all", &r.stats.branches);
    }
    let from_db = Predictor::from_counts(db.profile("all").unwrap(), Default::default());
    let profiles: Vec<_> = runs.iter().map(|r| &r.stats.branches).collect();
    let from_combine = Predictor::from_weighted(
        &combine(&profiles, CombineRule::Unscaled),
        Default::default(),
    );
    assert_eq!(from_db, from_combine);
}

#[test]
fn coverage_of_self_is_total() {
    let runs = runs_for("doduc");
    for r in &runs {
        let c = coverage(&r.stats.branches, &r.stats.branches);
        assert_eq!(c.dynamic, 1.0);
        assert_eq!(c.agreement, 1.0);
    }
    // doduc's datasets differ only in length: high mutual coverage.
    let c = coverage(&runs[0].stats.branches, &runs[2].stats.branches);
    assert!(c.dynamic > 0.95, "coverage {c:?}");
    assert!(overlap(&runs[0].stats.branches, &runs[2].stats.branches) > 0.9);
}

#[test]
fn optimized_build_profiles_match_on_surviving_branches() {
    let all = suite();
    let w = all.iter().find(|w| w.name == "eqntott").expect("eqntott");
    let base = w.compile().expect("compiles");
    let opt = w.compile_optimized().expect("optimizes");
    let d = w.dataset("add4").expect("dataset");
    let base_run = w.run(&base, d).expect("runs");
    let opt_run = w.run(&opt, d).expect("runs");
    assert_eq!(base_run.output, opt_run.output, "behaviour preserved");
    for id in opt.live_branches().keys() {
        assert_eq!(
            base_run.stats.branches.get(*id),
            opt_run.stats.branches.get(*id),
            "branch identity broken by optimization"
        );
    }
    // A profile collected on the unoptimized build predicts the optimized
    // build's run perfectly (same counts), and vice versa.
    let p = Predictor::from_counts(&base_run.stats.branches, Default::default());
    let m_opt = evaluate(&opt_run.stats, &p, BreakConfig::fig2());
    let m_self = evaluate(
        &opt_run.stats,
        &Predictor::from_counts(&opt_run.stats.branches, Default::default()),
        BreakConfig::fig2(),
    );
    assert_eq!(m_opt.mispredicted, m_self.mispredicted);
}

#[test]
fn unavoidable_breaks_floor_the_metric() {
    // li's eval loop makes indirect-free but call-heavy traffic; with
    // fig2_with_calls the ipb must drop (calls become breaks).
    let runs = runs_for("mfcom");
    for r in &runs {
        let without = experiment::self_metrics(r, BreakConfig::fig2());
        let with = experiment::self_metrics(r, BreakConfig::fig2_with_calls());
        assert!(with.instrs_per_break < without.instrs_per_break);
        assert!(with.breaks > without.breaks);
    }
}

#[test]
fn directive_feedback_reproduces_predictor() {
    use fisher92::profile::directives;
    let all = suite();
    let w = all.iter().find(|w| w.name == "spiff").expect("spiff");
    let program = w.compile().expect("compiles");
    let run = w.run(&program, &w.datasets[2]).expect("runs");
    let text = directives::write_directives(&program, &run.stats.branches);
    let fresh = w.compile().expect("recompiles");
    let parsed = directives::parse_directives(&fresh, &text).expect("parses");
    assert_eq!(
        Predictor::from_counts(&run.stats.branches, Default::default()),
        Predictor::from_counts(&parsed, Default::default()),
    );
}
