//! Regression-corpus replay: every versioned corpus entry under `corpus/`
//! must compile and pass the full mffuzz oracle battery — the differential
//! (unopt vs optimized, cascade vs jump-table), the profile invariants,
//! the trace replay, and the directive round-trip. A bug reintroduced
//! anywhere in the stack that one of these cases once caught fails here.

use std::path::Path;

use mffuzz::{corpus, oracle, FuzzConfig, Fuzzer};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_is_present_and_loads() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus dir readable");
    assert!(
        entries.len() >= 6,
        "expected the versioned corpus (promoted examples + crafted seeds), found {}",
        entries.len()
    );
    for e in &entries {
        assert!(!e.input_sets.is_empty(), "{}: no input sets", e.name);
        mflang::compile(&e.source)
            .unwrap_or_else(|err| panic!("corpus entry '{}' no longer compiles: {err}", e.name));
    }
}

#[test]
fn every_entry_passes_every_oracle() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus dir readable");
    for e in &entries {
        let out = oracle::check_source(&e.source, &e.input_sets, 0);
        assert!(out.compiled, "corpus entry '{}' failed to compile", e.name);
        assert!(
            out.findings.is_empty(),
            "corpus entry '{}' violates oracles: {:?}",
            e.name,
            out.findings
        );
        assert!(
            !out.edges.is_empty(),
            "corpus entry '{}' reported no coverage",
            e.name
        );
    }
}

#[test]
fn fuzzer_replay_over_corpus_is_clean_and_deterministic() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus dir readable");
    let config = FuzzConfig {
        seed: 0xC0FFEE,
        iters: 64,
        jobs: 2,
        minimize: false,
        ..Default::default()
    };
    let a = Fuzzer::new(config.clone(), entries.clone()).run();
    let b = Fuzzer::new(config, entries).run();
    assert!(
        a.findings.is_empty(),
        "corpus-seeded fuzzing found regressions: {}",
        a.deterministic_text()
    );
    assert_eq!(a.deterministic_text(), b.deterministic_text());
}
