//! The paper's headline claims, asserted as tests against the reproduced
//! system. These pin the *shape* of every figure/table: who wins, by
//! roughly what factor, where the outliers sit. (Absolute values differ
//! from the paper — our substrate is a simulator, not a Trace 14/300 — and
//! EXPERIMENTS.md records both sides.)
//!
//! Uses a subset of the suite to stay fast in debug; the `repro` binary
//! covers the whole matrix in release.

use std::sync::OnceLock;

use fisher92::predict::experiment::{self, DatasetRun};
use fisher92::predict::{evaluate, evaluate_unpredicted, BreakConfig, Predictor};
use fisher92::profile::CombineRule;
use fisher92::workloads::{suite, Workload};

struct Collected {
    workload: Workload,
    runs: Vec<DatasetRun>,
    heuristic: Predictor,
}

fn collected() -> &'static Vec<Collected> {
    static DATA: OnceLock<Vec<Collected>> = OnceLock::new();
    DATA.get_or_init(|| {
        // Small-but-diverse subset: one FORTRAN multi-dataset program, the
        // fpppp outlier, and three C programs.
        let names = ["doduc", "fpppp", "gcc", "spiff", "mfcom"];
        suite()
            .into_iter()
            .filter(|w| names.contains(&w.name))
            .map(|w| {
                let program = w.compile().expect("compiles");
                let heuristic = Predictor::heuristic(&program);
                let runs = w
                    .datasets
                    .iter()
                    .map(|d| {
                        let run = w.run(&program, d).expect("runs");
                        DatasetRun::new(d.name.clone(), run.stats)
                    })
                    .collect();
                Collected {
                    workload: w,
                    runs,
                    heuristic,
                }
            })
            .collect()
    })
}

fn find(name: &str) -> &'static Collected {
    collected()
        .iter()
        .find(|c| c.workload.name == name)
        .expect("collected workload")
}

/// §3: "fpppp, with a huge basic block in its inner loop, is very
/// uncharacteristic in having 150-170 instructions per break" — the
/// Figure 1 outlier.
#[test]
fn fpppp_is_the_unpredicted_outlier() {
    let fpppp = find("fpppp");
    let others = ["doduc", "gcc", "spiff", "mfcom"];
    let fpppp_ipb =
        evaluate_unpredicted(&fpppp.runs[0].stats, BreakConfig::fig1()).instrs_per_break;
    for name in others {
        let c = find(name);
        for r in &c.runs {
            let ipb = evaluate_unpredicted(&r.stats, BreakConfig::fig1()).instrs_per_break;
            assert!(
                fpppp_ipb > 5.0 * ipb,
                "fpppp ({fpppp_ipb}) should dwarf {name}/{} ({ipb})",
                r.dataset
            );
        }
    }
}

/// Figure 1: C/integer programs run roughly 5–17 instructions per break
/// unpredicted (we accept a slightly wider band for the reproduction).
#[test]
fn c_programs_unpredicted_band() {
    for name in ["gcc", "spiff", "mfcom"] {
        let c = find(name);
        for r in &c.runs {
            let ipb = evaluate_unpredicted(&r.stats, BreakConfig::fig1()).instrs_per_break;
            assert!(
                (3.0..20.0).contains(&ipb),
                "{name}/{}: {ipb} outside the C band",
                r.dataset
            );
        }
    }
}

/// The core claim: feeding back previous runs predicts branch directions
/// almost as well as is possible. Leave-one-out prediction recovers most
/// of the self-prediction bound.
#[test]
fn feedback_recovers_most_of_the_bound() {
    let cfg = BreakConfig::fig2();
    let mut total_ratio = 0.0;
    let mut n = 0;
    for c in collected() {
        if c.runs.len() < 2 {
            continue;
        }
        for i in 0..c.runs.len() {
            let self_m = experiment::self_metrics(&c.runs[i], cfg);
            let loo = experiment::loo_metrics(&c.runs, i, CombineRule::Scaled, cfg);
            let ratio = loo.instrs_per_break / self_m.instrs_per_break;
            assert!(
                ratio > 0.35,
                "{}/{}: feedback recovered only {:.0}%",
                c.workload.name,
                c.runs[i].dataset,
                ratio * 100.0
            );
            total_ratio += ratio;
            n += 1;
        }
    }
    let mean = total_ratio / f64::from(n);
    assert!(
        mean > 0.75,
        "mean recovery {:.0}% — the paper's claim needs most of the bound",
        mean * 100.0
    );
}

/// Prediction lifts instructions-per-break far above the unpredicted
/// level (an order of magnitude in the paper's C programs: ~5-17 → ~40-160).
#[test]
fn prediction_is_a_large_multiplier() {
    let cfg = BreakConfig::fig2();
    for name in ["gcc", "spiff", "mfcom"] {
        let c = find(name);
        for r in &c.runs {
            let none = evaluate_unpredicted(&r.stats, BreakConfig::fig1()).instrs_per_break;
            let with = experiment::self_metrics(r, cfg).instrs_per_break;
            assert!(
                with > 4.0 * none,
                "{name}/{}: {none} -> {with} is too small a gain",
                r.dataset
            );
        }
    }
}

/// §3 informal: simple loop/non-loop heuristics "usually gave up about a
/// factor of two in instructions per break" against profile feedback.
#[test]
fn heuristic_loses_roughly_2x() {
    let cfg = BreakConfig::fig2();
    let mut ratios = Vec::new();
    for c in collected() {
        for (i, r) in c.runs.iter().enumerate() {
            let h = evaluate(&r.stats, &c.heuristic, cfg).instrs_per_break;
            let p = if c.runs.len() > 1 {
                experiment::loo_metrics(&c.runs, i, CombineRule::Scaled, cfg).instrs_per_break
            } else {
                experiment::self_metrics(r, cfg).instrs_per_break
            };
            ratios.push(p / h);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean > 1.2,
        "profiles must clearly beat the heuristic (mean ratio {mean:.2})"
    );
    assert!(
        ratios.iter().all(|r| *r > 0.8),
        "heuristic should never win big: {ratios:?}"
    );
}

/// §3 informal: scaled and unscaled combination "appeared to perform as
/// well as each other ... on average they were indistinguishably close".
#[test]
fn scaled_and_unscaled_are_close_on_average() {
    let cfg = BreakConfig::fig2();
    let mut diffs = Vec::new();
    for c in collected() {
        if c.runs.len() < 2 {
            continue;
        }
        for i in 0..c.runs.len() {
            let s = experiment::loo_metrics(&c.runs, i, CombineRule::Scaled, cfg).instrs_per_break;
            let u =
                experiment::loo_metrics(&c.runs, i, CombineRule::Unscaled, cfg).instrs_per_break;
            diffs.push((s - u).abs() / s.max(u));
        }
    }
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    assert!(
        mean < 0.15,
        "scaled vs unscaled mean relative gap {mean:.2}"
    );
}

/// §2: percent-correct is the wrong measure — doduc and fpppp have similar
/// percent-correct but wildly different instructions-per-break (the
/// paper's fpppp-vs-li anecdote, reproduced with our pair).
#[test]
fn percent_correct_hides_branch_density() {
    let cfg = BreakConfig::fig2();
    let doduc = experiment::self_metrics(&find("doduc").runs[0], cfg);
    let fpppp = experiment::self_metrics(&find("fpppp").runs[0], cfg);
    let pc_gap = (doduc.correct_fraction() - fpppp.correct_fraction()).abs();
    assert!(
        pc_gap < 0.15,
        "percent-correct should look similar: {} vs {}",
        doduc.correct_fraction(),
        fpppp.correct_fraction()
    );
    assert!(
        fpppp.instrs_per_break > 10.0 * doduc.instrs_per_break,
        "…while instrs/break separates them: {} vs {}",
        fpppp.instrs_per_break,
        doduc.instrs_per_break
    );
}

/// §3 informal: percent-taken is nearly a program constant across datasets
/// (≤9% spread for everything but spice2g6). Our low-variability programs
/// obey the tight version.
#[test]
fn percent_taken_is_nearly_constant_for_similar_datasets() {
    for name in ["doduc", "mfcom"] {
        let c = find(name);
        let (lo, hi) = experiment::percent_taken_spread(&c.runs).expect("has branches");
        assert!(
            hi - lo < 0.09,
            "{name}: percent-taken spread {:.1}% exceeds the paper's bound",
            (hi - lo) * 100.0
        );
    }
}

/// §2: select instructions were a negligible fraction of all instructions
/// (0.2–0.7% in the paper).
#[test]
fn selects_are_negligible() {
    for c in collected() {
        let ratio = c.runs[0].stats.select_ratio();
        assert!(
            ratio < 0.02,
            "{}: selects are {:.2}% of instructions",
            c.workload.name,
            ratio * 100.0
        );
    }
}
