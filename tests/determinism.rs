//! Determinism: the whole experiment regenerates bit-identically.

use fisher92::workloads::suite;

#[test]
fn dataset_generation_is_stable() {
    let a = suite();
    let b = suite();
    assert_eq!(a.len(), b.len());
    for (wa, wb) in a.iter().zip(&b) {
        assert_eq!(wa.name, wb.name);
        assert_eq!(wa.source, wb.source, "{}: source differs", wa.name);
        assert_eq!(wa.datasets.len(), wb.datasets.len());
        for (da, db) in wa.datasets.iter().zip(&wb.datasets) {
            assert_eq!(da.inputs, db.inputs, "{}/{}", wa.name, da.name);
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let all = suite();
    let w = all.iter().find(|w| w.name == "gcc").expect("gcc");
    let a = w.compile().expect("compiles");
    let b = w.compile().expect("compiles");
    assert_eq!(a, b);
    let oa = w.compile_optimized().expect("optimizes");
    let ob = w.compile_optimized().expect("optimizes");
    assert_eq!(oa, ob);
}

#[test]
fn runs_are_bit_identical() {
    let all = suite();
    for name in ["doduc", "spiff"] {
        let w = all.iter().find(|w| w.name == name).expect("workload");
        let program = w.compile().expect("compiles");
        let d = &w.datasets[0];
        let a = w.run(&program, d).expect("runs");
        let b = w.run(&program, d).expect("runs");
        assert_eq!(a, b, "{name}: run not deterministic");
    }
}

#[test]
fn pixie_counts_reconcile_for_real_workloads() {
    let all = suite();
    for name in ["mfcom", "eqntott"] {
        let w = all.iter().find(|w| w.name == name).expect("workload");
        let program = w.compile().expect("compiles");
        let run = w.run(&program, &w.datasets[0]).expect("runs");
        assert_eq!(
            run.stats.pixie.total_instrs(&program),
            run.stats.total_instrs,
            "{name}: MFPixie and fuel disagree"
        );
    }
}
