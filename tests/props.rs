//! Property-based tests: differential testing of the compiler+VM against a
//! Rust reference evaluator, LZW roundtrips on arbitrary data, and
//! predictor/metric invariants on arbitrary branch statistics.

use proptest::prelude::*;

use fisher92::lang::compile;
use fisher92::opt::Pipeline;
use fisher92::predict::{evaluate, BreakConfig, Direction, Predictor};
use fisher92::profile::{combine, CombineRule};
use fisher92::vm::{BranchCounts, Input, RunStats, Vm};

// ---------------------------------------------------------------------
// Differential testing: random integer expressions evaluated by the guest
// toolchain must match a Rust reference evaluator.
// ---------------------------------------------------------------------

/// A little expression AST we can both print as guest source and evaluate
/// in Rust.
#[derive(Clone, Debug)]
enum E {
    Lit(i64),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Lt(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
}

impl E {
    fn to_source(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    v.to_string()
                }
            }
            E::Var(i) => format!("v{i}"),
            E::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            E::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            E::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            E::And(a, b) => format!("({} & {})", a.to_source(), b.to_source()),
            E::Or(a, b) => format!("({} | {})", a.to_source(), b.to_source()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_source(), b.to_source()),
            E::Shl(a, s) => format!("({} << {s})", a.to_source()),
            E::Lt(a, b) => format!("({} < {})", a.to_source(), b.to_source()),
            E::Neg(a) => format!("(-{})", a.to_source()),
            E::Not(a) => format!("(~{})", a.to_source()),
        }
    }

    fn eval(&self, vars: &[i64]) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => vars[*i],
            E::Add(a, b) => a.eval(vars).wrapping_add(b.eval(vars)),
            E::Sub(a, b) => a.eval(vars).wrapping_sub(b.eval(vars)),
            E::Mul(a, b) => a.eval(vars).wrapping_mul(b.eval(vars)),
            E::And(a, b) => a.eval(vars) & b.eval(vars),
            E::Or(a, b) => a.eval(vars) | b.eval(vars),
            E::Xor(a, b) => a.eval(vars) ^ b.eval(vars),
            E::Shl(a, s) => a.eval(vars).wrapping_shl(u32::from(*s)),
            E::Lt(a, b) => i64::from(a.eval(vars) < b.eval(vars)),
            E::Neg(a) => a.eval(vars).wrapping_neg(),
            E::Not(a) => !a.eval(vars),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(E::Lit),
        (0usize..3).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..63).prop_map(|(a, s)| E::Shl(Box::new(a), s)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn guest_expressions_match_reference(
        e in arb_expr(),
        vars in prop::array::uniform3(-1000i64..1000),
    ) {
        let src = format!(
            "fn main(v0: int, v1: int, v2: int) {{ emit({}); }}",
            e.to_source()
        );
        let program = compile(&src).expect("generated source compiles");
        let inputs: Vec<Input> = vars.iter().map(|&v| Input::Int(v)).collect();
        let run = Vm::new(&program).run(&inputs).expect("runs");
        prop_assert_eq!(run.output_ints(), vec![e.eval(&vars)]);
    }

    #[test]
    fn optimizer_preserves_random_expressions(
        e in arb_expr(),
        vars in prop::array::uniform3(-1000i64..1000),
    ) {
        let src = format!(
            "fn main(v0: int, v1: int, v2: int) {{ emit({}); }}",
            e.to_source()
        );
        let base = compile(&src).expect("compiles");
        let mut opt = base.clone();
        Pipeline::standard().run(&mut opt);
        let inputs: Vec<Input> = vars.iter().map(|&v| Input::Int(v)).collect();
        let b = Vm::new(&base).run(&inputs).expect("runs");
        let o = Vm::new(&opt).run(&inputs).expect("runs optimized");
        prop_assert_eq!(b.output, o.output);
        prop_assert!(o.stats.total_instrs <= b.stats.total_instrs);
    }
}

// ---------------------------------------------------------------------
// LZW roundtrip on arbitrary byte strings, through the real guest program.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lzw_roundtrips_arbitrary_bytes(data in prop::collection::vec(0i64..256, 1..600)) {
        let all = fisher92::workloads::suite();
        let w = all.iter().find(|w| w.name == "compress").expect("compress");
        let program = compile(&w.source).expect("compiles");
        let n = data.len() as i64;
        let codes = Vm::new(&program)
            .run(&[Input::Ints(data.clone()), Input::Int(n), Input::Int(0)])
            .expect("compresses")
            .output_ints();
        let back = Vm::new(&program)
            .run(&[
                Input::Ints(codes.clone()),
                Input::Int(codes.len() as i64),
                Input::Int(1),
            ])
            .expect("decompresses")
            .output_ints();
        prop_assert_eq!(back, data);
    }
}

// ---------------------------------------------------------------------
// Predictor and metric invariants on arbitrary branch statistics.
// ---------------------------------------------------------------------

fn arb_counts() -> impl Strategy<Value = BranchCounts> {
    prop::collection::vec((0u32..40, 0u64..2000, 0u64..2000), 0..30).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(id, e, t)| {
                let e = e.max(t); // taken <= executed
                (fisher92::ir::BranchId(id), e, t)
            })
            .collect()
    })
}

fn stats_from(counts: &BranchCounts, instrs: u64) -> RunStats {
    RunStats {
        total_instrs: instrs,
        branches: counts.clone(),
        events: Default::default(),
        pixie: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn self_prediction_is_optimal(counts in arb_counts(), other in arb_counts()) {
        let stats = stats_from(&counts, 1_000_000);
        let cfg = BreakConfig::fig2();
        let self_p = Predictor::from_counts(&counts, Direction::NotTaken);
        let other_p = Predictor::from_counts(&other, Direction::NotTaken);
        let self_m = evaluate(&stats, &self_p, cfg);
        let other_m = evaluate(&stats, &other_p, cfg);
        prop_assert!(self_m.mispredicted <= other_m.mispredicted);
        // And equals the sum of minority sides.
        let expected: u64 = counts.iter().map(|(_, e, t)| t.min(e - t)).sum();
        prop_assert_eq!(self_m.mispredicted, expected);
    }

    #[test]
    fn mispredicts_bounded_by_executions(counts in arb_counts(), other in arb_counts()) {
        let stats = stats_from(&counts, 500);
        let p = Predictor::from_counts(&other, Direction::Taken);
        let m = evaluate(&stats, &p, BreakConfig::fig2());
        prop_assert!(m.mispredicted <= m.branch_execs);
        prop_assert!((0.0..=1.0).contains(&m.correct_fraction()));
        prop_assert!(m.instrs_per_break.is_finite());
        prop_assert!(m.instrs_per_break > 0.0);
    }

    #[test]
    fn flipping_a_predictor_complements_mispredicts(counts in arb_counts()) {
        let stats = stats_from(&counts, 1000);
        let cfg = BreakConfig::fig2();
        let taken = evaluate(&stats, &Predictor::always(Direction::Taken), cfg);
        let not = evaluate(&stats, &Predictor::always(Direction::NotTaken), cfg);
        prop_assert_eq!(taken.mispredicted + not.mispredicted, stats.branches.total_executed());
    }

    #[test]
    fn combination_rules_agree_on_single_profile(counts in arb_counts()) {
        let scaled = combine(&[&counts], CombineRule::Scaled);
        let unscaled = combine(&[&counts], CombineRule::Unscaled);
        let pa = Predictor::from_weighted(&scaled, Direction::NotTaken);
        let pb = Predictor::from_weighted(&unscaled, Direction::NotTaken);
        prop_assert_eq!(pa, pb);
    }

    #[test]
    fn combination_is_order_invariant(a in arb_counts(), b in arb_counts(), c in arb_counts()) {
        for rule in [CombineRule::Scaled, CombineRule::Unscaled, CombineRule::Polling] {
            let ab = combine(&[&a, &b, &c], rule);
            let ba = combine(&[&c, &a, &b], rule);
            for (id, e, t) in ab.iter() {
                let (e2, t2) = ba.get(id);
                prop_assert!((e - e2).abs() < 1e-9);
                prop_assert!((t - t2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn directives_roundtrip_arbitrary_counts(taken_counts in prop::collection::vec((0u64..1000, 0u64..1000), 1..6)) {
        use fisher92::profile::directives;
        // Build a program with as many branches as entries.
        let mut body = String::new();
        for i in 0..taken_counts.len() {
            body.push_str(&format!("if (x > {i}) {{ emit({i}); }}\n"));
        }
        let src = format!("fn main(x: int) {{\n{body}}}");
        let program = compile(&src).expect("compiles");
        let mut counts = BranchCounts::new();
        for (i, (t, nt)) in taken_counts.iter().enumerate() {
            counts.add(fisher92::ir::BranchId(i as u32), t + nt, *t);
        }
        let text = directives::write_directives(&program, &counts);
        let parsed = directives::parse_directives(&program, &text).expect("parses");
        prop_assert_eq!(parsed, counts);
    }
}
