//! Tests for the two extensions beyond the paper's own measurements:
//! dynamic-scheme simulation over recorded traces, and procedure inlining.

use fisher92::lang::compile;
use fisher92::opt::Inliner;
use fisher92::predict::dynamic::{simulate, simulate_seeded, DynamicScheme};
use fisher92::predict::{evaluate, BreakConfig, Direction, Predictor};
use fisher92::vm::{Input, Vm, VmConfig};
use fisher92::workloads::suite;

fn traced_run(name: &str, dataset: &str) -> (trace_ir::Program, fisher92::vm::Run) {
    let all = suite();
    let w = all.iter().find(|w| w.name == name).expect("workload");
    let program = w.compile().expect("compiles");
    let d = w.dataset(dataset).expect("dataset");
    let run = Vm::with_config(
        &program,
        VmConfig {
            record_branch_trace: true,
            ..VmConfig::default()
        },
    )
    .run(&d.inputs)
    .expect("runs");
    (program, run)
}

#[test]
fn trace_agrees_with_aggregate_counts() {
    let (_, run) = traced_run("spiff", "case3");
    assert_eq!(
        run.branch_trace.len() as u64,
        run.stats.branches.total_executed()
    );
    let taken = run.branch_trace.iter().filter(|e| e.taken).count() as u64;
    assert_eq!(taken, run.stats.branches.total_taken());
    // Per-branch reconciliation.
    let mut per: std::collections::HashMap<_, (u64, u64)> = Default::default();
    for ev in &run.branch_trace {
        let e = per.entry(ev.id).or_insert((0, 0));
        e.0 += 1;
        e.1 += u64::from(ev.taken);
    }
    for (id, e, t) in run.stats.branches.iter() {
        assert_eq!(per.get(&id).copied().unwrap_or((0, 0)), (e, t));
    }
}

#[test]
fn trace_recording_off_by_default() {
    let all = suite();
    let w = all.iter().find(|w| w.name == "spiff").expect("spiff");
    let program = w.compile().expect("compiles");
    let run = w.run(&program, &w.datasets[2]).expect("runs");
    assert!(run.branch_trace.is_empty());
}

#[test]
fn dynamic_schemes_order_as_in_the_literature() {
    // 2-bit beats 1-bit, and static self-prediction is competitive with
    // 2-bit — the relationship the hardware literature reports and the
    // paper leans on.
    for (name, dataset) in [("doduc", "tiny"), ("spiff", "case1"), ("mfcom", "c_metric")] {
        let (_, run) = traced_run(name, dataset);
        let one = simulate(
            &run.branch_trace,
            DynamicScheme::OneBit,
            Direction::NotTaken,
        );
        let two = simulate(
            &run.branch_trace,
            DynamicScheme::TwoBit,
            Direction::NotTaken,
        );
        assert!(
            two.correct_fraction() >= one.correct_fraction(),
            "{name}: 2-bit ({}) should beat 1-bit ({})",
            two.correct_fraction(),
            one.correct_fraction()
        );
        let self_pred = Predictor::from_counts(&run.stats.branches, Direction::NotTaken);
        let static_m = evaluate(&run.stats, &self_pred, BreakConfig::fig2());
        let gap = (static_m.correct_fraction() - two.correct_fraction()).abs();
        assert!(
            gap < 0.08,
            "{name}: static ({:.3}) and 2-bit ({:.3}) should be comparable",
            static_m.correct_fraction(),
            two.correct_fraction()
        );
    }
}

#[test]
fn profile_seeding_never_hurts_much() {
    let (_, run) = traced_run("gcc", "loop_mod");
    let self_pred = Predictor::from_counts(&run.stats.branches, Direction::NotTaken);
    let cold = simulate(
        &run.branch_trace,
        DynamicScheme::TwoBit,
        Direction::NotTaken,
    );
    let warm = simulate_seeded(&run.branch_trace, DynamicScheme::TwoBit, &self_pred);
    assert!(warm.mispredicted <= cold.mispredicted);
}

#[test]
fn inlining_workloads_preserves_output_and_profiles() {
    let all = suite();
    for (name, dataset) in [("doduc", "tiny"), ("spiff", "case1")] {
        let w = all.iter().find(|w| w.name == name).expect("workload");
        let base = w.compile().expect("compiles");
        let mut inlined = base.clone();
        let sites = Inliner::default().run(&mut inlined);
        assert!(sites > 0, "{name}: nothing inlined");
        assert_eq!(inlined.validate_inlined(), Ok(()));
        let d = w.dataset(dataset).expect("dataset");
        let b = w.run(&base, d).expect("runs");
        let i = w.run(&inlined, d).expect("runs inlined");
        assert_eq!(b.output, i.output, "{name}: behaviour changed");
        assert!(
            i.stats.events.direct_calls < b.stats.events.direct_calls,
            "{name}: no call reduction"
        );
        // Source-level branch counts are preserved exactly (inlined copies
        // share their BranchId and the VM merges them).
        for (id, e, t) in b.stats.branches.iter() {
            assert_eq!(i.stats.branches.get(id), (e, t), "{name} {id:?}");
        }
    }
}

#[test]
fn inlining_improves_call_counted_ipb() {
    let src = r#"
        fn classify(x: int) -> int {
            if (x % 3 == 0) { return 0; }
            if (x % 3 == 1) { return 1; }
            return 2;
        }
        fn main(n: int) {
            var counts0: int = 0;
            var counts1: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                var c: int = classify(i);
                if (c == 0) { counts0 = counts0 + 1; }
                if (c == 1) { counts1 = counts1 + 1; }
            }
            emit(counts0); emit(counts1);
        }
    "#;
    let base = compile(src).unwrap();
    let mut inlined = base.clone();
    Inliner::default().run(&mut inlined);
    let inputs = [Input::Int(3000)];
    let b = Vm::new(&base).run(&inputs).unwrap();
    let i = Vm::new(&inlined).run(&inputs).unwrap();
    assert_eq!(b.output, i.output);

    let cfg = BreakConfig::fig2_with_calls();
    let m = |run: &fisher92::vm::Run| {
        let p = Predictor::from_counts(&run.stats.branches, Direction::NotTaken);
        evaluate(&run.stats, &p, cfg).instrs_per_break
    };
    assert!(
        m(&i) > 1.5 * m(&b),
        "inlining should lift call-counted instrs/break: {} vs {}",
        m(&i),
        m(&b)
    );
}
