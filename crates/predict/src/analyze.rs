//! The abstract interpreter: a forward interval dataflow over each
//! function's CFG with branch-condition refinement on the outgoing edges
//! of every conditional branch and widening at natural-loop headers.
//!
//! The result is a set of *proofs*: per branch site, whether the
//! condition is provably non-zero on every execution (`AlwaysTaken`),
//! provably zero (`NeverTaken`), or unknown — plus two kinds of facts
//! the lint layer surfaces: blocks that are CFG-reachable but have no
//! feasible incoming path (`dead_blocks`), and reachable `Div`/`Rem`
//! sites whose divisor is provably zero (`div_by_zero`).
//!
//! Soundness contract: an `AlwaysTaken`/`NeverTaken` proof quantifies
//! over *successful* dynamic executions of the branch — executions that
//! trap earlier in the block (type error, division by zero, fuel
//! exhaustion) never reach the terminator and record no branch count, so
//! they cannot witness either direction. The fuzzer's `predict-soundness`
//! oracle holds every proof against observed branch counters.

use std::collections::BTreeMap;

use mfcheck::{Cfg, DomTree, LoopForest};
use trace_ir::{
    BinOp, Block, BlockId, BranchId, FuncId, Function, Instr, Program, Reg, Terminator, UnOp, Value,
};

use crate::interval::{self, widen, Interval};

/// What the interpreter can prove about one branch site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Proof {
    /// The condition is non-zero in every feasible state at the branch.
    AlwaysTaken,
    /// The condition is zero in every feasible state at the branch.
    NeverTaken,
    /// Neither direction is provable.
    Unknown,
}

/// One observed-counter violation of a proof (the soundness oracle's
/// finding payload).
#[derive(Clone, Debug)]
pub struct Contradiction {
    pub id: BranchId,
    pub proof: Proof,
    pub executed: u64,
    pub taken: u64,
}

impl std::fmt::Display for Contradiction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let claim = match self.proof {
            Proof::AlwaysTaken => "proved always-taken",
            Proof::NeverTaken => "proved never-taken",
            Proof::Unknown => "unknown",
        };
        write!(
            f,
            "{} {claim} but observed taken {}/{}",
            self.id, self.taken, self.executed
        )
    }
}

/// The whole-program analysis result.
#[derive(Clone, Debug, Default)]
pub struct ProgramProofs {
    /// Every branch site in the program, mapped to what was proved.
    pub proofs: BTreeMap<BranchId, Proof>,
    /// CFG-reachable blocks with no feasible incoming path. (Blocks the
    /// CFG itself cannot reach are already covered by the verifier's
    /// unreachable-block warning.)
    pub dead_blocks: Vec<(FuncId, BlockId)>,
    /// Feasible `Div`/`Rem` sites whose divisor is provably zero.
    pub div_by_zero: Vec<(FuncId, BlockId)>,
}

impl ProgramProofs {
    pub fn proof(&self, id: BranchId) -> Proof {
        self.proofs.get(&id).copied().unwrap_or(Proof::Unknown)
    }

    /// Branch sites with a definite proof, as `(site, taken)` pairs in
    /// `BranchId` order — the shape predictor and pseudo-profile
    /// constructions consume.
    pub fn proven_directions(&self) -> impl Iterator<Item = (BranchId, bool)> + '_ {
        self.proofs.iter().filter_map(|(&id, &p)| match p {
            Proof::AlwaysTaken => Some((id, true)),
            Proof::NeverTaken => Some((id, false)),
            Proof::Unknown => None,
        })
    }

    /// Holds every proof against observed `(site, executed, taken)`
    /// counters; any surviving entry is a soundness bug in the analysis.
    pub fn contradictions<I>(&self, counts: I) -> Vec<Contradiction>
    where
        I: IntoIterator<Item = (BranchId, u64, u64)>,
    {
        let mut out = Vec::new();
        for (id, executed, taken) in counts {
            let proof = self.proof(id);
            let broken = match proof {
                Proof::AlwaysTaken => taken != executed,
                Proof::NeverTaken => taken != 0,
                Proof::Unknown => false,
            };
            if broken && executed > 0 {
                out.push(Contradiction {
                    id,
                    proof,
                    executed,
                    taken,
                });
            }
        }
        out
    }
}

/// Runs the interval interpreter over every function of `program`.
pub fn analyze(program: &Program) -> ProgramProofs {
    let mut out = ProgramProofs::default();
    for (idx, func) in program.functions.iter().enumerate() {
        analyze_function(func, FuncId::from_index(idx), &mut out);
    }
    out
}

/// Abstract register file: one interval per register. Unreachable states
/// are `None` at the block level.
type State = Vec<Interval>;

/// Join counts beyond this at a non-header block also trigger widening —
/// a termination backstop for irreducible regions the loop forest does
/// not cover.
const WIDEN_FALLBACK_JOINS: u32 = 8;

/// Hard cap on block executions per function; exceeding it abandons the
/// function with no proofs (sound, just imprecise). With widening this
/// should never fire; it bounds the cost on adversarial fuzz inputs.
const MAX_BLOCK_VISITS: usize = 50_000;

fn analyze_function(func: &Function, func_id: FuncId, out: &mut ProgramProofs) {
    let n = func.blocks.len();
    if n == 0 {
        return;
    }
    let cfg = Cfg::new(func);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    let mut is_header = vec![false; n];
    for l in &forest.loops {
        is_header[l.header.index()] = true;
    }

    let mut in_state: Vec<Option<State>> = vec![None; n];
    in_state[func.entry().index()] = Some(vec![Interval::TOP; func.num_regs as usize]);

    // Worklist keyed by RPO position for a deterministic, mostly
    // topological visit order.
    let rpo_pos: Vec<usize> = (0..n)
        .map(|i| cfg.rpo_pos(BlockId::from_index(i)).unwrap_or(usize::MAX))
        .collect();
    let mut worklist: std::collections::BTreeSet<(usize, usize)> =
        std::collections::BTreeSet::new();
    worklist.insert((rpo_pos[func.entry().index()], func.entry().index()));
    let mut join_count = vec![0u32; n];
    let mut visits = 0usize;
    let mut gave_up = false;

    while let Some(&(pos, bi)) = worklist.iter().next() {
        worklist.remove(&(pos, bi));
        visits += 1;
        if visits > MAX_BLOCK_VISITS {
            gave_up = true;
            break;
        }
        let b = BlockId::from_index(bi);
        let Some(entry) = in_state[bi].clone() else {
            continue;
        };
        let flow = exec_block(func.block(b), entry);
        for (succ, st) in flow.edges {
            let si = succ.index();
            match &in_state[si] {
                None => {
                    in_state[si] = Some(st);
                    worklist.insert((rpo_pos[si], si));
                }
                Some(old) => {
                    let mut joined: State =
                        old.iter().zip(st.iter()).map(|(a, b)| a.join(b)).collect();
                    if joined != *old {
                        join_count[si] += 1;
                        if (is_header[si] && join_count[si] >= 2)
                            || join_count[si] >= WIDEN_FALLBACK_JOINS
                        {
                            joined = old
                                .iter()
                                .zip(joined.iter())
                                .map(|(o, j)| widen(o, j))
                                .collect();
                        }
                        if joined != *in_state[si].as_ref().unwrap() {
                            in_state[si] = Some(joined);
                            worklist.insert((rpo_pos[si], si));
                        }
                    }
                }
            }
        }
    }

    // Harvest proofs and facts from the fixpoint (skipped entirely if the
    // fixpoint was abandoned: every branch stays Unknown, which is sound).
    for (b, block) in func.iter_blocks() {
        if let Terminator::Branch { id, .. } = block.term {
            out.proofs.entry(id).or_insert(Proof::Unknown);
        }
        if gave_up {
            continue;
        }
        match &in_state[b.index()] {
            None => {
                if cfg.is_reachable(b) {
                    out.dead_blocks.push((func_id, b));
                }
            }
            Some(entry) => {
                let flow = exec_block(block, entry.clone());
                if flow.div_by_zero {
                    out.div_by_zero.push((func_id, b));
                }
                if let (Terminator::Branch { id, .. }, Some(cond)) = (&block.term, flow.cond) {
                    let proof = if cond.excludes_zero() {
                        Proof::AlwaysTaken
                    } else if cond.is_zero() {
                        Proof::NeverTaken
                    } else {
                        Proof::Unknown
                    };
                    out.proofs.insert(*id, proof);
                }
            }
        }
    }
}

/// The result of abstractly executing one block from a given entry state.
struct BlockFlow {
    /// Feasible outgoing edges with their (possibly refined) states. A
    /// successor reachable on both arms of a branch appears once, joined.
    edges: Vec<(BlockId, State)>,
    /// The condition interval at the terminator, for `Branch` blocks that
    /// complete (no provable trap before the terminator).
    cond: Option<Interval>,
    /// The block contains a provable division by zero (and therefore
    /// never completes — `edges` is empty).
    div_by_zero: bool,
}

fn exec_block(block: &Block, mut st: State) -> BlockFlow {
    // Index of the last in-block definition per register, for deciding
    // whether comparison-operand refinement at the terminator still
    // refers to current values.
    let mut last_def: Vec<Option<usize>> = vec![None; st.len()];

    for (i, instr) in block.instrs.iter().enumerate() {
        if let Instr::Binop { op, rhs, .. } = instr {
            if op.can_trap() && st[rhs.index()].is_zero() {
                // Every execution of this instruction traps: the block
                // never reaches its terminator.
                return BlockFlow {
                    edges: Vec::new(),
                    cond: None,
                    div_by_zero: true,
                };
            }
        }
        transfer(instr, &mut st);
        if let Some(dst) = instr.dst() {
            last_def[dst.index()] = Some(i);
        }
    }

    let mut edges: Vec<(BlockId, State)> = Vec::new();
    let push = |edges: &mut Vec<(BlockId, State)>, b: BlockId, s: State| {
        if let Some((_, old)) = edges.iter_mut().find(|(eb, _)| *eb == b) {
            for (o, n) in old.iter_mut().zip(s.iter()) {
                *o = o.join(n);
            }
        } else {
            edges.push((b, s));
        }
    };

    let mut cond_iv = None;
    match &block.term {
        Terminator::Jump(t) => push(&mut edges, *t, st),
        Terminator::JumpTable {
            targets, default, ..
        } => {
            for t in targets {
                push(&mut edges, *t, st.clone());
            }
            push(&mut edges, *default, st);
        }
        Terminator::Return { .. } => {}
        Terminator::Branch {
            cond,
            taken,
            not_taken,
            ..
        } => {
            let c = st[cond.index()];
            cond_iv = Some(c);
            // The comparison that defined `cond` in this block, provided
            // the condition was not overwritten afterwards.
            let cmp = last_def[cond.index()].and_then(|i| match &block.instrs[i] {
                Instr::Binop { op, lhs, rhs, .. } if op.is_comparison() && is_int_cmp(*op) => {
                    Some((i, *op, *lhs, *rhs))
                }
                _ => None,
            });
            for (outcome, target) in [(true, *taken), (false, *not_taken)] {
                let refined_cond = if outcome {
                    c.refine_nonzero()
                } else {
                    c.refine_zero()
                };
                let Some(rc) = refined_cond else {
                    continue; // this arm is infeasible
                };
                let mut s = st.clone();
                s[cond.index()] = rc;
                let mut feasible = true;
                if let Some((i, op, lhs, rhs)) = cmp {
                    // Operand values at the terminator equal the compared
                    // values only if not redefined after the comparison.
                    let lhs_ok = last_def[lhs.index()].is_none_or(|j| j < i);
                    let rhs_ok = last_def[rhs.index()].is_none_or(|j| j < i);
                    match interval::refine_compare(op, outcome, &st[lhs.index()], &st[rhs.index()])
                    {
                        Some((l2, r2)) => {
                            if lhs_ok {
                                s[lhs.index()] = l2;
                            }
                            if rhs_ok && rhs != lhs {
                                s[rhs.index()] = r2;
                            }
                        }
                        None => feasible = false,
                    }
                }
                if feasible {
                    push(&mut edges, target, s);
                }
            }
        }
    }
    BlockFlow {
        edges,
        cond: cond_iv,
        div_by_zero: false,
    }
}

fn is_int_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

/// Applies one instruction's transfer function to the state. Anything
/// that may produce a float or an unmodeled value writes ⊤ (the domain's
/// float story: possibly-float registers are always ⊤).
fn transfer(instr: &Instr, st: &mut State) {
    let get = |st: &State, r: Reg| st[r.index()];
    match instr {
        Instr::Const { dst, value } => {
            st[dst.index()] = match value {
                Value::Int(n) => Interval::singleton(*n),
                Value::Float(_) => Interval::TOP,
            };
        }
        Instr::Mov { dst, src } => st[dst.index()] = get(st, *src),
        Instr::Unop { dst, op, src } => {
            let v = get(st, *src);
            st[dst.index()] = match op {
                UnOp::Neg => {
                    if v.contains(interval::I64_MIN) {
                        Interval::TOP
                    } else {
                        Interval::new(-v.hi, -v.lo)
                    }
                }
                UnOp::Not => Interval::new(-v.hi - 1, -v.lo - 1),
                UnOp::LNot => {
                    if v.is_zero() {
                        Interval::singleton(1)
                    } else if v.excludes_zero() {
                        Interval::singleton(0)
                    } else {
                        Interval::new(0, 1)
                    }
                }
                UnOp::Abs => {
                    if v.contains(interval::I64_MIN) {
                        Interval::TOP
                    } else if v.lo >= 0 {
                        v
                    } else if v.hi <= 0 {
                        Interval::new(-v.hi, -v.lo)
                    } else {
                        Interval::new(0, (-v.lo).max(v.hi))
                    }
                }
                // Float-producing or float-consuming: ⊤.
                _ => Interval::TOP,
            };
        }
        Instr::Binop { dst, op, lhs, rhs } => {
            let l = get(st, *lhs);
            let r = get(st, *rhs);
            st[dst.index()] = match op {
                BinOp::Add => interval::add(&l, &r),
                BinOp::Sub => interval::sub(&l, &r),
                BinOp::Mul => interval::mul(&l, &r),
                BinOp::Div | BinOp::Rem => match r.refine_nonzero() {
                    // Executions that survive this instruction had a
                    // non-zero divisor (zero divisors trap).
                    Some(r) => interval::div_rem(*op, &l, &r),
                    None => Interval::TOP, // always traps; handled by caller
                },
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                    interval::bitwise(*op, &l, &r)
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    interval::compare(*op, &l, &r)
                }
                // Float comparisons produce 0/1 ints; everything else
                // float-valued is ⊤.
                BinOp::FEq | BinOp::FNe | BinOp::FLt | BinOp::FLe | BinOp::FGt | BinOp::FGe => {
                    Interval::new(0, 1)
                }
                _ => Interval::TOP,
            };
        }
        Instr::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            let c = get(st, *cond);
            st[dst.index()] = if c.excludes_zero() {
                get(st, *if_true)
            } else if c.is_zero() {
                get(st, *if_false)
            } else {
                get(st, *if_true).join(&get(st, *if_false))
            };
        }
        Instr::ArrayLen { dst, .. } => {
            st[dst.index()] = Interval::new(0, interval::I64_MAX);
        }
        Instr::NewIntArray { dst, .. }
        | Instr::NewFloatArray { dst, .. }
        | Instr::ConstArray { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::GlobalGet { dst, .. }
        | Instr::FuncAddr { dst, .. } => {
            st[dst.index()] = Interval::TOP;
        }
        Instr::Call { dst, .. } => {
            if let Some(dst) = dst {
                st[dst.index()] = Interval::TOP;
            }
        }
        Instr::CallIndirect { dst, .. } => {
            if let Some(dst) = dst {
                st[dst.index()] = Interval::TOP;
            }
        }
        Instr::Store { .. } | Instr::GlobalSet { .. } | Instr::Emit { .. } => {}
    }
}
