//! The integer interval domain.
//!
//! Guest integer arithmetic is wrapping two's-complement `i64`
//! (`eval_binop` in the VM), so a transfer function may only return a
//! finite interval when the exact mathematical result of every operand
//! combination stays inside `[i64::MIN, i64::MAX]`; anything that could
//! wrap degrades to ⊤. Bounds are carried as `i128` so the "could it
//! wrap" test is itself exact. Registers that may hold floats are mapped
//! to ⊤ by the transfer functions (every float-producing instruction
//! returns ⊤), which keeps the int-only domain sound: ⊤ yields no proofs.

use trace_ir::BinOp;

pub(crate) const I64_MIN: i128 = i64::MIN as i128;
pub(crate) const I64_MAX: i128 = i64::MAX as i128;

/// A non-empty closed interval of `i64` values, bounds held as `i128`.
/// The empty set ("bottom") is represented at the state level, not here:
/// operations that can discover infeasibility return `Option<Interval>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    pub lo: i128,
    pub hi: i128,
}

impl Interval {
    /// The full `i64` range — the domain's ⊤.
    pub const TOP: Interval = Interval {
        lo: I64_MIN,
        hi: I64_MAX,
    };

    /// The interval holding exactly `n`.
    pub fn singleton(n: i64) -> Interval {
        Interval {
            lo: n as i128,
            hi: n as i128,
        }
    }

    /// `[lo, hi]` clamped to the `i64` range. Callers must pass `lo <= hi`.
    pub fn new(lo: i128, hi: i128) -> Interval {
        debug_assert!(lo <= hi);
        Interval {
            lo: lo.max(I64_MIN),
            hi: hi.min(I64_MAX),
        }
    }

    /// Clamps an exact mathematical result range: exact if it fits in
    /// `i64`, ⊤ if any part could wrap.
    fn fit(lo: i128, hi: i128) -> Interval {
        if lo >= I64_MIN && hi <= I64_MAX {
            Interval { lo, hi }
        } else {
            Interval::TOP
        }
    }

    pub fn is_top(&self) -> bool {
        *self == Interval::TOP
    }

    /// Every value in the interval is zero.
    pub fn is_zero(&self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// No value in the interval is zero.
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0 || self.hi < 0
    }

    pub fn contains(&self, n: i128) -> bool {
        self.lo <= n && n <= self.hi
    }

    pub fn as_singleton(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo as i64)
    }

    /// Least upper bound (interval hull).
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Removes zero when it sits on an endpoint (a hole in the middle is
    /// not representable); `None` when the interval is exactly `[0,0]`.
    pub fn refine_nonzero(&self) -> Option<Interval> {
        if self.is_zero() {
            return None;
        }
        let lo = if self.lo == 0 { 1 } else { self.lo };
        let hi = if self.hi == 0 { -1 } else { self.hi };
        Some(Interval { lo, hi })
    }

    /// Intersects with `[0,0]`; `None` when zero is not in the interval.
    pub fn refine_zero(&self) -> Option<Interval> {
        self.meet(&Interval::singleton(0))
    }
}

/// Standard interval widening: a bound that grew since the previous
/// iterate jumps straight to the respective infinity (here, the `i64`
/// extreme), guaranteeing the ascending chain stabilizes.
pub(crate) fn widen(old: &Interval, new: &Interval) -> Interval {
    let lo = if new.lo < old.lo { I64_MIN } else { old.lo };
    #[allow(unused_mut)]
    let mut hi = if new.hi > old.hi { I64_MAX } else { old.hi };
    #[cfg(feature = "seeded-defects")]
    if new.hi > old.hi && mfdefect::active("predict-widen-dropped-bound") {
        // Planted bug: keep the stale upper bound instead of widening it
        // away. Loop counters then "provably" never exceed their value
        // from the first couple of iterations, manufacturing AlwaysTaken
        // proofs on loop-exit tests that later iterations contradict.
        hi = old.hi;
    }
    Interval { lo, hi }
}

/// Transfer function for wrapping addition.
pub fn add(l: &Interval, r: &Interval) -> Interval {
    Interval::fit(l.lo + r.lo, l.hi + r.hi)
}

/// Transfer function for wrapping subtraction.
pub fn sub(l: &Interval, r: &Interval) -> Interval {
    Interval::fit(l.lo - r.hi, l.hi - r.lo)
}

/// Transfer function for wrapping multiplication.
pub fn mul(l: &Interval, r: &Interval) -> Interval {
    let cands = [l.lo * r.lo, l.lo * r.hi, l.hi * r.lo, l.hi * r.hi];
    let lo = cands.iter().copied().min().unwrap();
    let hi = cands.iter().copied().max().unwrap();
    Interval::fit(lo, hi)
}

/// Transfer function for `Div`/`Rem`. The VM traps on a zero divisor, so
/// surviving executions never see one — callers trim endpoint zeros with
/// [`Interval::refine_nonzero`] first, but an interior zero may remain in
/// `r` (holes are not representable); the cases below are sound for any
/// non-zero divisor drawn from `r`.
pub fn div_rem(op: BinOp, l: &Interval, r: &Interval) -> Interval {
    match op {
        BinOp::Div => {
            if let Some(d) = r.as_singleton() {
                // i64::MIN / -1 wraps; everything else is exact.
                if d == -1 && l.contains(I64_MIN) {
                    return Interval::TOP;
                }
                let a = l.lo / d as i128;
                let b = l.hi / d as i128;
                Interval::fit(a.min(b), a.max(b))
            } else if r.lo >= 1 {
                // Positive divisor shrinks magnitude toward zero.
                let a = l.lo / r.lo;
                let b = l.hi / r.lo;
                Interval::fit(a.min(b).min(0), a.max(b).max(0))
            } else {
                Interval::TOP
            }
        }
        BinOp::Rem => {
            // |l % d| < |d|, and the result takes the sign of l.
            let m = r.lo.unsigned_abs().max(r.hi.unsigned_abs());
            let m = (m - 1).min(I64_MAX as u128) as i128;
            let lo = if l.lo >= 0 { 0 } else { -m };
            let hi = if l.hi <= 0 { 0 } else { m };
            Interval::new(lo, hi)
        }
        _ => unreachable!("div_rem only handles Div/Rem"),
    }
}

/// Transfer functions for the bitwise family; only the cheap sound cases
/// are modeled, everything else is ⊤.
pub fn bitwise(op: BinOp, l: &Interval, r: &Interval) -> Interval {
    if let (Some(a), Some(b)) = (l.as_singleton(), r.as_singleton()) {
        let exact = match op {
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            _ => unreachable!("bitwise only handles And/Or/Xor/Shl/Shr"),
        };
        return Interval::singleton(exact);
    }
    if l.lo >= 0 && r.lo >= 0 {
        match op {
            // a & b <= min(a, b) for non-negative operands.
            BinOp::And => return Interval::new(0, l.hi.min(r.hi)),
            // max(a, b) <= a | b <= a + b for non-negative operands.
            BinOp::Or => return Interval::fit(l.lo.max(r.lo), l.hi + r.hi),
            // a ^ b <= a | b <= a + b for non-negative operands.
            BinOp::Xor => return Interval::fit(0, l.hi + r.hi),
            _ => {}
        }
    }
    if op == BinOp::Shr && l.lo >= 0 {
        if let Some(s) = r.as_singleton() {
            let s = s as u32 & 63;
            return Interval::new(l.lo >> s, l.hi >> s);
        }
    }
    Interval::TOP
}

/// The abstract result of an integer comparison: `[1,1]` when it must
/// hold, `[0,0]` when it cannot, `[0,1]` otherwise.
pub fn compare(op: BinOp, l: &Interval, r: &Interval) -> Interval {
    let (t, f) = (Interval::singleton(1), Interval::singleton(0));
    let unknown = Interval::new(0, 1);
    match op {
        BinOp::Eq => {
            if l.as_singleton().is_some() && l == r {
                t
            } else if l.meet(r).is_none() {
                f
            } else {
                unknown
            }
        }
        BinOp::Ne => {
            if l.as_singleton().is_some() && l == r {
                f
            } else if l.meet(r).is_none() {
                t
            } else {
                unknown
            }
        }
        BinOp::Lt => {
            if l.hi < r.lo {
                t
            } else if l.lo >= r.hi {
                f
            } else {
                unknown
            }
        }
        BinOp::Le => {
            if l.hi <= r.lo {
                t
            } else if l.lo > r.hi {
                f
            } else {
                unknown
            }
        }
        BinOp::Gt => compare(BinOp::Lt, r, l),
        BinOp::Ge => compare(BinOp::Le, r, l),
        _ => unknown,
    }
}

/// Refines both operands of an integer comparison known to have evaluated
/// to `outcome`. Returns `None` when the outcome is infeasible for the
/// given operand ranges (the refined path is dead).
pub fn refine_compare(
    op: BinOp,
    outcome: bool,
    l: &Interval,
    r: &Interval,
) -> Option<(Interval, Interval)> {
    // Reduce to {Eq, Ne, Lt, Le} over (possibly swapped) operands.
    match (op, outcome) {
        (BinOp::Gt, o) => refine_compare(BinOp::Lt, o, r, l).map(|(r2, l2)| (l2, r2)),
        (BinOp::Ge, o) => refine_compare(BinOp::Le, o, r, l).map(|(r2, l2)| (l2, r2)),
        (BinOp::Lt, false) => refine_compare(BinOp::Le, true, r, l).map(|(r2, l2)| (l2, r2)),
        (BinOp::Le, false) => refine_compare(BinOp::Lt, true, r, l).map(|(r2, l2)| (l2, r2)),
        (BinOp::Eq, false) => refine_compare(BinOp::Ne, true, l, r),
        (BinOp::Ne, false) => refine_compare(BinOp::Eq, true, l, r),
        (BinOp::Eq, true) => {
            let m = l.meet(r)?;
            Some((m, m))
        }
        (BinOp::Ne, true) => {
            // Only endpoint-singleton exclusions are representable.
            let trim = |x: &Interval, other: &Interval| -> Option<Interval> {
                match other.as_singleton() {
                    Some(n) => {
                        let n = n as i128;
                        if x.lo == n && x.hi == n {
                            None
                        } else if x.lo == n {
                            Some(Interval { lo: n + 1, ..*x })
                        } else if x.hi == n {
                            Some(Interval { hi: n - 1, ..*x })
                        } else {
                            Some(*x)
                        }
                    }
                    None => Some(*x),
                }
            };
            Some((trim(l, r)?, trim(r, l)?))
        }
        (BinOp::Lt, true) => {
            let l2 = l.meet(&Interval::new(I64_MIN, (r.hi - 1).max(I64_MIN)))?;
            let r2 = r.meet(&Interval::new((l.lo + 1).min(I64_MAX), I64_MAX))?;
            Some((l2, r2))
        }
        (BinOp::Le, true) => {
            let l2 = l.meet(&Interval::new(I64_MIN, r.hi))?;
            let r2 = r.meet(&Interval::new(l.lo, I64_MAX))?;
            Some((l2, r2))
        }
        _ => Some((*l, *r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i128, hi: i128) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn add_wrap_degrades_to_top() {
        assert_eq!(add(&iv(1, 2), &iv(3, 4)), iv(4, 6));
        assert!(add(&Interval::singleton(i64::MAX), &Interval::singleton(1)).is_top());
    }

    #[test]
    fn mul_covers_sign_combinations() {
        assert_eq!(mul(&iv(-2, 3), &iv(-5, 4)), iv(-15, 12));
        assert!(mul(&Interval::singleton(i64::MAX), &iv(2, 2)).is_top());
    }

    #[test]
    fn div_singleton_and_range() {
        assert_eq!(div_rem(BinOp::Div, &iv(10, 20), &iv(2, 2)), iv(5, 10));
        assert_eq!(div_rem(BinOp::Div, &iv(-9, 9), &iv(3, 3)), iv(-3, 3));
        assert!(div_rem(BinOp::Div, &Interval::singleton(i64::MIN), &iv(-1, -1)).is_top());
        // Positive non-singleton divisor still bounds magnitude.
        let d = div_rem(BinOp::Div, &iv(-100, 50), &iv(2, 9));
        assert!(d.lo <= -50 && d.hi >= 25 && !d.is_top());
    }

    #[test]
    fn rem_bounds_by_divisor_magnitude() {
        assert_eq!(div_rem(BinOp::Rem, &iv(0, 100), &iv(7, 7)), iv(0, 6));
        assert_eq!(div_rem(BinOp::Rem, &iv(-100, -1), &iv(1, 10)), iv(-9, 0));
        assert_eq!(div_rem(BinOp::Rem, &iv(-5, 5), &iv(-3, -2)), iv(-2, 2));
    }

    #[test]
    fn compare_decides_when_disjoint() {
        assert_eq!(compare(BinOp::Lt, &iv(0, 4), &iv(5, 9)), iv(1, 1));
        assert_eq!(compare(BinOp::Lt, &iv(5, 9), &iv(0, 5)), iv(0, 0));
        assert_eq!(compare(BinOp::Lt, &iv(0, 5), &iv(3, 9)), iv(0, 1));
        assert_eq!(
            compare(BinOp::Eq, &Interval::singleton(3), &Interval::singleton(3)),
            iv(1, 1)
        );
        assert_eq!(compare(BinOp::Ge, &iv(5, 9), &iv(0, 5)), iv(1, 1));
    }

    #[test]
    fn refine_lt_narrows_both_sides() {
        let (l, r) = refine_compare(BinOp::Lt, true, &iv(0, 100), &iv(0, 10)).unwrap();
        assert_eq!(l, iv(0, 9));
        assert_eq!(r, iv(1, 10));
        // x < x is infeasible.
        assert!(refine_compare(BinOp::Lt, true, &iv(3, 3), &iv(3, 3)).is_none());
        // !(x < 10) pins the lower bound.
        let (l, _) = refine_compare(BinOp::Lt, false, &iv(0, 100), &iv(10, 10)).unwrap();
        assert_eq!(l, iv(10, 100));
    }

    #[test]
    fn refine_ne_trims_endpoints_only() {
        let (l, _) = refine_compare(BinOp::Ne, true, &iv(0, 10), &iv(0, 0)).unwrap();
        assert_eq!(l, iv(1, 10));
        assert!(refine_compare(BinOp::Ne, true, &iv(4, 4), &iv(4, 4)).is_none());
        let (l, _) = refine_compare(BinOp::Ne, true, &iv(0, 10), &iv(5, 5)).unwrap();
        assert_eq!(l, iv(0, 10));
    }

    #[test]
    fn widen_jumps_grown_bounds_to_infinity() {
        let w = widen(&iv(0, 1), &iv(0, 2));
        assert_eq!(w, iv(0, I64_MAX));
        let w = widen(&iv(0, 1), &iv(-1, 1));
        assert_eq!(w, iv(I64_MIN, 1));
        let w = widen(&iv(0, 1), &iv(0, 1));
        assert_eq!(w, iv(0, 1));
    }

    #[test]
    fn nonzero_refinement_trims_endpoint_zero() {
        assert_eq!(iv(0, 5).refine_nonzero().unwrap(), iv(1, 5));
        assert_eq!(iv(-5, 0).refine_nonzero().unwrap(), iv(-5, -1));
        assert_eq!(iv(-5, 5).refine_nonzero().unwrap(), iv(-5, 5));
        assert!(Interval::singleton(0).refine_nonzero().is_none());
    }
}
