//! `mfpredict` — static branch prediction without profiles.
//!
//! Two cooperating engines over `trace-ir`, both built on `mfcheck`'s
//! CFG/dominator/loop-forest framework:
//!
//! 1. **Interval abstract interpretation** ([`analyze`]): a forward
//!    value-range dataflow with branch-condition refinement on CFG edges
//!    and widening at loop headers. It emits per-branch *proofs*
//!    ([`Proof::AlwaysTaken`] / [`Proof::NeverTaken`] / unknown) plus
//!    provable division-by-zero and dead-block facts that `mflint`
//!    surfaces as diagnostics. Proofs are held against dynamic branch
//!    counters by the fuzzer's `predict-soundness` oracle.
//!
//! 2. **A static ML predictor** ([`features`] + [`model`]): fixed-width
//!    per-branch feature vectors (loop depth, BTFN direction, comparison
//!    shape, dominator depth, block mix, interval verdict) scored by a
//!    small linear model with a softsign link. The model is trained
//!    offline by the `mftrain` binary on profiles from half the workload
//!    suite ([`TRAIN_WORKLOADS`]), committed in-tree as a byte-stable
//!    artifact, and only ever *evaluated* on the disjoint held-out half
//!    ([`EVAL_WORKLOADS`]).
//!
//! The [`pseudo_profile`] bridge turns either engine's predictions into
//! synthetic branch counters, so everything downstream that consumes a
//! real profile (the `bpredict` predictor, the flat backend's
//! profile-guided layout) can run on free static predictions unchanged.

pub mod analyze;
pub mod features;
pub mod interval;
pub mod model;

pub use analyze::{analyze, Contradiction, ProgramProofs, Proof};
pub use features::{extract, BranchFeatures, FEATURE_NAMES, FEATURE_VERSION, NUM_FEATURES};
pub use interval::Interval;
pub use model::{train, Model, ModelError, Sample, TrainConfig, COMMITTED_MODEL_PATH};

use trace_ir::{BranchId, Program};

/// The training half of the workload suite (even suite indices). The
/// committed model has seen profiles from these programs only.
pub const TRAIN_WORKLOADS: [&str; 8] = [
    "spice2g6",
    "nasa7",
    "fpppp",
    "lfk",
    "espresso",
    "eqntott",
    "uncompress",
    "spiff",
];

/// The held-out half (odd suite indices). All reported ML mispredict
/// numbers come from these programs; none of their profiles ever enter
/// training.
pub const EVAL_WORKLOADS: [&str; 7] = [
    "doduc",
    "matrix300",
    "tomcatv",
    "gcc",
    "li",
    "compress",
    "mfcom",
];

/// True when `name` is in the training half.
pub fn is_train_workload(name: &str) -> bool {
    TRAIN_WORKLOADS.contains(&name)
}

/// Turns `(site, taken)` direction predictions into synthetic branch
/// counters — `(site, executed=2, taken∈{0,2})` — the exact shape both
/// `bpredict::Predictor::from_counts` (majority vote) and the flat
/// backend's profile-guided layout (`2·taken > executed`) interpret as a
/// pure direction with no magnitude information.
pub fn pseudo_profile(
    directions: impl IntoIterator<Item = (BranchId, bool)>,
) -> Vec<(BranchId, u64, u64)> {
    directions
        .into_iter()
        .map(|(id, taken)| (id, 2, if taken { 2 } else { 0 }))
        .collect()
}

/// Convenience: the committed model's `(site, taken)` predictions for
/// every branch of `program`, computed from a fresh analysis.
pub fn ml_directions(program: &Program) -> Vec<(BranchId, bool)> {
    let proofs = analyze(program);
    let feats = extract(program, &proofs);
    model::Model::committed().predict_branches(&feats).collect()
}

/// Which engine produced a [`static_tier`] prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaticTierSource {
    /// The interval interpreter proved the direction.
    Proof,
    /// The committed ML model scored the site.
    Model,
    /// Backward-taken/forward-not-taken — the floor of the tier.
    Btfn,
}

/// Per-site static predictions for `sites` — the fallback tier for branch
/// sites whose accumulated profile was *degraded* by a version-skew remap
/// (see `mfstale`). Precedence per site: an interval **proof** wins
/// outright; otherwise the committed **ML model** scores the site; a site
/// the model has no opinion on (zero score — in particular under the
/// all-zero fallback model) drops to **BTFN**. Sites that are not live
/// branches of `program` are skipped; duplicates collapse. Results are
/// sorted by site id.
pub fn static_tier(
    program: &Program,
    sites: &[BranchId],
) -> Vec<(BranchId, bool, StaticTierSource)> {
    let proofs = analyze(program);
    let feats = extract(program, &proofs);
    let by_id: std::collections::BTreeMap<BranchId, &BranchFeatures> =
        feats.iter().map(|f| (f.id, f)).collect();
    let model = model::Model::committed();
    let wanted: std::collections::BTreeSet<BranchId> = sites.iter().copied().collect();
    let mut out = Vec::new();
    for id in wanted {
        let Some(f) = by_id.get(&id) else { continue };
        let (taken, source) = match proofs.proof(id) {
            Proof::AlwaysTaken => (true, StaticTierSource::Proof),
            Proof::NeverTaken => (false, StaticTierSource::Proof),
            Proof::Unknown => {
                let score = model.score(&f.values);
                if score != 0.0 {
                    (score > 0.0, StaticTierSource::Model)
                } else {
                    // Feature 4 is "taken_backward_in_layout": exactly the
                    // BTFN test.
                    (f.values[4] == 1.0, StaticTierSource::Btfn)
                }
            }
        };
        out.push((id, taken, source));
    }
    out
}

/// [`static_tier`] as synthetic counters (via [`pseudo_profile`]), ready
/// to splice into a combined profile for the degraded sites.
pub fn static_tier_profile(program: &Program, sites: &[BranchId]) -> Vec<(BranchId, u64, u64)> {
    pseudo_profile(
        static_tier(program, sites)
            .into_iter()
            .map(|(id, taken, _)| (id, taken)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        mflang::compile(src).expect("test source compiles")
    }

    fn proofs_of(src: &str) -> ProgramProofs {
        analyze(&compile(src))
    }

    fn count(proofs: &ProgramProofs, p: Proof) -> usize {
        proofs.proofs.values().filter(|&&q| q == p).count()
    }

    #[test]
    fn constant_condition_is_proved() {
        let p = proofs_of(
            "fn main(n: int) -> int {\n\
             if (1 < 2) { return 10; }\n\
             return 20;\n\
             }",
        );
        assert_eq!(count(&p, Proof::AlwaysTaken), 1);
    }

    #[test]
    fn guarded_division_is_not_flagged() {
        let p = proofs_of(
            "fn main(n: int) -> int {\n\
             var d: int = 0;\n\
             if (n > 3) { d = n; }\n\
             if (d != 0) { return 100 / d; }\n\
             return 0;\n\
             }",
        );
        assert!(p.div_by_zero.is_empty());
    }

    #[test]
    fn provable_div_by_zero_is_flagged() {
        let p = proofs_of(
            "fn main(n: int) -> int {\n\
             var d: int = 0;\n\
             return n / d;\n\
             }",
        );
        assert_eq!(p.div_by_zero.len(), 1);
    }

    #[test]
    fn bounded_loop_interior_test_is_proved() {
        // i stays in [0, 9] inside the loop, so `i < 100` is always true.
        let p = proofs_of(
            "fn main(n: int) -> int {\n\
             var i: int = 0;\n\
             var acc: int = 0;\n\
             while (i < 10) {\n\
             if (i < 100) { acc = acc + 1; }\n\
             i = i + 1;\n\
             }\n\
             return acc;\n\
             }",
        );
        assert!(count(&p, Proof::AlwaysTaken) >= 1, "proofs: {:?}", p.proofs);
    }

    #[test]
    fn widening_keeps_unbounded_counter_unknown() {
        // The loop bound depends on input: nothing provable about i < n.
        let p = proofs_of(
            "fn main(n: int) -> int {\n\
             var i: int = 0;\n\
             while (i < n) { i = i + 1; }\n\
             return i;\n\
             }",
        );
        assert_eq!(count(&p, Proof::AlwaysTaken), 0);
        assert_eq!(count(&p, Proof::NeverTaken), 0);
    }

    #[test]
    fn dead_block_behind_contradictory_guards() {
        let p = proofs_of(
            "fn main(n: int) -> int {\n\
             if (n < 0) {\n\
             if (n > 0) { return 1; }\n\
             }\n\
             return 0;\n\
             }",
        );
        // The inner `n > 0` test is proved never-taken via edge
        // refinement (n < 0 on the outer taken edge).
        assert!(count(&p, Proof::NeverTaken) >= 1, "proofs: {:?}", p.proofs);
    }

    #[test]
    fn proofs_agree_with_execution_on_a_small_program() {
        // Structural check only: every proof map entry is a real site.
        let program = compile(
            "fn main(n: int) -> int {\n\
             var i: int = 0;\n\
             var acc: int = 0;\n\
             while (i < 10) {\n\
             if (i < 100) { acc = acc + n; }\n\
             if (i > 50) { acc = 0; }\n\
             i = i + 1;\n\
             }\n\
             return acc;\n\
             }",
        );
        let proofs = analyze(&program);
        let live = program.live_branches();
        for id in proofs.proofs.keys() {
            assert!(live.contains_key(id), "{id} proved but not a live site");
        }
    }

    #[test]
    fn features_align_with_names_and_are_deterministic() {
        let program = compile(
            "fn main(n: int) -> int {\n\
             var i: int = 0;\n\
             while (i < n) { i = i + 2; }\n\
             if (i == 4) { return 1; }\n\
             return 0;\n\
             }",
        );
        let proofs = analyze(&program);
        let a = extract(&program, &proofs);
        let b = extract(&program, &proofs);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        for f in &a {
            assert!(f.values.iter().all(|v| v.is_finite()));
            assert_eq!(f.values[0], 1.0, "bias term");
        }
        // Sorted by site id.
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn split_is_disjoint() {
        for t in TRAIN_WORKLOADS {
            assert!(!EVAL_WORKLOADS.contains(&t), "{t} in both halves");
        }
        assert_eq!(TRAIN_WORKLOADS.len() + EVAL_WORKLOADS.len(), 15);
    }

    #[test]
    fn static_tier_precedence_and_coverage() {
        let program = compile(
            "fn main(n: int) -> int {\n\
             var i: int = 0;\n\
             var acc: int = 0;\n\
             while (i < 10) {\n\
             if (i < 100) { acc = acc + n; }\n\
             i = i + 1;\n\
             }\n\
             return acc;\n\
             }",
        );
        let live: Vec<BranchId> = program.live_branches().keys().copied().collect();
        assert!(live.len() >= 2);
        let preds = static_tier(&program, &live);
        assert_eq!(preds.len(), live.len(), "every live site predicted");
        assert!(preds.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        // The provable interior guard must come from the proof tier and
        // predict taken; no site uses BTFN while the committed model has
        // real weights.
        assert!(preds
            .iter()
            .any(|&(_, taken, src)| src == StaticTierSource::Proof && taken));
        // Dead ids are skipped, duplicates collapse.
        let mut with_junk = live.clone();
        with_junk.push(BranchId(9999));
        with_junk.push(live[0]);
        assert_eq!(static_tier(&program, &with_junk), preds);
        // The profile bridge yields pure-direction counters for the same
        // sites.
        let profile = static_tier_profile(&program, &live);
        assert_eq!(profile.len(), preds.len());
        for ((id, taken, _), &(pid, e, t)) in preds.iter().zip(&profile) {
            assert_eq!(id, &pid);
            assert_eq!(e, 2);
            assert_eq!(t, if *taken { 2 } else { 0 });
        }
    }

    #[test]
    fn pseudo_profile_shape() {
        let id = BranchId::from_index(3);
        let id2 = BranchId::from_index(5);
        let pp = pseudo_profile([(id, true), (id2, false)]);
        assert_eq!(pp, vec![(id, 2, 2), (id2, 2, 0)]);
    }
}
