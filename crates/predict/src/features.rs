//! Static per-branch feature extraction.
//!
//! Every conditional branch site maps to a fixed-width `f64` vector
//! computed purely from program structure (CFG, dominators, loop forest,
//! instruction shapes) plus the interval interpreter's verdict — no
//! dynamic information. Extraction is deterministic: features are
//! emitted in `BranchId` order and every value is derived from integer
//! counts by exact `f64` conversions, so two extractions of the same
//! program are byte-identical.

use mfcheck::{Cfg, DomTree, LoopForest};
use trace_ir::{BinOp, BranchId, BranchKind, Function, Instr, Program, Terminator, Value};

use crate::analyze::{ProgramProofs, Proof};

/// Bumped whenever the feature layout changes; serialized into the model
/// artifact so a stale model cannot be applied to a new layout.
pub const FEATURE_VERSION: u32 = 1;

/// Number of features per branch site (including the bias term).
pub const NUM_FEATURES: usize = 29;

/// Human-readable names, index-aligned with the vectors. Used by
/// `mftrain` dumps and the docs.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "bias",
    "loop_depth",
    "taken_is_back_edge",
    "not_taken_is_back_edge",
    "taken_backward_in_layout",
    "kind_loop_back",
    "kind_if",
    "kind_switch_arm",
    "kind_short_circuit",
    "cmp_eq",
    "cmp_ne",
    "cmp_lt_le",
    "cmp_gt_ge",
    "cmp_float",
    "cmp_none",
    "const_zero",
    "const_one",
    "const_small",
    "const_large",
    "const_negative",
    "dom_depth",
    "block_size",
    "mix_float_ops",
    "mix_memory_ops",
    "mix_call_ops",
    "proof_always_taken",
    "proof_never_taken",
    "taken_exits_loop",
    "taken_enters_loop",
];

/// One branch site's feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchFeatures {
    pub id: BranchId,
    pub values: [f64; NUM_FEATURES],
}

/// Extracts feature vectors for every branch site of `program`, in
/// `BranchId` order. `proofs` supplies the interval-verdict features
/// (pass the result of [`crate::analyze`] on the same program).
pub fn extract(program: &Program, proofs: &ProgramProofs) -> Vec<BranchFeatures> {
    let mut out = Vec::new();
    for func in &program.functions {
        extract_function(program, func, proofs, &mut out);
    }
    out.sort_by_key(|f| f.id);
    out
}

fn extract_function(
    program: &Program,
    func: &Function,
    proofs: &ProgramProofs,
    out: &mut Vec<BranchFeatures>,
) {
    if func.blocks.is_empty() {
        return;
    }
    let cfg = Cfg::new(func);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    let consts = mfcheck::single_def_consts(func);

    for (b, block) in func.iter_blocks() {
        let Terminator::Branch {
            cond,
            id,
            taken,
            not_taken,
        } = &block.term
        else {
            continue;
        };
        let mut v = [0.0f64; NUM_FEATURES];
        v[0] = 1.0;
        v[1] = f64::from(forest.depth(b).min(8)) / 8.0;
        v[2] = f64::from(forest.is_back_edge(b, *taken));
        v[3] = f64::from(forest.is_back_edge(b, *not_taken));
        v[4] = f64::from(taken.index() <= b.index());

        let kind = program
            .branch_info
            .get(id.index())
            .map(|i| i.kind)
            .unwrap_or(BranchKind::Synthetic);
        match kind {
            BranchKind::LoopBack => v[5] = 1.0,
            BranchKind::If => v[6] = 1.0,
            BranchKind::SwitchArm => v[7] = 1.0,
            BranchKind::ShortCircuit => v[8] = 1.0,
            BranchKind::Synthetic => {}
        }

        // The comparison (if any) that defines the condition: scan the
        // block for the last write to `cond`, falling back to a
        // function-level single-definition constant view for operands.
        let mut block_consts: std::collections::HashMap<_, i64> = Default::default();
        let mut cmp: Option<(BinOp, Option<i64>)> = None;
        for instr in &block.instrs {
            if let Instr::Const {
                dst,
                value: Value::Int(n),
            } = instr
            {
                block_consts.insert(*dst, *n);
            } else if let Some(dst) = instr.dst() {
                block_consts.remove(&dst);
            }
            if instr.dst() == Some(*cond) {
                cmp = match instr {
                    Instr::Binop { op, lhs, rhs, .. } if op.is_comparison() => {
                        let const_of = |r| {
                            block_consts
                                .get(&r)
                                .copied()
                                .or_else(|| match consts.get(&r) {
                                    Some(Value::Int(n)) => Some(*n),
                                    _ => None,
                                })
                        };
                        // Prefer the right operand (the conventional
                        // constant side), else the left.
                        let k = const_of(*rhs).or_else(|| const_of(*lhs));
                        Some((*op, k))
                    }
                    _ => None,
                };
            }
        }
        match cmp {
            Some((op, k)) => {
                match op {
                    BinOp::Eq => v[9] = 1.0,
                    BinOp::Ne => v[10] = 1.0,
                    BinOp::Lt | BinOp::Le => v[11] = 1.0,
                    BinOp::Gt | BinOp::Ge => v[12] = 1.0,
                    _ => v[13] = 1.0, // float comparisons
                }
                match k {
                    Some(0) => v[15] = 1.0,
                    Some(n) if n.abs() == 1 => v[16] = 1.0,
                    Some(n) if (2..=64).contains(&n.abs()) => v[17] = 1.0,
                    Some(n) if n > 64 => v[18] = 1.0,
                    _ => {}
                }
                if k.is_some_and(|n| n < 0) {
                    v[19] = 1.0;
                }
            }
            None => v[14] = 1.0,
        }

        let mut depth = 0u32;
        let mut cur = b;
        while let Some(i) = dom.idom(cur) {
            if i == cur {
                break;
            }
            depth += 1;
            cur = i;
            if depth >= 16 {
                break;
            }
        }
        v[20] = f64::from(depth) / 16.0;
        v[21] = (block.instrs.len().min(32) as u32 as f64) / 32.0;

        let total = block.instrs.len().max(1) as u32 as f64;
        let mut floats = 0u32;
        let mut mems = 0u32;
        let mut calls = 0u32;
        for instr in &block.instrs {
            match instr {
                Instr::Binop { op, .. } if is_float_op(*op) => floats += 1,
                Instr::Unop { op, .. } if is_float_unop(*op) => floats += 1,
                Instr::Load { .. } | Instr::Store { .. } => mems += 1,
                Instr::Call { .. } | Instr::CallIndirect { .. } => calls += 1,
                _ => {}
            }
        }
        v[22] = f64::from(floats) / total;
        v[23] = f64::from(mems) / total;
        v[24] = f64::from(calls) / total;

        match proofs.proof(*id) {
            Proof::AlwaysTaken => v[25] = 1.0,
            Proof::NeverTaken => v[26] = 1.0,
            Proof::Unknown => {}
        }
        let bd = forest.depth(b);
        let td = forest.depth(*taken);
        v[27] = f64::from(td < bd);
        v[28] = f64::from(td > bd);

        out.push(BranchFeatures { id: *id, values: v });
    }
}

fn is_float_op(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::FAdd
            | BinOp::FSub
            | BinOp::FMul
            | BinOp::FDiv
            | BinOp::FEq
            | BinOp::FNe
            | BinOp::FLt
            | BinOp::FLe
            | BinOp::FGt
            | BinOp::FGe
            | BinOp::FMin
            | BinOp::FMax
    )
}

fn is_float_unop(op: trace_ir::UnOp) -> bool {
    use trace_ir::UnOp::*;
    matches!(
        op,
        FNeg | IntToFloat | FloatToInt | Sqrt | Sin | Cos | Exp | Log | Floor | FAbs
    )
}
