//! The deterministic in-tree prediction model and its byte-stable
//! artifact format.
//!
//! The model is a linear classifier over [`crate::features`] vectors with
//! a *softsign* link — `p(taken) = 0.5 + 0.5·z/(1+|z|)` where `z = w·x` —
//! chosen over the usual logistic sigmoid because it needs only `+ - * /`
//! and `abs`: every step of training and inference is exact IEEE-754
//! arithmetic with no libm transcendentals, so retraining on any host
//! reproduces the committed artifact byte-for-byte.
//!
//! Artifact layout (all little-endian):
//!
//! ```text
//! magic   4  b"MFPM"
//! version u32  MODEL_VERSION
//! featver u32  FEATURE_VERSION (layout of the expected input vectors)
//! nfeat   u32  weight count
//! weights nfeat × u64  f64::to_bits
//! check   u64  FNV-1a over everything above
//! ```

use std::sync::OnceLock;

use crate::features::{BranchFeatures, FEATURE_VERSION, NUM_FEATURES};
use trace_ir::BranchId;

/// Bumped on any change to the artifact layout or training procedure.
pub const MODEL_VERSION: u32 = 1;

/// Artifact magic bytes.
pub const MODEL_MAGIC: [u8; 4] = *b"MFPM";

/// Where the committed artifact lives in the source tree. Baked in at
/// compile time so tests and tools resolve it regardless of their
/// working directory.
pub const COMMITTED_MODEL_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/model/mfpredict-v1.model");

/// A trained linear model (weights only; the bias rides in the feature
/// vector's constant term).
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    pub weights: Vec<f64>,
}

/// Artifact decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    Truncated,
    BadMagic,
    BadVersion(u32),
    BadFeatureVersion(u32),
    BadChecksum,
    Io(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Truncated => write!(f, "model artifact truncated"),
            ModelError::BadMagic => write!(f, "model artifact has wrong magic bytes"),
            ModelError::BadVersion(v) => write!(f, "unsupported model version {v}"),
            ModelError::BadFeatureVersion(v) => {
                write!(
                    f,
                    "model trained against feature layout v{v}, expected v{FEATURE_VERSION}"
                )
            }
            ModelError::BadChecksum => write!(f, "model artifact checksum mismatch"),
            ModelError::Io(e) => write!(f, "model artifact unreadable: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Model {
    /// The all-zero model: scores everything 0, predicts not-taken.
    pub fn zero() -> Model {
        Model {
            weights: vec![0.0; NUM_FEATURES],
        }
    }

    /// The raw linear score `w·x`; positive means predicted taken.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.weights.iter().zip(x).map(|(w, x)| w * x).sum()
    }

    /// Probability the branch is taken, through the softsign link.
    pub fn probability(&self, x: &[f64]) -> f64 {
        let z = self.score(x);
        0.5 + 0.5 * (z / (1.0 + z.abs()))
    }

    pub fn predict_taken(&self, x: &[f64]) -> bool {
        self.score(x) > 0.0
    }

    /// Per-site predictions as `(site, taken)` pairs in input order.
    pub fn predict_branches<'a>(
        &'a self,
        features: &'a [BranchFeatures],
    ) -> impl Iterator<Item = (BranchId, bool)> + 'a {
        features
            .iter()
            .map(|f| (f.id, self.predict_taken(&f.values)))
    }

    /// Serializes to the versioned byte-stable artifact format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.weights.len() * 8 + 8);
        out.extend_from_slice(&MODEL_MAGIC);
        out.extend_from_slice(&MODEL_VERSION.to_le_bytes());
        out.extend_from_slice(&FEATURE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.weights.len() as u32).to_le_bytes());
        for w in &self.weights {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        let check = fnv64(&out);
        out.extend_from_slice(&check.to_le_bytes());
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Model, ModelError> {
        if bytes.len() < 24 {
            return Err(ModelError::Truncated);
        }
        if bytes[0..4] != MODEL_MAGIC {
            return Err(ModelError::BadMagic);
        }
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        let version = u32_at(4);
        if version != MODEL_VERSION {
            return Err(ModelError::BadVersion(version));
        }
        let featver = u32_at(8);
        if featver != FEATURE_VERSION {
            return Err(ModelError::BadFeatureVersion(featver));
        }
        let nfeat = u32_at(12) as usize;
        let body = 16 + nfeat * 8;
        if bytes.len() != body + 8 {
            return Err(ModelError::Truncated);
        }
        let check = u64::from_le_bytes(bytes[body..body + 8].try_into().unwrap());
        if fnv64(&bytes[..body]) != check {
            return Err(ModelError::BadChecksum);
        }
        let weights = (0..nfeat)
            .map(|i| {
                let at = 16 + i * 8;
                f64::from_bits(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()))
            })
            .collect();
        Ok(Model { weights })
    }

    /// Loads the committed in-tree artifact. `Err` when the file is
    /// missing or malformed (callers that can proceed without a model
    /// fall back to [`Model::zero`]).
    pub fn load_committed() -> Result<Model, ModelError> {
        let bytes =
            std::fs::read(COMMITTED_MODEL_PATH).map_err(|e| ModelError::Io(e.to_string()))?;
        Model::from_bytes(&bytes)
    }

    /// The committed artifact, loaded once per process; the zero model
    /// when none is committed (predicts all-not-taken, never panics).
    pub fn committed() -> &'static Model {
        static CACHE: OnceLock<Model> = OnceLock::new();
        CACHE.get_or_init(|| Model::load_committed().unwrap_or_else(|_| Model::zero()))
    }
}

/// One training example: a feature vector, its observed majority
/// direction, and a weight (importance) term.
#[derive(Clone, Debug)]
pub struct Sample {
    pub features: [f64; NUM_FEATURES],
    pub taken: bool,
    pub weight: f64,
}

/// Training hyperparameters. The defaults are the ones the committed
/// artifact was produced with; they are part of the reproducibility
/// contract (CI retrains and byte-compares).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: u32,
    pub learning_rate: f64,
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 600,
            learning_rate: 0.4,
            l2: 1e-4,
        }
    }
}

/// Full-batch gradient descent on weighted squared error through the
/// softsign link. Deterministic: fixed iteration count, samples visited
/// in input order, no randomness, no transcendentals.
pub fn train(samples: &[Sample], cfg: &TrainConfig) -> Model {
    let mut w = vec![0.0f64; NUM_FEATURES];
    if samples.is_empty() {
        return Model { weights: w };
    }
    let total_weight: f64 = samples.iter().map(|s| s.weight).sum();
    let norm = if total_weight > 0.0 {
        total_weight
    } else {
        1.0
    };
    let mut grad = vec![0.0f64; NUM_FEATURES];
    for _ in 0..cfg.epochs {
        for g in grad.iter_mut() {
            *g = 0.0;
        }
        for s in samples {
            let z: f64 = w.iter().zip(&s.features).map(|(w, x)| w * x).sum();
            let denom = 1.0 + z.abs();
            let p = 0.5 + 0.5 * (z / denom);
            let y = if s.taken { 1.0 } else { 0.0 };
            // d p / d z for the softsign link.
            let dp = 0.5 / (denom * denom);
            let err = (p - y) * dp * s.weight;
            for (g, x) in grad.iter_mut().zip(&s.features) {
                *g += err * x;
            }
        }
        for (wi, gi) in w.iter_mut().zip(&grad) {
            *wi -= cfg.learning_rate * (gi / norm + cfg.l2 * *wi);
        }
    }
    Model { weights: w }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_roundtrip_is_exact() {
        let m = Model {
            weights: (0..NUM_FEATURES)
                .map(|i| (i as f64) * 0.125 - 1.0)
                .collect(),
        };
        let bytes = m.to_bytes();
        let back = Model::from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn artifact_rejects_corruption() {
        let m = Model::zero();
        let mut bytes = m.to_bytes();
        let last = bytes.len() - 9; // inside the weight payload
        bytes[last] ^= 0xff;
        assert_eq!(Model::from_bytes(&bytes), Err(ModelError::BadChecksum));
        assert_eq!(Model::from_bytes(&bytes[..10]), Err(ModelError::Truncated));
        let mut wrong = m.to_bytes();
        wrong[0] = b'X';
        assert_eq!(Model::from_bytes(&wrong), Err(ModelError::BadMagic));
    }

    #[test]
    fn training_is_deterministic_and_learns_a_separator() {
        let mut samples = Vec::new();
        for i in 0..32 {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = 1.0;
            x[5] = f64::from(i % 2 == 0); // "loop back" branches are taken
            samples.push(Sample {
                features: x,
                taken: i % 2 == 0,
                weight: 1.0,
            });
        }
        let a = train(&samples, &TrainConfig::default());
        let b = train(&samples, &TrainConfig::default());
        assert_eq!(a.to_bytes(), b.to_bytes());
        let mut taken = [0.0; NUM_FEATURES];
        taken[0] = 1.0;
        taken[5] = 1.0;
        let mut not = [0.0; NUM_FEATURES];
        not[0] = 1.0;
        assert!(a.predict_taken(&taken));
        assert!(!a.predict_taken(&not));
    }

    #[test]
    fn committed_artifact_loads() {
        // The in-tree artifact must parse; `committed()` must never panic.
        let m = Model::committed();
        assert_eq!(m.weights.len(), NUM_FEATURES);
    }
}
