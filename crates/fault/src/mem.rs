//! A deterministic in-memory filesystem.
//!
//! The crash-consistency battery's "disk": shared through an `Arc`, it
//! outlives any [`crate::FaultVfs`] accessor wrapped around it, so a
//! simulated crash (drop the poisoned accessor) leaves exactly the bytes
//! the partial operations wrote — reopening with a clean accessor is the
//! reboot.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::Vfs;

/// An in-memory [`Vfs`]: a path → bytes map plus an explicit directory
/// set, with the same existence rules a real filesystem enforces (writes
/// need an existing parent directory, `create_new` is exclusive, renames
/// replace).
#[derive(Debug, Default)]
pub struct MemVfs {
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
}

impl MemVfs {
    /// An empty filesystem.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// Number of files present (not directories).
    pub fn file_count(&self) -> usize {
        self.state.lock().expect("memvfs lock").files.len()
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("memvfs: no such file or directory: {}", path.display()),
    )
}

impl State {
    fn parent_exists(&self, path: &Path) -> bool {
        match path.parent() {
            None => true,
            Some(p) if p.as_os_str().is_empty() => true,
            Some(p) => self.dirs.contains(p),
        }
    }

    fn require_parent(&self, path: &Path) -> io::Result<()> {
        if self.parent_exists(path) {
            Ok(())
        } else {
            Err(not_found(path))
        }
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.state.lock().expect("memvfs lock");
        state
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let state = self.state.lock().expect("memvfs lock");
        state
            .files
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        state.require_parent(path)?;
        state.files.insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        state.require_parent(path)?;
        state
            .files
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        state.require_parent(to)?;
        let bytes = state.files.remove(from).ok_or_else(|| not_found(from))?;
        state.files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        state
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        let mut ancestors: Vec<PathBuf> = path
            .ancestors()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .collect();
        ancestors.reverse();
        state.dirs.extend(ancestors);
        Ok(())
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        state.require_parent(path)?;
        if state.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("memvfs: file exists: {}", path.display()),
            ));
        }
        state.files.insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut state = self.state.lock().expect("memvfs lock");
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.resize(usize::try_from(len).expect("memvfs file fits usize"), 0);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let state = self.state.lock().expect("memvfs lock");
        if state.files.contains_key(path) || state.dirs.contains(path) {
            Ok(())
        } else {
            Err(not_found(path))
        }
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let state = self.state.lock().expect("memvfs lock");
        if !state.dirs.contains(dir) {
            return Err(not_found(dir));
        }
        let mut entries: Vec<PathBuf> = state
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect();
        entries.extend(
            state
                .dirs
                .iter()
                .filter(|p| p.parent() == Some(dir))
                .cloned(),
        );
        entries.sort();
        Ok(entries)
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.state.lock().expect("memvfs lock");
        state.files.contains_key(path) || state.dirs.contains(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_filesystem() {
        let vfs = MemVfs::new();
        let dir = Path::new("/db");
        assert!(vfs.write(&dir.join("x"), b"no parent yet").is_err());
        vfs.create_dir_all(dir).unwrap();
        assert!(vfs.exists(dir));
        assert!(vfs.exists(Path::new("/")));

        let a = dir.join("a.bin");
        assert!(vfs.len(&a).is_err());
        vfs.write(&a, b"abc").unwrap();
        vfs.append(&a, b"def").unwrap();
        assert_eq!(vfs.read(&a).unwrap(), b"abcdef");
        assert_eq!(vfs.len(&a).unwrap(), 6);
        vfs.truncate(&a, 2).unwrap();
        assert_eq!(vfs.read(&a).unwrap(), b"ab");
        vfs.truncate(&a, 4).unwrap();
        assert_eq!(vfs.read(&a).unwrap(), b"ab\0\0", "truncate zero-extends");
        vfs.sync(&a).unwrap();
        assert!(vfs.sync(&dir.join("ghost")).is_err());

        vfs.create_new(&dir.join("lock"), b"1").unwrap();
        let err = vfs.create_new(&dir.join("lock"), b"2").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);

        let b = dir.join("b.bin");
        vfs.rename(&a, &b).unwrap();
        assert!(!vfs.exists(&a));
        assert_eq!(
            vfs.read_dir(dir).unwrap(),
            vec![b.clone(), dir.join("lock")]
        );

        vfs.remove_file(&b).unwrap();
        assert!(vfs.remove_file(&b).is_err());
        assert!(vfs.read_dir(Path::new("/nope")).is_err());
    }

    #[test]
    fn append_creates_and_read_missing_errors() {
        let vfs = MemVfs::new();
        vfs.create_dir_all(Path::new("/d")).unwrap();
        let f = Path::new("/d/log");
        assert!(vfs.read(f).is_err());
        vfs.append(f, b"x").unwrap();
        assert_eq!(vfs.read(f).unwrap(), b"x");
    }
}
