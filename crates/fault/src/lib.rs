#![warn(missing_docs)]

//! # mffault — deterministic fault injection for file I/O
//!
//! Every byte this workspace persists (the harness run cache, the
//! crash-safe profile database) goes through the [`Vfs`] trait instead of
//! `std::fs`, so tests can swap the real filesystem for an in-memory one
//! and wrap either in a seeded fault injector:
//!
//! * [`RealVfs`] — thin passthrough to `std::fs`.
//! * [`MemVfs`] — a deterministic in-memory filesystem. Shared via `Arc`,
//!   it survives a *simulated* process crash: drop the faulting accessor,
//!   open a clean one over the same `Arc`, and you are "rebooting" onto
//!   whatever bytes the crash left behind.
//! * [`FaultVfs`] — wraps any `Vfs` and injects faults according to a
//!   [`FaultPlan`]: short writes, `ENOSPC`, `EINTR`-style transients,
//!   torn renames, and hard crash-points that apply a partial effect and
//!   then fail every subsequent operation. All decisions derive from a
//!   single u64 seed via SplitMix64, so every failure is reproducible.
//!
//! The [`retry`] helper gives callers bounded, deterministic backoff for
//! the transient class; everything else is the caller's policy (salvage,
//! degrade, or die).

mod fault;
mod mem;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub use fault::{FaultCounters, FaultPlan, FaultVfs};
pub use mem::MemVfs;

/// The file-system surface the workspace's persistence layers use.
///
/// Deliberately file-granular (whole-file read, append, atomic-rename)
/// rather than handle-granular: every caller in this workspace follows a
/// write-then-rename or append-then-sync discipline, and keeping the
/// surface small keeps the fault model exhaustive — a [`FaultPlan`] can
/// enumerate every mutation an implementation will ever perform.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Byte length of the file, without reading it. Lets an append-only
    /// writer validate its cached tail position cheaply (a multi-GB
    /// segment should not be re-read just to learn nothing changed).
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Creates or truncates `path` and writes `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` to `to` (atomic on a real POSIX filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and all its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` with `bytes` iff it does not already exist
    /// (`O_EXCL`); the lock-file primitive.
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncates (or zero-extends) `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Flushes `path`'s data to stable storage; the commit acknowledgment
    /// of the append-then-sync discipline.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Entries directly under `dir`, sorted (determinism matters more
    /// than directory order).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether `path` exists (file or directory).
    fn exists(&self, path: &Path) -> bool;
}

/// Passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        Ok(entries)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The kinds of faults [`FaultVfs`] injects. Attached to the
/// `io::Error` payload so callers can classify without string matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A hard crash-point fired: a partial effect may have been applied,
    /// and every later operation on the same accessor fails too. Callers
    /// must treat this as process death.
    Crash,
    /// `EINTR`-style transient; retrying the same operation may succeed.
    Transient,
    /// `ENOSPC`; a partial prefix of the data may have landed.
    Enospc,
    /// A short write: only a prefix of the data landed.
    ShortWrite,
    /// A torn rename: the destination holds a prefix of the source, the
    /// source still exists.
    TornRename,
    /// The plan denies all mutation (read-only filesystem simulation).
    DeniedWrite,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Crash => "simulated crash",
            FaultKind::Transient => "injected transient error",
            FaultKind::Enospc => "injected ENOSPC: no space left on device",
            FaultKind::ShortWrite => "injected short write",
            FaultKind::TornRename => "injected torn rename",
            FaultKind::DeniedWrite => "injected write denial (read-only filesystem)",
        };
        f.write_str(s)
    }
}

/// The error payload carrying a [`FaultKind`].
#[derive(Debug)]
struct InjectedFault(FaultKind);

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mffault: {}", self.0)
    }
}

impl std::error::Error for InjectedFault {}

pub(crate) fn injected_error(kind: FaultKind) -> io::Error {
    let io_kind = match kind {
        FaultKind::Transient => io::ErrorKind::Interrupted,
        FaultKind::DeniedWrite => io::ErrorKind::PermissionDenied,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(io_kind, InjectedFault(kind))
}

/// The injected fault behind `err`, if it came from a [`FaultVfs`].
pub fn fault_kind(err: &io::Error) -> Option<FaultKind> {
    err.get_ref()
        .and_then(|e| e.downcast_ref::<InjectedFault>())
        .map(|f| f.0)
}

/// True for an injected hard crash: the accessor is dead; treat as
/// process death, not as a recoverable I/O error.
pub fn is_crash(err: &io::Error) -> bool {
    fault_kind(err) == Some(FaultKind::Crash)
}

/// True for errors worth a bounded retry: injected transients and real
/// `EINTR`s share `ErrorKind::Interrupted`.
pub fn is_transient(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::Interrupted
}

/// Bounded deterministic backoff for the transient error class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once, never retry).
    pub attempts: u32,
    /// First backoff; doubles per retry. Keep it `ZERO` in tests.
    pub base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 0,
            base: Duration::ZERO,
        }
    }

    /// `attempts` retries with no sleep — what tests want.
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            attempts,
            base: Duration::ZERO,
        }
    }
}

/// Runs `op`, retrying transient failures ([`is_transient`]) up to
/// `policy.attempts` times with doubling backoff. Returns the final
/// result and the number of retries consumed.
pub fn retry<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> (io::Result<T>, u32) {
    let mut used = 0;
    loop {
        match op() {
            Err(e) if is_transient(&e) && used < policy.attempts => {
                let backoff = policy.base.saturating_mul(1 << used.min(16));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                used += 1;
            }
            result => return (result, used),
        }
    }
}

/// One step of the SplitMix64 generator — the seed-expansion primitive
/// every deterministic decision in this crate derives from.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_vfs_roundtrips() {
        let dir = std::env::temp_dir().join(format!("mffault-real-{}", std::process::id()));
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let a = dir.join("a.bin");
        assert!(vfs.len(&a).is_err(), "len of a missing file errors");
        vfs.write(&a, b"hello").unwrap();
        vfs.append(&a, b" world").unwrap();
        vfs.sync(&a).unwrap();
        assert_eq!(vfs.read(&a).unwrap(), b"hello world");
        assert_eq!(vfs.len(&a).unwrap(), 11);
        let b = dir.join("b.bin");
        vfs.rename(&a, &b).unwrap();
        assert!(!vfs.exists(&a));
        assert_eq!(vfs.read(&b).unwrap(), b"hello world");
        vfs.truncate(&b, 5).unwrap();
        assert_eq!(vfs.read(&b).unwrap(), b"hello");
        assert!(vfs.create_new(&b, b"x").is_err(), "create_new is exclusive");
        assert_eq!(vfs.read_dir(&dir).unwrap(), vec![b.clone()]);
        vfs.remove_file(&b).unwrap();
        assert!(vfs.read_dir(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_consumes_transients_only() {
        let mut failures = 3;
        let (result, used) = retry(RetryPolicy::immediate(5), || {
            if failures > 0 {
                failures -= 1;
                Err(injected_error(FaultKind::Transient))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(used, 3);

        // Non-transient errors pass through immediately.
        let mut calls = 0;
        let (result, used) = retry(RetryPolicy::immediate(5), || -> io::Result<()> {
            calls += 1;
            Err(injected_error(FaultKind::Enospc))
        });
        assert!(result.is_err());
        assert_eq!((calls, used), (1, 0));

        // A bounded budget gives up.
        let (result, used) = retry(RetryPolicy::immediate(2), || -> io::Result<()> {
            Err(injected_error(FaultKind::Transient))
        });
        assert!(is_transient(&result.unwrap_err()));
        assert_eq!(used, 2);
    }

    #[test]
    fn fault_kinds_classify() {
        assert!(is_crash(&injected_error(FaultKind::Crash)));
        assert!(!is_crash(&injected_error(FaultKind::Enospc)));
        assert!(is_transient(&injected_error(FaultKind::Transient)));
        assert_eq!(
            fault_kind(&injected_error(FaultKind::TornRename)),
            Some(FaultKind::TornRename)
        );
        assert_eq!(fault_kind(&io::Error::other("plain")), None);
        assert_eq!(
            injected_error(FaultKind::DeniedWrite).kind(),
            io::ErrorKind::PermissionDenied
        );
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = 7;
        let mut b = 7;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::BTreeSet<&u64> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }
}
