//! The seeded fault injector.
//!
//! [`FaultVfs`] wraps any [`Vfs`] and, for every *mutating* operation,
//! consults a [`FaultPlan`]: a single u64 seed expands (via SplitMix64)
//! into a reproducible stream of decisions — inject a transient error, an
//! `ENOSPC`, a short write, a torn rename, or proceed. A hard crash-point
//! (`crash_at = Some(k)`) fires on the k-th mutating operation: a partial
//! effect is applied (a prefix of the data, or a coin-flip for
//! all-or-nothing operations), and from then on every operation fails —
//! the accessor is "dead". Drop it and reopen the underlying store with a
//! clean accessor to simulate a reboot.
//!
//! Read operations are never faulted (except after a crash): the fault
//! model covers losing or tearing *writes*; read-side corruption is
//! exercised separately by flipping bytes on the underlying store.
//!
//! The wrapped store is always-durable (notably [`crate::MemVfs`]), so
//! `sync` is a commit *marker*, not a buffer flush: a crash between an
//! append and its sync still leaves the appended bytes visible. Crash
//! batteries must therefore assert "recovered state is a prefix bounded
//! below by acknowledged syncs", not exact equality with them.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::{injected_error, splitmix64, FaultKind, Vfs};

/// Everything a [`FaultVfs`] needs to decide the fate of each operation.
/// All rates are per-mille (0..=1000) per mutating operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every random decision; equal plans replay identically.
    pub seed: u64,
    /// Probability a data write lands only a prefix.
    pub short_write_per_mille: u16,
    /// Probability a data write fails with `ENOSPC` (a prefix may land).
    pub enospc_per_mille: u16,
    /// Probability any mutation fails with a retryable transient error.
    pub transient_per_mille: u16,
    /// Inject exactly one transient failure on this mutating-op index
    /// (0-based, counted since construction) — surgical targeting of a
    /// single append, sync, or rename inside a known protocol.
    pub transient_at: Option<u64>,
    /// Probability a rename tears (destination = prefix, source remains).
    pub torn_rename_per_mille: u16,
    /// Hard crash on this mutating-op index (0-based, counted since
    /// construction).
    pub crash_at: Option<u64>,
    /// Deny every mutation with `PermissionDenied` (read-only filesystem).
    pub deny_writes: bool,
}

impl FaultPlan {
    /// No faults at all — useful for counting mutating ops.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            short_write_per_mille: 0,
            enospc_per_mille: 0,
            transient_per_mille: 0,
            transient_at: None,
            torn_rename_per_mille: 0,
            crash_at: None,
            deny_writes: false,
        }
    }

    /// A moderate mixed plan derived entirely from `seed`: each fault
    /// class gets a rate in 0..=80‰ (transients up to 160‰), so long
    /// scripts see several injections without drowning.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed ^ 0xF4A7_0000_0000_0001;
        FaultPlan {
            seed,
            short_write_per_mille: (splitmix64(&mut s) % 81) as u16,
            enospc_per_mille: (splitmix64(&mut s) % 81) as u16,
            transient_per_mille: (splitmix64(&mut s) % 161) as u16,
            transient_at: None,
            torn_rename_per_mille: (splitmix64(&mut s) % 81) as u16,
            crash_at: None,
            deny_writes: false,
        }
    }

    /// Crash on mutating op `k`, no other faults.
    pub fn crash_at(k: u64) -> Self {
        FaultPlan {
            crash_at: Some(k),
            ..FaultPlan::none()
        }
    }

    /// Deny all mutation — simulates a read-only filesystem.
    pub fn deny_writes() -> Self {
        FaultPlan {
            deny_writes: true,
            ..FaultPlan::none()
        }
    }

    /// Transient errors only, at the given per-mille rate.
    pub fn transient(seed: u64, per_mille: u16) -> Self {
        FaultPlan {
            seed,
            transient_per_mille: per_mille,
            ..FaultPlan::none()
        }
    }
}

/// Running totals of what a [`FaultVfs`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient (`EINTR`-style) errors injected.
    pub transients: u64,
    /// Short writes injected.
    pub short_writes: u64,
    /// `ENOSPC` errors injected.
    pub enospc: u64,
    /// Torn renames injected.
    pub torn_renames: u64,
    /// Mutations denied by a read-only plan.
    pub denied: u64,
    /// Hard crashes fired (0 or 1).
    pub crashes: u64,
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng: u64,
    ops: u64,
    counters: FaultCounters,
    crashed: bool,
}

/// A [`Vfs`] wrapper injecting faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Mutex<FaultState>,
}

/// The outcome decided for one mutating operation (rng already advanced).
enum Gate {
    /// No fault; delegate.
    Proceed,
    /// Fail with this kind; no effect applied.
    Fail(FaultKind),
    /// Apply a `cut`-byte prefix of the data, then fail with the kind.
    Partial(usize, FaultKind),
    /// Crash-point on a data op: apply a `cut`-byte prefix, then die.
    CrashData(usize),
    /// Crash-point on an all-or-nothing op: `true` = op applied fully
    /// before the crash, `false` = not at all.
    CrashToggle(bool),
}

impl FaultVfs {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        FaultVfs {
            inner,
            state: Mutex::new(FaultState {
                rng: plan.seed,
                plan,
                ops: 0,
                counters: FaultCounters::default(),
                crashed: false,
            }),
        }
    }

    /// Mutating operations observed so far (including faulted ones) —
    /// run a fault-free plan first to learn a script's crash-point count.
    pub fn op_count(&self) -> u64 {
        self.state.lock().expect("fault lock").ops
    }

    /// What was injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.state.lock().expect("fault lock").counters
    }

    /// True once a crash-point fired; every operation fails from then on.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault lock").crashed
    }

    /// Replaces the plan mid-flight (reseeding the rng from the new
    /// plan's seed). The mutating-op counter keeps running, so a
    /// `crash_at` in the new plan still refers to the index counted since
    /// construction.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut state = self.state.lock().expect("fault lock");
        state.rng = plan.seed;
        state.plan = plan;
    }

    /// Decides the fate of one mutating op. `data_len` is `Some` for
    /// prefix-capable operations (write/append/create_new), `is_rename`
    /// enables the torn-rename class.
    fn gate(&self, data_len: Option<usize>, is_rename: bool) -> Gate {
        let mut state = self.state.lock().expect("fault lock");
        if state.crashed {
            return Gate::Fail(FaultKind::Crash);
        }
        let idx = state.ops;
        state.ops += 1;
        if state.plan.crash_at == Some(idx) {
            state.crashed = true;
            state.counters.crashes += 1;
            let roll = splitmix64(&mut state.rng);
            return match data_len {
                Some(len) => Gate::CrashData((roll % (len as u64 + 1)) as usize),
                None => Gate::CrashToggle(roll.is_multiple_of(2)),
            };
        }
        if state.plan.transient_at == Some(idx) {
            state.counters.transients += 1;
            return Gate::Fail(FaultKind::Transient);
        }
        if state.plan.deny_writes {
            state.counters.denied += 1;
            return Gate::Fail(FaultKind::DeniedWrite);
        }
        let plan = state.plan;
        let roll = (splitmix64(&mut state.rng) % 1000) as u16;
        let transient_to = plan.transient_per_mille;
        let enospc_to = transient_to
            + if data_len.is_some() {
                plan.enospc_per_mille
            } else {
                0
            };
        let short_to = enospc_to
            + if data_len.is_some() {
                plan.short_write_per_mille
            } else {
                0
            };
        let torn_to = short_to
            + if is_rename {
                plan.torn_rename_per_mille
            } else {
                0
            };
        if roll < transient_to {
            state.counters.transients += 1;
            Gate::Fail(FaultKind::Transient)
        } else if roll < enospc_to {
            state.counters.enospc += 1;
            let len = data_len.unwrap_or(0);
            let cut = (splitmix64(&mut state.rng) % (len as u64 + 1)) as usize;
            Gate::Partial(cut, FaultKind::Enospc)
        } else if roll < short_to {
            state.counters.short_writes += 1;
            // A short write lands strictly less than requested.
            let len = data_len.unwrap_or(0);
            let cut = (splitmix64(&mut state.rng) % (len.max(1) as u64)) as usize;
            Gate::Partial(cut, FaultKind::ShortWrite)
        } else if roll < torn_to {
            state.counters.torn_renames += 1;
            let cut = splitmix64(&mut state.rng);
            Gate::Partial(cut as usize, FaultKind::TornRename)
        } else {
            Gate::Proceed
        }
    }

    fn check_read(&self) -> io::Result<()> {
        if self.state.lock().expect("fault lock").crashed {
            Err(injected_error(FaultKind::Crash))
        } else {
            Ok(())
        }
    }

    /// Applies a torn rename: destination receives a prefix of the
    /// source, the source survives (models an interrupted copy+delete).
    fn tear_rename(&self, from: &Path, to: &Path, cut: usize) -> io::Error {
        if let Ok(bytes) = self.inner.read(from) {
            let cut = cut % (bytes.len() + 1);
            let _ = self.inner.write(to, &bytes[..cut]);
        }
        injected_error(FaultKind::TornRename)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_read()?;
        self.inner.read(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        // A metadata read: never faulted, like `read` (except post-crash).
        self.check_read()?;
        self.inner.len(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(Some(bytes.len()), false) {
            Gate::Proceed => self.inner.write(path, bytes),
            Gate::Fail(kind) => Err(injected_error(kind)),
            Gate::Partial(cut, kind) => {
                let _ = self.inner.write(path, &bytes[..cut]);
                Err(injected_error(kind))
            }
            Gate::CrashData(cut) => {
                let _ = self.inner.write(path, &bytes[..cut]);
                Err(injected_error(FaultKind::Crash))
            }
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.write(path, bytes);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(Some(bytes.len()), false) {
            Gate::Proceed => self.inner.append(path, bytes),
            Gate::Fail(kind) => Err(injected_error(kind)),
            Gate::Partial(cut, kind) => {
                let _ = self.inner.append(path, &bytes[..cut]);
                Err(injected_error(kind))
            }
            Gate::CrashData(cut) => {
                let _ = self.inner.append(path, &bytes[..cut]);
                Err(injected_error(FaultKind::Crash))
            }
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.append(path, bytes);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate(None, true) {
            Gate::Proceed => self.inner.rename(from, to),
            Gate::Fail(kind) => Err(injected_error(kind)),
            Gate::Partial(cut, FaultKind::TornRename) => Err(self.tear_rename(from, to, cut)),
            Gate::Partial(_, kind) => Err(injected_error(kind)),
            Gate::CrashData(_) => Err(injected_error(FaultKind::Crash)),
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.rename(from, to);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.gate(None, false) {
            Gate::Proceed => self.inner.remove_file(path),
            Gate::Fail(kind) | Gate::Partial(_, kind) => Err(injected_error(kind)),
            Gate::CrashData(_) => Err(injected_error(FaultKind::Crash)),
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.remove_file(path);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.gate(None, false) {
            Gate::Proceed => self.inner.create_dir_all(path),
            Gate::Fail(kind) | Gate::Partial(_, kind) => Err(injected_error(kind)),
            Gate::CrashData(_) => Err(injected_error(FaultKind::Crash)),
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.create_dir_all(path);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(Some(bytes.len()), false) {
            Gate::Proceed => self.inner.create_new(path, bytes),
            Gate::Fail(kind) => Err(injected_error(kind)),
            Gate::Partial(cut, kind) => {
                let _ = self.inner.create_new(path, &bytes[..cut]);
                Err(injected_error(kind))
            }
            Gate::CrashData(cut) => {
                let _ = self.inner.create_new(path, &bytes[..cut]);
                Err(injected_error(FaultKind::Crash))
            }
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.create_new(path, bytes);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.gate(None, false) {
            Gate::Proceed => self.inner.truncate(path, len),
            Gate::Fail(kind) | Gate::Partial(_, kind) => Err(injected_error(kind)),
            Gate::CrashData(_) => Err(injected_error(FaultKind::Crash)),
            Gate::CrashToggle(apply) => {
                if apply {
                    let _ = self.inner.truncate(path, len);
                }
                Err(injected_error(FaultKind::Crash))
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.gate(None, false) {
            Gate::Proceed => self.inner.sync(path),
            Gate::Fail(kind) | Gate::Partial(_, kind) => Err(injected_error(kind)),
            // A crash during sync applies nothing: the data (if any) is
            // already durable in the wrapped store; the ack is lost.
            Gate::CrashData(_) | Gate::CrashToggle(_) => Err(injected_error(FaultKind::Crash)),
        }
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_read()?;
        self.inner.read_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        // `exists` has no error channel; post-crash callers learn of the
        // crash from their next fallible operation.
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fault_kind, is_crash, is_transient, MemVfs};

    fn script(vfs: &dyn Vfs) -> Vec<io::Result<()>> {
        let d = Path::new("/d");
        let mut results = vec![vfs.create_dir_all(d)];
        for i in 0..6u8 {
            let f = d.join(format!("f{i}"));
            results.push(vfs.write(&f, &[i; 40]));
            results.push(vfs.append(&f, &[0xEE; 10]));
            results.push(vfs.sync(&f));
        }
        results.push(vfs.rename(&d.join("f0"), &d.join("g0")));
        results.push(vfs.remove_file(&d.join("f1")));
        results
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = |seed: u64| {
            let mem = Arc::new(MemVfs::new());
            let fv = FaultVfs::new(mem.clone(), FaultPlan::from_seed(seed));
            let outcomes: Vec<Option<FaultKind>> = script(&fv)
                .iter()
                .map(|r| r.as_ref().err().and_then(fault_kind))
                .collect();
            let mut files: Vec<(std::path::PathBuf, Vec<u8>)> = Vec::new();
            if let Ok(entries) = mem.read_dir(Path::new("/d")) {
                for e in entries {
                    files.push((e.clone(), mem.read(&e).unwrap_or_default()));
                }
            }
            (outcomes, fv.counters(), files)
        };
        for seed in [3, 17, 1u64 << 40] {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
        // Different seeds should not all behave identically; at least one
        // of a handful must inject something.
        let injected = (0..8).any(|seed| {
            let (_, c, _) = run(seed);
            c.transients + c.enospc + c.short_writes + c.torn_renames > 0
        });
        assert!(injected, "from_seed plans never inject anything");
    }

    #[test]
    fn transient_at_fails_exactly_one_targeted_op() {
        let mem = Arc::new(MemVfs::new());
        let fv = FaultVfs::new(mem.clone(), FaultPlan::none());
        script(&fv).into_iter().for_each(|r| r.unwrap());
        let total = fv.op_count();

        // Op 0 is the root create_dir_all; failing it starves every later
        // op of its parent directory, so target the ops after it.
        for k in 1..total {
            let mem = Arc::new(MemVfs::new());
            let fv = FaultVfs::new(
                mem.clone(),
                FaultPlan {
                    transient_at: Some(k),
                    ..FaultPlan::none()
                },
            );
            let results = script(&fv);
            let errs: Vec<&io::Error> = results.iter().filter_map(|r| r.as_ref().err()).collect();
            assert_eq!(errs.len(), 1, "op {k} alone must fail");
            assert!(is_transient(errs[0]), "op {k} fails transiently");
            assert_eq!(fv.counters().transients, 1);
            assert!(!fv.crashed(), "a targeted transient is not a crash");
        }
    }

    #[test]
    fn crash_point_poisons_everything_after() {
        let mem = Arc::new(MemVfs::new());
        let fv = FaultVfs::new(mem.clone(), FaultPlan::none());
        script(&fv).into_iter().for_each(|r| r.unwrap());
        let total = fv.op_count();
        assert!(total > 10);

        for k in 0..total {
            let mem = Arc::new(MemVfs::new());
            let fv = FaultVfs::new(mem.clone(), FaultPlan::crash_at(k));
            let results = script(&fv);
            let first_err = results.iter().position(|r| r.is_err()).expect("crashed");
            assert!(is_crash(results[first_err].as_ref().unwrap_err()));
            // Every operation after the crash fails with the crash error.
            for r in &results[first_err + 1..] {
                assert!(is_crash(r.as_ref().unwrap_err()), "crash at {k}");
            }
            assert!(fv.crashed());
            assert_eq!(fv.counters().crashes, 1);
            // The underlying store remains accessible through a clean
            // accessor — the "reboot".
            let _ = mem.exists(Path::new("/d"));
        }
    }

    #[test]
    fn partial_writes_are_prefixes() {
        // A plan with only short writes: whatever lands must be a prefix
        // of the intended bytes.
        let mem = Arc::new(MemVfs::new());
        let fv = FaultVfs::new(
            mem.clone(),
            FaultPlan {
                seed: 5,
                short_write_per_mille: 500,
                ..FaultPlan::none()
            },
        );
        fv.create_dir_all(Path::new("/d")).unwrap();
        let payload: Vec<u8> = (0..=200).collect();
        let mut shorts = 0;
        for i in 0..40 {
            let f = Path::new("/d").join(format!("w{i}"));
            match fv.write(&f, &payload) {
                Ok(()) => assert_eq!(mem.read(&f).unwrap(), payload),
                Err(e) => {
                    assert_eq!(fault_kind(&e), Some(FaultKind::ShortWrite));
                    let got = mem.read(&f).unwrap_or_default();
                    assert!(got.len() < payload.len());
                    assert_eq!(got[..], payload[..got.len()], "prefix property");
                    shorts += 1;
                }
            }
        }
        assert!(shorts > 0, "a 50% plan injected nothing in 40 writes");
        assert_eq!(fv.counters().short_writes, shorts);
    }

    #[test]
    fn torn_rename_leaves_prefix_and_source() {
        let mem = Arc::new(MemVfs::new());
        let fv = FaultVfs::new(
            mem.clone(),
            FaultPlan {
                seed: 11,
                torn_rename_per_mille: 1000,
                ..FaultPlan::none()
            },
        );
        fv.create_dir_all(Path::new("/d")).unwrap();
        let src = Path::new("/d/src");
        let dst = Path::new("/d/dst");
        fv.write(src, b"ABCDEFGH").unwrap();
        let err = fv.rename(src, dst).unwrap_err();
        assert_eq!(fault_kind(&err), Some(FaultKind::TornRename));
        assert_eq!(mem.read(src).unwrap(), b"ABCDEFGH", "source survives");
        let torn = mem.read(dst).unwrap_or_default();
        assert_eq!(torn[..], b"ABCDEFGH"[..torn.len()], "destination prefix");
    }

    #[test]
    fn deny_writes_blocks_mutation_not_reads() {
        let mem = Arc::new(MemVfs::new());
        mem.create_dir_all(Path::new("/d")).unwrap();
        mem.write(Path::new("/d/f"), b"data").unwrap();
        let fv = FaultVfs::new(mem.clone(), FaultPlan::deny_writes());
        assert_eq!(fv.read(Path::new("/d/f")).unwrap(), b"data");
        let err = fv.write(Path::new("/d/g"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert!(fv.remove_file(Path::new("/d/f")).is_err());
        assert_eq!(mem.read(Path::new("/d/f")).unwrap(), b"data");
        assert_eq!(fv.counters().denied, 2);
    }

    #[test]
    fn transient_plans_are_retryable() {
        let mem = Arc::new(MemVfs::new());
        let fv = FaultVfs::new(mem.clone(), FaultPlan::transient(9, 400));
        let (made, dir_retries) = crate::retry(crate::RetryPolicy::immediate(10), || {
            fv.create_dir_all(Path::new("/d"))
        });
        made.unwrap();
        let f = Path::new("/d/log");
        let mut retried = u64::from(dir_retries);
        for _ in 0..30 {
            let (result, used) =
                crate::retry(crate::RetryPolicy::immediate(10), || fv.append(f, b"x"));
            result.unwrap();
            retried += u64::from(used);
        }
        assert!(
            retried > 0,
            "a 40% transient plan never fired in 30 appends"
        );
        assert_eq!(fv.counters().transients, retried);
        // Every append eventually landed exactly once.
        assert_eq!(mem.read(f).unwrap().len(), 30);
    }

    #[test]
    fn set_plan_switches_behavior() {
        let mem = Arc::new(MemVfs::new());
        let fv = FaultVfs::new(mem.clone(), FaultPlan::none());
        fv.create_dir_all(Path::new("/d")).unwrap();
        fv.write(Path::new("/d/a"), b"ok").unwrap();
        fv.set_plan(FaultPlan::deny_writes());
        assert!(fv.write(Path::new("/d/b"), b"no").is_err());
        fv.set_plan(FaultPlan::none());
        fv.write(Path::new("/d/b"), b"yes").unwrap();
        assert!(is_transient(&injected_error(FaultKind::Transient)));
    }
}
