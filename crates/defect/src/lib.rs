#![warn(missing_docs)]

//! # mfdefect — the seeded-defect registry
//!
//! The mutation gauntlet needs known bugs it can switch on to prove the
//! fuzzer's oracles have teeth. Each defect is a tiny, deliberate
//! mis-compilation or mis-measurement wired into a product crate behind
//! that crate's off-by-default `seeded-defects` cargo feature; this crate
//! holds the process-global switchboard that decides, at runtime, which
//! (if any) of those defects is live.
//!
//! Two properties matter:
//!
//! * **Dormant by default.** Even in a build with the feature enabled,
//!   every defect is inactive until [`activate`] is called, so a test
//!   binary that links the gauntlet machinery still behaves identically
//!   to a clean build unless a test (or `mffuzz --defect`) opts in.
//! * **Near-zero cost.** Hook sites call [`active`], whose fast path is
//!   one relaxed atomic load of a global counter: when nothing was ever
//!   activated the name is not even looked at.
//!
//! Activation is process-global, so tests that activate defects must
//! serialize themselves (the gauntlet runs all defects inside one test).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Every seeded defect, by the `layer-site-effect` naming scheme. The
/// gauntlet iterates this list; `mffuzz --list-defects` prints it.
pub const KNOWN: &[&str] = &[
    // mfopt: fold_binop's Add case folds to l + r + 1.
    "opt-fold-add-off-by-one",
    // mfopt: dead_code treats Emit as removable.
    "opt-dce-drops-emit",
    // mfopt: jump_thread swaps a threaded branch's taken/not-taken edges.
    "opt-thread-swaps-edges",
    // trace-vm: aggregate branch counters record the inverted direction
    // (the recorded trace stays correct).
    "vm-branch-count-polarity",
    // trace-vm: not-taken executions are not counted at all.
    "vm-profile-drop-increment",
    // trace-vm flat backend: the flattener swaps a fused compare-branch's
    // taken/not-taken code targets (recording stays correct, control goes
    // to the wrong arm — only the flat-vs-reference differential sees it).
    "vm-flat-fuse-swapped-arms",
    // mflang: cascaded switch lowering compares with <= instead of ==.
    "lang-switch-case-compare",
    // ifprob: directive writing drops the per-line ordinal increment, so
    // two branches on one source line collide.
    "profile-directive-ordinal",
    // ifprob: the Scaled combine rule inflates taken weight by 1.5x.
    "profile-combine-taken-inflate",
    // mfprofdb: frame validation skips the checksum comparison, so
    // corrupted segment tails are accepted instead of salvaged away.
    "profdb-checksum-skipped",
    // mfprofsvc: group commit acknowledges a batch as Committed before
    // the shard segment is synced, so a crash (or failed sync) can lose
    // records the caller was told were durable.
    "profsvc-batch-ack-early",
    // mfpredict: interval widening keeps a stale upper bound instead of
    // widening it to +inf, so loop counters "provably" never exceed their
    // first-iterations value and the analysis emits unsound proofs that
    // dynamic execution contradicts.
    "predict-widen-dropped-bound",
    // mfdyn: the online gshare predictor skips its global-history update
    // on not-taken branches, so its table indices drift away from the
    // golden trace replay's and the mispredict counts disagree.
    "dynpred-history-not-updated",
    // trace-vm flat backend: the first conditional side exit emitted into a
    // tail-duplicated trace block tallies into the previous branch-counter
    // slot (control flow and the recorded trace stay correct — only the
    // flat-vs-reference aggregate-count differential sees it).
    "vm-trace-sidexit-counter-drift",
    // mfstale: site fingerprints hash every comparison operator as Eq, so
    // an edit that flips an operator (`<` to `<=`) leaves the fingerprint
    // unchanged and the remap wrongly salvages the old counts onto the
    // now-different branch instead of orphaning them.
    "stale-fingerprint-ignores-operator",
];

static ACTIVE_COUNT: AtomicUsize = AtomicUsize::new(0);

// One flag per KNOWN entry, same order. `AtomicBool::new(false)` is not
// const-cloneable, hence the explicit list sized by a compile-time check.
static FLAGS: [AtomicBool; 15] = [
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
];

const _: () = assert!(KNOWN.len() == FLAGS.len());

fn index_of(name: &str) -> Option<usize> {
    KNOWN.iter().position(|&k| k == name)
}

/// True when `name` is a known defect that has been activated. The fast
/// path — nothing active anywhere — is a single relaxed load.
#[inline]
pub fn active(name: &str) -> bool {
    if ACTIVE_COUNT.load(Ordering::Relaxed) == 0 {
        return false;
    }
    index_of(name).is_some_and(|i| FLAGS[i].load(Ordering::Relaxed))
}

/// Activates a seeded defect for the rest of the process (or until
/// [`clear`]). Returns false when the name is not in [`KNOWN`].
pub fn activate(name: &str) -> bool {
    let Some(i) = index_of(name) else {
        return false;
    };
    if !FLAGS[i].swap(true, Ordering::Relaxed) {
        ACTIVE_COUNT.fetch_add(1, Ordering::Relaxed);
    }
    true
}

/// Deactivates every defect, restoring clean behavior.
pub fn clear() {
    for flag in &FLAGS {
        flag.store(false, Ordering::Relaxed);
    }
    ACTIVE_COUNT.store(0, Ordering::Relaxed);
}

/// Names of the currently active defects, in [`KNOWN`] order.
pub fn active_names() -> Vec<&'static str> {
    KNOWN
        .iter()
        .zip(&FLAGS)
        .filter(|(_, f)| f.load(Ordering::Relaxed))
        .map(|(&n, _)| n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share the process-global switchboard, so they run as one
    // test function to avoid interleaving.
    #[test]
    fn lifecycle() {
        clear();
        assert!(!active("opt-fold-add-off-by-one"));
        assert!(active_names().is_empty());

        assert!(activate("opt-fold-add-off-by-one"));
        assert!(active("opt-fold-add-off-by-one"));
        assert!(!active("opt-dce-drops-emit"));
        // Re-activation is idempotent.
        assert!(activate("opt-fold-add-off-by-one"));
        assert_eq!(active_names(), vec!["opt-fold-add-off-by-one"]);

        assert!(!activate("no-such-defect"));
        assert!(!active("no-such-defect"));

        clear();
        assert!(!active("opt-fold-add-off-by-one"));
        assert!(active_names().is_empty());
    }
}
