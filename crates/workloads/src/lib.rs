#![warn(missing_docs)]

//! # mfwork
//!
//! The program sample base: one guest program per row of the paper's
//! Table 2, written in `mflang` and executed on `trace-vm`, plus seeded
//! dataset generators standing in for the SPEC inputs.
//!
//! The originals are licensed SPEC sources we cannot ship, so each workload
//! implements the *real algorithm* of its namesake — LZW compression, a
//! Lisp interpreter, an LCS diff, two-level logic minimization, modified
//! nodal circuit analysis, Gaussian elimination, SOR mesh smoothing, … — so
//! that its control-flow character (branch density, direction bias,
//! module-selection behaviour across datasets) is genuine. See DESIGN.md §2
//! for the substitution argument.
//!
//! ```
//! use mfwork::suite;
//!
//! let programs = suite();
//! assert!(programs.len() >= 14);
//! let doduc = programs.iter().find(|w| w.name == "doduc").unwrap();
//! assert_eq!(doduc.datasets.len(), 3);
//! let program = doduc.compile().unwrap();
//! let run = doduc.run(&program, &doduc.datasets[0]).unwrap();
//! assert!(run.stats.total_instrs > 0);
//! ```

mod datagen;
mod programs;

pub use programs::*;

use mflang::CompileError;
use mfopt::Pipeline;
use trace_ir::Program;
use trace_vm::{Input, Run, RuntimeError, Vm, VmConfig};

/// The paper's two program groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Group {
    /// FORTRAN / floating-point programs (Figure 1a / 2a side).
    FortranFp,
    /// C / integer programs (Figure 1b / 2b side).
    CInteger,
}

/// One dataset: a named set of entry-function inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// The dataset name used throughout the experiment tables.
    pub name: String,
    /// What the dataset is (Table 2's description column).
    pub description: String,
    /// The inputs handed to the guest `main`.
    pub inputs: Vec<Input>,
}

impl Dataset {
    /// Creates a dataset.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        inputs: Vec<Input>,
    ) -> Self {
        Dataset {
            name: name.into(),
            description: description.into(),
            inputs,
        }
    }
}

/// A guest program plus its datasets — one Table 2 row.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Program name (`li`, `compress`, `spice2g6`, …).
    pub name: &'static str,
    /// Table 2's description.
    pub description: &'static str,
    /// FORTRAN/FP or C/integer.
    pub group: Group,
    /// Guest source text.
    pub source: String,
    /// The datasets, in canonical order.
    pub datasets: Vec<Dataset>,
}

impl Workload {
    /// Compiles the guest source with optimization off — the profiling
    /// configuration (the paper ran with global DCE disabled).
    ///
    /// # Errors
    ///
    /// Returns the guest program's [`CompileError`]; the bundled sources
    /// always compile (tests guarantee it).
    pub fn compile(&self) -> Result<Program, CompileError> {
        mflang::compile(&self.source)
    }

    /// Compiles with the full classical pipeline including DCE — the
    /// "what the compiler would have done" side of Table 1.
    ///
    /// # Errors
    ///
    /// Returns the guest program's [`CompileError`].
    pub fn compile_optimized(&self) -> Result<Program, CompileError> {
        let mut p = self.compile()?;
        Pipeline::standard().run(&mut p);
        Ok(p)
    }

    /// [`Workload::compile_optimized`] with the semantic verifier run
    /// between passes. Same transformations, same output program — plus a
    /// typed error naming the pass that introduced a defect, if any ever
    /// does.
    ///
    /// # Errors
    ///
    /// [`VerifiedCompileError::Compile`] if the guest source fails to
    /// compile, [`VerifiedCompileError::Pipeline`] if the verifier
    /// attributes a semantic defect to an optimization pass.
    pub fn compile_optimized_verified(&self) -> Result<Program, VerifiedCompileError> {
        let mut p = self.compile().map_err(VerifiedCompileError::Compile)?;
        Pipeline::standard()
            .run_checked(&mut p)
            .map_err(|d| VerifiedCompileError::Pipeline(Box::new(d)))?;
        Ok(p)
    }

    /// The canonical VM configuration for measured runs of this workload.
    /// External runners (e.g. the mfharness scheduler) must use this so
    /// their statistics are bit-identical to [`Workload::run`].
    pub fn vm_config(&self) -> VmConfig {
        // Generous but bounded: a workload stuck in a loop fails the run
        // instead of hanging the harness.
        VmConfig {
            fuel: 4_000_000_000,
            ..VmConfig::default()
        }
    }

    /// Runs `program` (a compilation of this workload) on `dataset`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the guest faults — the bundled
    /// workloads never do.
    pub fn run(&self, program: &Program, dataset: &Dataset) -> Result<Run, RuntimeError> {
        Vm::with_config(program, self.vm_config()).run(&dataset.inputs)
    }

    /// Finds a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }
}

/// Why [`Workload::compile_optimized_verified`] failed.
#[derive(Debug)]
pub enum VerifiedCompileError {
    /// The guest source failed to compile.
    Compile(CompileError),
    /// The semantic verifier attributed a defect to an optimization pass.
    Pipeline(Box<mfopt::PassDefect>),
}

impl std::fmt::Display for VerifiedCompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifiedCompileError::Compile(e) => write!(f, "compile error: {e}"),
            VerifiedCompileError::Pipeline(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for VerifiedCompileError {}

/// The full program sample base, in Table 2 order (FORTRAN/FP first).
pub fn suite() -> Vec<Workload> {
    vec![
        programs::spice::workload(),
        programs::doduc::workload(),
        programs::numeric::nasa7(),
        programs::numeric::matrix300(),
        programs::fpppp::workload(),
        programs::numeric::tomcatv(),
        programs::numeric::lfk(),
        programs::gcc::workload(),
        programs::espresso::workload(),
        programs::li::workload(),
        programs::eqntott::workload(),
        programs::compress::compress(),
        programs::compress::uncompress(),
        programs::mfcom::workload(),
        programs::spiff::workload(),
    ]
}

/// The workloads with more than one dataset — the population Figures 2 & 3
/// are computed over.
pub fn multi_dataset_suite() -> Vec<Workload> {
    suite()
        .into_iter()
        .filter(|w| w.datasets.len() >= 2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2_inventory() {
        let s = suite();
        let names: Vec<_> = s.iter().map(|w| w.name).collect();
        for expected in [
            "spice2g6",
            "doduc",
            "nasa7",
            "matrix300",
            "fpppp",
            "tomcatv",
            "lfk",
            "gcc",
            "espresso",
            "li",
            "eqntott",
            "compress",
            "uncompress",
            "mfcom",
            "spiff",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
    }

    #[test]
    fn every_workload_compiles_both_ways() {
        for w in suite() {
            let p = w
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name));
            assert!(p.validate().is_ok(), "{} produced invalid IR", w.name);
            let o = w
                .compile_optimized()
                .unwrap_or_else(|e| panic!("{} failed optimized compile: {e}", w.name));
            assert!(o.validate().is_ok());
            assert!(
                o.static_instr_count() <= p.static_instr_count(),
                "{}: optimization grew the program",
                w.name
            );
        }
    }

    #[test]
    fn verified_compile_matches_unverified_on_one_workload() {
        let w = suite().into_iter().find(|w| w.name == "spiff").unwrap();
        let plain = w.compile_optimized().unwrap();
        let verified = w.compile_optimized_verified().unwrap();
        assert_eq!(plain, verified, "verification must not change the output");
    }

    #[test]
    fn groups_are_split_as_in_the_paper() {
        let s = suite();
        let fortran = s.iter().filter(|w| w.group == Group::FortranFp).count();
        let c = s.iter().filter(|w| w.group == Group::CInteger).count();
        assert_eq!(fortran, 7);
        assert_eq!(c, 8);
    }

    #[test]
    fn dataset_lookup() {
        let s = suite();
        let li = s.iter().find(|w| w.name == "li").unwrap();
        assert!(li.dataset("8queens").is_some());
        assert!(li.dataset("nope").is_none());
    }
}
