//! Seeded, deterministic dataset generation helpers.
//!
//! Every generator takes an explicit seed so the whole experiment matrix is
//! reproducible bit-for-bit. A self-contained generator (rather than an
//! external `rand` dependency) keeps the generated *datasets* stable
//! forever and lets the workspace build with no registry access.

/// A 64-bit splitmix-style generator: tiny, seedable, stable forever.
#[derive(Clone, Debug)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Bernoulli draw with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Picks one element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: Vec<u64> = {
            let mut g = Lcg::new(42);
            (0..10).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Lcg::new(42);
            (0..10).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut g = Lcg::new(43);
        assert_ne!(a[0], g.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = Lcg::new(7);
        for _ in 0..1000 {
            let v = g.range(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut g = Lcg::new(1);
        let hits = (0..10_000).filter(|_| g.chance(30)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn pick_stays_in_bounds() {
        let mut g = Lcg::new(9);
        let items = [1, 2, 3];
        for _ in 0..10 {
            assert!(items.contains(g.pick(&items)));
        }
    }
}
