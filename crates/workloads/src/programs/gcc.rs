//! `gcc`: a C front end processing source modules.
//!
//! SPEC's 001.gcc runs the GNU C compiler over 19 of its own source
//! modules; the paper reports on 6. This guest is a real (small) C front
//! end: a lexer with an interning identifier table, a recursive-descent
//! parser for a C subset (declarations, functions, statements, full
//! expression precedence), and a constant folder. Its datasets are six
//! generated C modules with deliberately different characters (loop-heavy,
//! expression-heavy, declaration-heavy, call-heavy, string-heavy, mixed),
//! standing in for the six compiler modules.

use std::fmt::Write as _;

use trace_vm::Input;

use crate::datagen::Lcg;
use crate::{Dataset, Group, Workload};

const GCC: &str = r#"
// ---- lexer ----------------------------------------------------------
global src: [int];
global pos: int;
global tok_kind: int;   // 0 eof, 1 ident, 2 number, 3 string, 4 keyword, 5 punct
global tok_val: int;    // number value / ident id / keyword id / punct char
global tok_val2: int;   // second punct char or 0

// identifier interning table
global id_text: [int];   // packed characters
global id_start: [int];
global id_len: [int];
global id_count: int;
global id_text_used: int;

// statistics
global count_idents: int;
global count_numbers: int;
global count_strings: int;
global count_keywords: int;
global count_puncts: int;
global count_decls: int;
global count_funcs: int;
global count_stmts: int;
global count_folds: int;
global fold_sum: int;
global max_depth: int;

// keywords: 1 int, 2 char, 3 if, 4 else, 5 while, 6 for, 7 return
fn keyword_id(start: int, n: int) -> int {
    if (n == 3 && src[start] == 'i' && src[start+1] == 'n' && src[start+2] == 't') { return 1; }
    if (n == 4 && src[start] == 'c' && src[start+1] == 'h' && src[start+2] == 'a' && src[start+3] == 'r') { return 2; }
    if (n == 2 && src[start] == 'i' && src[start+1] == 'f') { return 3; }
    if (n == 4 && src[start] == 'e' && src[start+1] == 'l' && src[start+2] == 's' && src[start+3] == 'e') { return 4; }
    if (n == 5 && src[start] == 'w' && src[start+1] == 'h' && src[start+2] == 'i' && src[start+3] == 'l' && src[start+4] == 'e') { return 5; }
    if (n == 3 && src[start] == 'f' && src[start+1] == 'o' && src[start+2] == 'r') { return 6; }
    if (n == 6 && src[start] == 'r' && src[start+1] == 'e' && src[start+2] == 't' && src[start+3] == 'u' && src[start+4] == 'r' && src[start+5] == 'n') { return 7; }
    return 0;
}

fn intern(start: int, n: int) -> int {
    for (var i: int = 0; i < id_count; i = i + 1) {
        if (id_len[i] == n) {
            var same: int = 1;
            for (var j: int = 0; j < n; j = j + 1) {
                if (id_text[id_start[i] + j] != src[start + j]) { same = 0; break; }
            }
            if (same) { return i; }
        }
    }
    id_start[id_count] = id_text_used;
    id_len[id_count] = n;
    for (var j2: int = 0; j2 < n; j2 = j2 + 1) {
        id_text[id_text_used] = src[start + j2];
        id_text_used = id_text_used + 1;
    }
    id_count = id_count + 1;
    return id_count - 1;
}

fn is_alpha(c: int) -> int {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

fn is_digit(c: int) -> int {
    return c >= '0' && c <= '9';
}

fn next_token() {
    tok_val2 = 0;
    while (pos < len(src)) {
        var c: int = src[pos];
        if (c == ' ' || c == '\n' || c == '\t' || c == '\r') { pos = pos + 1; continue; }
        if (c == '/' && pos + 1 < len(src) && src[pos + 1] == '/') {
            while (pos < len(src) && src[pos] != '\n') { pos = pos + 1; }
            continue;
        }
        if (c == '/' && pos + 1 < len(src) && src[pos + 1] == '*') {
            pos = pos + 2;
            while (pos + 1 < len(src) && !(src[pos] == '*' && src[pos + 1] == '/')) { pos = pos + 1; }
            pos = pos + 2;
            continue;
        }
        break;
    }
    if (pos >= len(src)) { tok_kind = 0; return; }
    var c2: int = src[pos];
    if (is_alpha(c2)) {
        var start: int = pos;
        while (pos < len(src) && (is_alpha(src[pos]) || is_digit(src[pos]))) { pos = pos + 1; }
        var kw: int = keyword_id(start, pos - start);
        if (kw != 0) {
            tok_kind = 4; tok_val = kw;
            count_keywords = count_keywords + 1;
        } else {
            tok_kind = 1; tok_val = intern(start, pos - start);
            count_idents = count_idents + 1;
        }
        return;
    }
    if (is_digit(c2)) {
        var v: int = 0;
        while (pos < len(src) && is_digit(src[pos])) {
            v = v * 10 + (src[pos] - '0');
            pos = pos + 1;
        }
        tok_kind = 2; tok_val = v;
        count_numbers = count_numbers + 1;
        return;
    }
    if (c2 == '"') {
        pos = pos + 1;
        var chars: int = 0;
        while (pos < len(src) && src[pos] != '"') { chars = chars + 1; pos = pos + 1; }
        pos = pos + 1;
        tok_kind = 3; tok_val = chars;
        count_strings = count_strings + 1;
        return;
    }
    // punctuation, with two-char operators
    tok_kind = 5; tok_val = c2;
    count_puncts = count_puncts + 1;
    pos = pos + 1;
    if (pos < len(src)) {
        var d: int = src[pos];
        if ((c2 == '=' && d == '=') || (c2 == '!' && d == '=') ||
            (c2 == '<' && d == '=') || (c2 == '>' && d == '=') ||
            (c2 == '&' && d == '&') || (c2 == '|' && d == '|') ||
            (c2 == '<' && d == '<') || (c2 == '>' && d == '>') ||
            (c2 == '+' && d == '+') || (c2 == '-' && d == '-')) {
            tok_val2 = d;
            pos = pos + 1;
        }
    }
}

fn at_punct(c: int) -> int {
    return tok_kind == 5 && tok_val == c && tok_val2 == 0;
}

fn at_punct2(c: int, d: int) -> int {
    return tok_kind == 5 && tok_val == c && tok_val2 == d;
}

fn at_keyword(k: int) -> int {
    return tok_kind == 4 && tok_val == k;
}

fn expect_punct(c: int) {
    if (at_punct(c)) { next_token(); } else { emit(0 - 999); next_token(); }
}

// ---- expression parser with constant folding -------------------------
// Each parse_* returns a "value descriptor": if the expression folded to a
// compile-time constant, its value; otherwise the sentinel -1000000000.
global NOTCONST: int;

fn fold2(op: int, a: int, b: int) -> int {
    if (a == NOTCONST || b == NOTCONST) { return NOTCONST; }
    count_folds = count_folds + 1;
    var r: int = 0;
    if (op == '+') { r = a + b; }
    else { if (op == '-') { r = a - b; }
    else { if (op == '*') { r = a * b; }
    else { if (op == '/') { if (b != 0) { r = a / b; } }
    else { if (op == '%') { if (b != 0) { r = a % b; } }
    else { if (op == '<') { r = a < b; }
    else { if (op == '>') { r = a > b; }
    else { r = 0; } } } } } } }
    fold_sum = (fold_sum + r) % 1000000007;
    return r;
}

// Mutual recursion needs no forward declarations: mflang collects every
// function signature before lowering bodies.
fn parse_primary() -> int {
    if (tok_kind == 2) {
        var v: int = tok_val;
        next_token();
        return v;
    }
    if (tok_kind == 3) {
        next_token();
        return NOTCONST;
    }
    if (tok_kind == 1) {
        next_token();
        // call or index
        if (at_punct('(')) {
            next_token();
            if (!at_punct(')')) {
                parse_assign();
                while (at_punct(',')) { next_token(); parse_assign(); }
            }
            expect_punct(')');
        } else {
            while (at_punct('[')) {
                next_token();
                parse_assign();
                expect_punct(']');
            }
        }
        return NOTCONST;
    }
    if (at_punct('(')) {
        next_token();
        var v2: int = parse_assign();
        expect_punct(')');
        return v2;
    }
    if (at_punct('-')) {
        next_token();
        var v3: int = parse_primary();
        if (v3 != NOTCONST) { return 0 - v3; }
        return NOTCONST;
    }
    if (at_punct('!') || at_punct('~')) {
        next_token();
        parse_primary();
        return NOTCONST;
    }
    // stuck: skip a token
    next_token();
    return NOTCONST;
}

fn parse_mul() -> int {
    var v: int = parse_primary();
    while (at_punct('*') || at_punct('/') || at_punct('%')) {
        var op: int = tok_val;
        next_token();
        var r: int = parse_primary();
        v = fold2(op, v, r);
    }
    return v;
}

fn parse_add() -> int {
    var v: int = parse_mul();
    while (at_punct('+') || at_punct('-')) {
        var op: int = tok_val;
        next_token();
        var r: int = parse_mul();
        v = fold2(op, v, r);
    }
    return v;
}

fn parse_shift() -> int {
    var v: int = parse_add();
    while (at_punct2('<', '<') || at_punct2('>', '>')) {
        next_token();
        parse_add();
        v = NOTCONST;
    }
    return v;
}

fn parse_rel() -> int {
    var v: int = parse_shift();
    while (at_punct('<') || at_punct('>') || at_punct2('<', '=') || at_punct2('>', '=')) {
        var op: int = tok_val;
        var two: int = tok_val2;
        next_token();
        var r: int = parse_shift();
        if (two == 0) { v = fold2(op, v, r); } else { v = NOTCONST; }
    }
    return v;
}

fn parse_eq() -> int {
    var v: int = parse_rel();
    while (at_punct2('=', '=') || at_punct2('!', '=')) {
        next_token();
        parse_rel();
        v = NOTCONST;
    }
    return v;
}

fn parse_bits() -> int {
    var v: int = parse_eq();
    while (at_punct('&') || at_punct('|') || at_punct('^')) {
        next_token();
        parse_eq();
        v = NOTCONST;
    }
    return v;
}

fn parse_logic() -> int {
    var v: int = parse_bits();
    while (at_punct2('&', '&') || at_punct2('|', '|')) {
        next_token();
        parse_bits();
        v = NOTCONST;
    }
    return v;
}

fn parse_assign() -> int {
    var v: int = parse_logic();
    if (at_punct('=')) {
        next_token();
        parse_assign();
        return NOTCONST;
    }
    return v;
}

// ---- statements and declarations -------------------------------------
fn parse_stmt(depth: int) {
    count_stmts = count_stmts + 1;
    if (depth > max_depth) { max_depth = depth; }
    if (at_punct('{')) {
        next_token();
        while (!at_punct('}') && tok_kind != 0) { parse_stmt(depth + 1); }
        expect_punct('}');
        return;
    }
    if (at_keyword(3)) { // if
        next_token();
        expect_punct('(');
        parse_assign();
        expect_punct(')');
        parse_stmt(depth + 1);
        if (at_keyword(4)) {
            next_token();
            parse_stmt(depth + 1);
        }
        return;
    }
    if (at_keyword(5)) { // while
        next_token();
        expect_punct('(');
        parse_assign();
        expect_punct(')');
        parse_stmt(depth + 1);
        return;
    }
    if (at_keyword(6)) { // for
        next_token();
        expect_punct('(');
        if (!at_punct(';')) { parse_assign(); }
        expect_punct(';');
        if (!at_punct(';')) { parse_assign(); }
        expect_punct(';');
        if (!at_punct(')')) { parse_assign(); }
        expect_punct(')');
        parse_stmt(depth + 1);
        return;
    }
    if (at_keyword(7)) { // return
        next_token();
        if (!at_punct(';')) { parse_assign(); }
        expect_punct(';');
        return;
    }
    if (at_keyword(1) || at_keyword(2)) { // local declaration
        parse_decl_tail(0);
        return;
    }
    // expression statement
    parse_assign();
    expect_punct(';');
}

// Parses after the type keyword: declarators, or a function definition.
// at_top != 0 permits function bodies.
fn parse_decl_tail(at_top: int) {
    next_token(); // consume type keyword
    while (1) {
        if (tok_kind != 1) { emit(0 - 998); next_token(); return; }
        next_token(); // name
        if (at_top && at_punct('(')) {
            // function definition
            count_funcs = count_funcs + 1;
            next_token();
            if (!at_punct(')')) {
                while (1) {
                    if (at_keyword(1) || at_keyword(2)) { next_token(); }
                    if (tok_kind == 1) { next_token(); }
                    if (at_punct(',')) { next_token(); } else { break; }
                }
            }
            expect_punct(')');
            parse_stmt(1); // the body block
            return;
        }
        count_decls = count_decls + 1;
        if (at_punct('[')) {
            next_token();
            parse_assign();
            expect_punct(']');
        }
        if (at_punct('=')) {
            next_token();
            parse_assign();
        }
        if (at_punct(',')) { next_token(); } else { break; }
    }
    expect_punct(';');
}

fn main(text: [int], unused: int) {
    src = text;
    pos = 0;
    NOTCONST = 0 - 1000000000;
    id_text = new_int(len(text) + 64);
    id_start = new_int(4096);
    id_len = new_int(4096);
    id_count = 0;
    id_text_used = 0;
    count_idents = 0; count_numbers = 0; count_strings = 0;
    count_keywords = 0; count_puncts = 0;
    count_decls = 0; count_funcs = 0; count_stmts = 0;
    count_folds = 0; fold_sum = 0; max_depth = 0;

    next_token();
    while (tok_kind != 0) {
        if (at_keyword(1) || at_keyword(2)) {
            parse_decl_tail(1);
        } else {
            // skip stray token (should not happen on valid modules)
            emit(0 - 997);
            next_token();
        }
    }

    emit(count_idents);
    emit(count_numbers);
    emit(count_strings);
    emit(count_keywords);
    emit(count_puncts);
    emit(count_decls);
    emit(count_funcs);
    emit(count_stmts);
    emit(count_folds);
    emit(fold_sum);
    emit(max_depth);
    emit(id_count);
}
"#;

/// Statement-mix profile for module generation.
#[derive(Clone, Copy)]
struct Profile {
    loops: u64,
    exprs: u64,
    decls: u64,
    calls: u64,
    strings: u64,
}

fn gen_module(seed: u64, functions: usize, profile: Profile) -> String {
    let mut g = Lcg::new(seed);
    let names = [
        "tree", "node", "rtx", "insn", "reg", "mode", "expr", "decl", "tmp", "cost", "flag",
        "base", "index", "width",
    ];
    let mut out = String::new();
    writeln!(out, "int global_state;\nint table[256];\nchar names[64];\n").expect("write");
    for f in 0..functions {
        writeln!(out, "int pass_{f}(int {}, int {}) {{", names[0], names[1]).expect("write");
        let total = profile.loops + profile.exprs + profile.decls + profile.calls + profile.strings;
        let stmts = g.range(6, 16);
        for _ in 0..stmts {
            let roll = g.below(total);
            if roll < profile.loops {
                match g.below(3) {
                    0 => writeln!(
                        out,
                        "    while ({} < {}) {{ {} = {} + {}; }}",
                        names[g.below(14.min(names.len() as u64)) as usize],
                        g.range(1, 64),
                        names[2],
                        names[2],
                        g.range(1, 4)
                    )
                    .expect("write"),
                    1 => writeln!(
                        out,
                        "    for ({n} = 0; {n} < {}; {n} = {n} + 1) {{ table[{n}] = {n} * {}; }}",
                        g.range(4, 32),
                        g.range(2, 9),
                        n = g.pick(&names)
                    )
                    .expect("write"),
                    _ => writeln!(
                        out,
                        "    for ({n} = {}; {n} > 0; {n} = {n} - 1) {{ if ({n} % 2 == 0) {{ {} = {} + 1; }} }}",
                        g.range(4, 40),
                        names[3],
                        names[3],
                        n = g.pick(&names)
                    )
                    .expect("write"),
                }
            } else if roll < profile.loops + profile.exprs {
                writeln!(
                    out,
                    "    {} = ({} + {}) * {} - {} / {};",
                    g.pick(&names),
                    g.range(1, 99),
                    g.range(1, 99),
                    g.range(2, 9),
                    g.pick(&names),
                    g.range(1, 9)
                )
                .expect("write");
            } else if roll < profile.loops + profile.exprs + profile.decls {
                writeln!(
                    out,
                    "    int {}_{}; int {}_{} = {} * {};",
                    g.pick(&names),
                    g.range(0, 99),
                    g.pick(&names),
                    g.range(0, 99),
                    g.range(1, 50),
                    g.range(1, 50)
                )
                .expect("write");
            } else if roll < profile.loops + profile.exprs + profile.decls + profile.calls {
                let callee = g.below(functions.max(1) as u64);
                writeln!(
                    out,
                    "    {} = pass_{callee}({}, {} + {});",
                    g.pick(&names),
                    g.pick(&names),
                    g.pick(&names),
                    g.range(0, 9)
                )
                .expect("write");
            } else {
                writeln!(
                    out,
                    "    if (global_state) {{ {} = \"diagnostic message {}\"; }}",
                    g.pick(&names),
                    g.range(0, 999)
                )
                .expect("write");
            }
        }
        writeln!(
            out,
            "    return {} + {};\n}}\n",
            g.pick(&names),
            g.range(0, 9)
        )
        .expect("write");
    }
    out
}

/// The `gcc` workload with six module datasets.
pub fn workload() -> Workload {
    let pack = |text: String| vec![Input::from_text(&text), Input::Int(0)];
    let mk = |name: &'static str, desc: &str, seed: u64, profile: Profile| {
        Dataset::new(name, desc, pack(gen_module(seed, 26, profile)))
    };
    Workload {
        name: "gcc",
        description: "GNU C compiler (front-end core over 6 modules)",
        group: Group::CInteger,
        source: GCC.to_string(),
        datasets: vec![
            mk(
                "loop_mod",
                "Loop-heavy module",
                401,
                Profile {
                    loops: 6,
                    exprs: 2,
                    decls: 1,
                    calls: 1,
                    strings: 0,
                },
            ),
            mk(
                "expr_mod",
                "Expression-heavy module",
                402,
                Profile {
                    loops: 1,
                    exprs: 7,
                    decls: 1,
                    calls: 1,
                    strings: 0,
                },
            ),
            mk(
                "decl_mod",
                "Declaration-heavy module",
                403,
                Profile {
                    loops: 1,
                    exprs: 1,
                    decls: 7,
                    calls: 0,
                    strings: 1,
                },
            ),
            mk(
                "call_mod",
                "Call-heavy module",
                404,
                Profile {
                    loops: 1,
                    exprs: 2,
                    decls: 1,
                    calls: 6,
                    strings: 0,
                },
            ),
            mk(
                "string_mod",
                "Diagnostic/string-heavy module",
                405,
                Profile {
                    loops: 1,
                    exprs: 2,
                    decls: 1,
                    calls: 1,
                    strings: 5,
                },
            ),
            mk(
                "mixed_mod",
                "Balanced module",
                406,
                Profile {
                    loops: 2,
                    exprs: 2,
                    decls: 2,
                    calls: 2,
                    strings: 2,
                },
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn front_end(text: &str) -> Vec<i64> {
        let p = mflang::compile(GCC).unwrap();
        Vm::new(&p)
            .run(&[Input::from_text(text), Input::Int(0)])
            .unwrap()
            .output_ints()
    }

    #[test]
    fn counts_on_handwritten_module() {
        let out = front_end("int x;\nint f(int a) { return a + 2 * 3; }\n");
        let (idents, numbers, _strings, keywords) = (out[0], out[1], out[2], out[3]);
        // idents: x, f, a, a = 4; numbers: 2, 3; keywords: int,int,int,return.
        assert_eq!(idents, 4);
        assert_eq!(numbers, 2);
        assert_eq!(keywords, 4);
        assert_eq!(out[5], 1, "one variable declaration");
        assert_eq!(out[6], 1, "one function");
        assert_eq!(out[8], 1, "2 * 3 folds");
        assert_eq!(out[9], 6, "fold sum");
        // No parse-error sentinels.
        assert!(!out.contains(&-999) && !out.contains(&-998) && !out.contains(&-997));
    }

    #[test]
    fn comments_and_strings_lexed() {
        let out =
            front_end("// line comment\n/* block\ncomment */\nint f() { return \"msg\" ; }\n");
        assert_eq!(out[2], 1, "one string");
        assert!(!out.contains(&-999));
    }

    #[test]
    fn nesting_depth_tracked() {
        let out = front_end("int f() { if (1) { while (2) { return 3; } } return 0; }");
        assert!(out[10] >= 3, "depth {}", out[10]);
    }

    #[test]
    fn interning_dedupes_identifiers() {
        let out = front_end("int f(int abc) { return abc + abc + abc; }");
        // idents: f, abc x4 -> 5 occurrences, 2 distinct.
        assert_eq!(out[0], 5);
        assert_eq!(out[11], 2);
    }

    #[test]
    fn all_modules_parse_cleanly() {
        let w = workload();
        let p = w.compile().unwrap();
        for d in &w.datasets {
            let out = Vm::new(&p).run(&d.inputs).unwrap().output_ints();
            assert!(
                !out.contains(&-999) && !out.contains(&-998) && !out.contains(&-997),
                "{}: parse errors",
                d.name
            );
            assert!(out[7] > 50, "{}: too few statements", d.name);
        }
    }

    #[test]
    fn modules_have_distinct_characters() {
        let w = workload();
        let p = w.compile().unwrap();
        let runs: Vec<_> = w
            .datasets
            .iter()
            .map(|d| Vm::new(&p).run(&d.inputs).unwrap())
            .collect();
        // The string-heavy module lexes more strings than the loop-heavy one.
        let strings: Vec<i64> = runs.iter().map(|r| r.output_ints()[2]).collect();
        assert!(strings[4] > strings[0]);
    }
}
