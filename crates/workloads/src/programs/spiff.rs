//! `spiff`: file comparison with floating-point tolerance.
//!
//! The original spiff (included with SPEC) diffs files while treating
//! numeric tokens as equal when they differ by less than a tolerance. This
//! guest implements the same pipeline: split both inputs into lines,
//! compare lines token-by-token (numbers parsed and compared with a scaled
//! tolerance, other tokens byte-compared), then run an LCS dynamic program
//! over the line-equality relation and emit the edit script summary.

use std::fmt::Write as _;

use trace_vm::Input;

use crate::datagen::Lcg;
use crate::{Dataset, Group, Workload};

const SPIFF: &str = r#"
// Inputs: two files as byte arrays, plus a tolerance in millionths.
global fa: [int];
global fb: [int];
global la_start: [int];  // line start offsets, file a
global la_len: [int];
global lb_start: [int];
global lb_len: [int];
global na: int;          // line counts
global nb: int;
global tol: int;         // tolerance in millionths

fn split_lines(f: [int], starts: [int], lens: [int]) -> int {
    var count: int = 0;
    var start: int = 0;
    for (var i: int = 0; i < len(f); i = i + 1) {
        if (f[i] == '\n') {
            starts[count] = start;
            lens[count] = i - start;
            count = count + 1;
            start = i + 1;
        }
    }
    if (start < len(f)) {
        starts[count] = start;
        lens[count] = len(f) - start;
        count = count + 1;
    }
    return count;
}

fn is_digit(c: int) -> int {
    return c >= '0' && c <= '9';
}

// Parses a number starting at f[i] (returns value in millionths); advances
// via the global scratch cell.
global scan_end: int;

fn parse_number(f: [int], i: int, limit: int) -> int {
    var sign: int = 1;
    if (f[i] == '-') { sign = 0 - 1; i = i + 1; }
    var whole: int = 0;
    while (i < limit && is_digit(f[i])) {
        whole = whole * 10 + (f[i] - '0');
        i = i + 1;
    }
    var frac: int = 0;
    var scale: int = 1000000;
    if (i < limit && f[i] == '.') {
        i = i + 1;
        while (i < limit && is_digit(f[i])) {
            if (scale > 1) {
                scale = scale / 10;
                frac = frac + (f[i] - '0') * scale;
            }
            i = i + 1;
        }
    }
    scan_end = i;
    return sign * (whole * 1000000 + frac);
}

// Token-wise line comparison with numeric tolerance. Returns 1 if equal.
fn lines_equal(ai: int, bi: int) -> int {
    var pa: int = la_start[ai];
    var ea: int = pa + la_len[ai];
    var pb: int = lb_start[bi];
    var eb: int = pb + lb_len[bi];
    while (1) {
        while (pa < ea && fa[pa] == ' ') { pa = pa + 1; }
        while (pb < eb && fb[pb] == ' ') { pb = pb + 1; }
        if (pa >= ea && pb >= eb) { return 1; }
        if (pa >= ea || pb >= eb) { return 0; }
        var ca: int = fa[pa];
        var cb: int = fb[pb];
        var anum: int = is_digit(ca) || (ca == '-' && pa + 1 < ea && is_digit(fa[pa + 1]));
        var bnum: int = is_digit(cb) || (cb == '-' && pb + 1 < eb && is_digit(fb[pb + 1]));
        if (anum && bnum) {
            var va: int = parse_number(fa, pa, ea);
            pa = scan_end;
            var vb: int = parse_number(fb, pb, eb);
            pb = scan_end;
            var d: int = va - vb;
            if (iabs(d) > tol) { return 0; }
        } else {
            if (ca != cb) { return 0; }
            pa = pa + 1;
            pb = pb + 1;
        }
    }
    return 0;
}

fn main(a: [int], b: [int], tolerance: int) {
    fa = a;
    fb = b;
    tol = tolerance;
    la_start = new_int(len(a) + 1);
    la_len = new_int(len(a) + 1);
    lb_start = new_int(len(b) + 1);
    lb_len = new_int(len(b) + 1);
    na = split_lines(a, la_start, la_len);
    nb = split_lines(b, lb_start, lb_len);

    // LCS dynamic program over lines.
    var width: int = nb + 1;
    var dp: [int] = new_int((na + 1) * width);
    for (var i: int = 1; i <= na; i = i + 1) {
        for (var j: int = 1; j <= nb; j = j + 1) {
            if (lines_equal(i - 1, j - 1)) {
                dp[i * width + j] = dp[(i - 1) * width + j - 1] + 1;
            } else {
                var up: int = dp[(i - 1) * width + j];
                var left: int = dp[i * width + j - 1];
                if (up >= left) {
                    dp[i * width + j] = up;
                } else {
                    dp[i * width + j] = left;
                }
            }
        }
    }

    // Backtrack to count edits and checksum their positions.
    var dels: int = 0;
    var adds: int = 0;
    var poshash: int = 0;
    var i2: int = na;
    var j2: int = nb;
    while (i2 > 0 || j2 > 0) {
        if (i2 > 0 && j2 > 0 && lines_equal(i2 - 1, j2 - 1)
            && dp[i2 * width + j2] == dp[(i2 - 1) * width + j2 - 1] + 1) {
            i2 = i2 - 1;
            j2 = j2 - 1;
        } else {
            if (j2 > 0 && (i2 == 0 || dp[i2 * width + j2 - 1] >= dp[(i2 - 1) * width + j2])) {
                adds = adds + 1;
                poshash = (poshash * 131 + j2) % 1000000007;
                j2 = j2 - 1;
            } else {
                dels = dels + 1;
                poshash = (poshash * 137 + i2) % 1000000007;
                i2 = i2 - 1;
            }
        }
    }
    emit(na);
    emit(nb);
    emit(dp[na * width + nb]);  // LCS length
    emit(dels);
    emit(adds);
    emit(poshash);
}
"#;

/// Generates a file of floating-point numbers, `lines` lines of `cols`
/// numbers each.
fn gen_float_file(seed: u64, lines: usize, cols: usize) -> String {
    let mut g = Lcg::new(seed);
    let mut out = String::new();
    for _ in 0..lines {
        for c in 0..cols {
            let whole = g.range(0, 999);
            let frac = g.range(0, 999_999);
            write!(out, "{}{whole}.{frac:06}", if c > 0 { " " } else { "" }).expect("write");
        }
        out.push('\n');
    }
    out
}

/// Perturbs a float file: most lines unchanged, some numbers nudged within
/// tolerance, a few genuinely changed.
fn perturb(text: &str, seed: u64, within_tol: usize, real_changes: usize) -> String {
    let mut g = Lcg::new(seed);
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let n = lines.len();
    for _ in 0..within_tol {
        let i = g.below(n as u64) as usize;
        // Nudge the last digit: a change of 1e-6, inside any sane tolerance.
        let line = lines[i].clone();
        let mut bytes = line.into_bytes();
        if let Some(last) = bytes.iter().rposition(|b| b.is_ascii_digit()) {
            bytes[last] = if bytes[last] == b'9' {
                b'8'
            } else {
                bytes[last] + 1
            };
        }
        lines[i] = String::from_utf8(bytes).expect("ascii");
    }
    for _ in 0..real_changes {
        let i = g.below(n as u64) as usize;
        lines[i] = format!("{}.000000 changed", g.range(1000, 9999));
    }
    lines.join("\n") + "\n"
}

/// Generates a directory-listing-like file of `n` lines.
fn gen_listing(seed: u64, n: usize) -> String {
    let mut g = Lcg::new(seed);
    let names = [
        "Makefile", "README", "main.c", "util.c", "parse.y", "lex.l", "defs.h", "io.c", "test.sh",
        "data.txt",
    ];
    let mut out = String::new();
    for i in 0..n {
        writeln!(
            out,
            "-rw-r--r-- 1 user staff {:>8} Jan {:>2} 12:{:02} {}{}",
            g.range(100, 99999),
            g.range(1, 28),
            g.range(0, 59),
            g.pick(&names),
            i
        )
        .expect("write");
    }
    out
}

/// The `spiff` workload.
pub fn workload() -> Workload {
    let pack = |a: String, b: String, tol: i64| -> Vec<Input> {
        vec![Input::from_text(&a), Input::from_text(&b), Input::Int(tol)]
    };
    let base1 = gen_float_file(201, 60, 4);
    let case1 = perturb(&base1, 211, 25, 3);
    let base2 = gen_float_file(202, 60, 4);
    let case2 = perturb(&base2, 212, 40, 8);
    let list_a = gen_listing(203, 28);
    let mut list_b_lines: Vec<String> = list_a.lines().map(String::from).collect();
    let n = list_b_lines.len();
    list_b_lines[n - 2] = "-rw-r--r-- 1 user staff    999 Feb  1 09:00 newfile".to_string();
    list_b_lines[n - 1] = "-rw-r--r-- 1 user staff   1234 Feb  2 09:30 another".to_string();
    let list_b = list_b_lines.join("\n") + "\n";

    Workload {
        name: "spiff",
        description: "File comparison tool included in SPEC",
        group: Group::CInteger,
        source: SPIFF.to_string(),
        datasets: vec![
            Dataset::new(
                "case1",
                "Float files, some within-tolerance differences",
                pack(base1, case1, 10),
            ),
            Dataset::new(
                "case2",
                "Float files, more differences",
                pack(base2, case2, 10),
            ),
            Dataset::new(
                "case3",
                "26/28 line directory listings, last lines differ",
                pack(list_a, list_b, 10),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn diff(a: &str, b: &str, tol: i64) -> Vec<i64> {
        let p = mflang::compile(SPIFF).unwrap();
        Vm::new(&p)
            .run(&[Input::from_text(a), Input::from_text(b), Input::Int(tol)])
            .unwrap()
            .output_ints()
    }

    #[test]
    fn identical_files_no_edits() {
        let out = diff("alpha\nbeta\ngamma\n", "alpha\nbeta\ngamma\n", 0);
        assert_eq!(out[..5], [3, 3, 3, 0, 0]);
    }

    #[test]
    fn one_line_changed() {
        let out = diff("a\nb\nc\n", "a\nX\nc\n", 0);
        assert_eq!(out[2], 2, "LCS length");
        assert_eq!(out[3], 1, "one deletion");
        assert_eq!(out[4], 1, "one addition");
    }

    #[test]
    fn insertion_detected() {
        let out = diff("a\nc\n", "a\nb\nc\n", 0);
        assert_eq!(out[..5], [2, 3, 2, 0, 1]);
    }

    #[test]
    fn tolerance_hides_small_numeric_drift() {
        // 1.000001 vs 1.000002 differs by 1 millionth.
        let a = "x 1.000001\n";
        let b = "x 1.000002\n";
        assert_eq!(diff(a, b, 10)[3], 0, "within tolerance");
        assert_eq!(diff(a, b, 0)[3], 1, "zero tolerance sees the change");
    }

    #[test]
    fn negative_numbers_compared_numerically() {
        assert_eq!(diff("-1.5\n", "-1.5\n", 0)[3], 0);
        assert_eq!(diff("-1.5\n", "1.5\n", 0)[3], 1);
    }

    #[test]
    fn case3_sees_exactly_the_tail_changes() {
        let w = workload();
        let p = w.compile().unwrap();
        let d = w.dataset("case3").unwrap();
        let out = Vm::new(&p).run(&d.inputs).unwrap().output_ints();
        assert_eq!(out[0], 28);
        assert_eq!(out[1], 28);
        assert_eq!(out[2], 26, "26 common lines");
        assert_eq!(out[3], 2);
        assert_eq!(out[4], 2);
    }

    #[test]
    fn case1_edit_counts_bounded() {
        let w = workload();
        let p = w.compile().unwrap();
        let d = w.dataset("case1").unwrap();
        let out = Vm::new(&p).run(&d.inputs).unwrap().output_ints();
        // 3 genuinely changed lines (possibly overlapping draws), the
        // within-tolerance nudges must not register.
        assert!(out[3] <= 3, "deletions {} exceed real changes", out[3]);
        assert!(out[3] >= 1);
    }
}
