//! `fpppp`: quantum chemistry two-electron integrals.
//!
//! The SPEC program's inner loop is "a giant expression with no flow of
//! control" — the paper's outlier at 150–170 instructions per break
//! unpredicted. We reproduce that shape: a quadruple loop over atom
//! quadruplets `(i ≤ j, k ≤ l)` whose body is one enormous generated basic
//! block of chained floating-point operations (no branches inside), so the
//! only control flow is the loop nest itself.

use std::fmt::Write as _;

use trace_vm::Input;

use crate::{Dataset, Group, Workload};

/// Number of chained operation groups in the giant basic block. Each group
/// is ~8 straight-line float operations.
const BLOCK_GROUPS: usize = 60;

/// Generates the guest source. The giant block is produced by code
/// generation rather than hand-writing 500 lines; the result is ordinary
/// `mflang` source.
fn generate_source() -> String {
    let mut body = String::new();
    // Seed temporaries from the quadruplet's geometry.
    body.push_str(
        "        var t0: float = gx * gy + 0.3;\n         var t1: float = gy * gz + 0.7;\n         var t2: float = gz * gx + 1.1;\n         var t3: float = gx + gy + gz + 0.013;\n",
    );
    let mut n = 4;
    for g in 0..BLOCK_GROUPS {
        let a = n - 4;
        let b = n - 3;
        let c = n - 2;
        let d = n - 1;
        let coef1 = 0.11 + (g % 7) as f64 * 0.017;
        let coef2 = 0.23 + (g % 5) as f64 * 0.029;
        let coef3 = 1.0 + (g % 3) as f64 * 0.5;
        // `{:?}` keeps the decimal point on round values (1.0, not 1), so
        // the literal stays a float in the guest language.
        writeln!(
            body,
            "        var t{n}: float = t{a} * {coef1:?} + t{b} * t{c} - t{d} * {coef2:?};"
        )
        .expect("write to String");
        writeln!(
            body,
            "        var t{}: float = t{b} + t{n} * t{a} - {coef3:?} * t{c};",
            n + 1
        )
        .expect("write to String");
        writeln!(
            body,
            "        var t{}: float = t{} / (1.0 + fabs(t{n})) + t{d};",
            n + 2,
            n + 1
        )
        .expect("write to String");
        writeln!(
            body,
            "        var t{}: float = t{} * 0.5 + t{} * 0.25 + t{a} * 0.125;",
            n + 3,
            n + 2,
            n
        )
        .expect("write to String");
        n += 4;
    }
    // Fold the last temporaries into the integral estimate.
    let last = n - 1;
    let prev = n - 2;
    writeln!(
        body,
        "        var contrib: float = (t{last} + t{prev}) / (1.0 + fabs(t{last} * t{prev}));"
    )
    .expect("write to String");

    format!(
        r#"
// fpppp: two-electron integral evaluation over atom quadruplets.
fn main(natoms: int, sweeps: int) {{
    var pos: [float] = new_float(natoms * 3);
    for (var i: int = 0; i < natoms; i = i + 1) {{
        pos[i * 3] = float(i) * 1.1;
        pos[i * 3 + 1] = sin(float(i));
        pos[i * 3 + 2] = cos(float(i) * 0.5);
    }}
    var total: float = 0.0;
    for (var sweep: int = 0; sweep < sweeps; sweep = sweep + 1) {{
      for (var i: int = 0; i < natoms; i = i + 1) {{
       for (var j: int = i; j < natoms; j = j + 1) {{
        for (var k: int = 0; k < natoms; k = k + 1) {{
         for (var l: int = k; l < natoms; l = l + 1) {{
            var gx: float = pos[i * 3] - pos[k * 3] + 0.01 * float(sweep + 1);
            var gy: float = pos[j * 3 + 1] - pos[l * 3 + 1] + 0.02;
            var gz: float = pos[i * 3 + 2] - pos[l * 3 + 2] + 0.03;
{body}
            total = total + contrib;
         }}
        }}
       }}
      }}
    }}
    emit(int(total * 1000.0));
}}
"#
    )
}

/// The `fpppp` workload with its two SPEC datasets (different atom counts).
pub fn workload() -> Workload {
    Workload {
        name: "fpppp",
        description: "Quantum chemistry",
        group: Group::FortranFp,
        source: generate_source(),
        datasets: vec![
            Dataset::new(
                "4atoms",
                "Smaller parameter setting from SPEC",
                vec![Input::Int(4), Input::Int(14)],
            ),
            Dataset::new(
                "8atoms",
                "Larger parameter setting from SPEC",
                vec![Input::Int(8), Input::Int(2)],
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    #[test]
    fn giant_block_dominates() {
        let w = workload();
        let p = w.compile().unwrap();
        let run = Vm::new(&p).run(&[Input::Int(4), Input::Int(2)]).unwrap();
        // The defining property: enormous instructions-per-branch ratio
        // compared with every other workload (fpppp's Figure 1 outlier).
        let ipb = run.stats.total_instrs as f64 / run.stats.branches.total_executed() as f64;
        assert!(ipb > 60.0, "fpppp instrs/branch only {ipb}");
    }

    #[test]
    fn output_finite_and_deterministic() {
        let w = workload();
        let p = w.compile().unwrap();
        let a = Vm::new(&p).run(&[Input::Int(4), Input::Int(1)]).unwrap();
        let b = Vm::new(&p).run(&[Input::Int(4), Input::Int(1)]).unwrap();
        assert_eq!(a.output_ints(), b.output_ints());
        // `contrib` is bounded by construction, so the total must be sane.
        assert!(a.output_ints()[0].abs() < 10_000_000);
    }

    #[test]
    fn datasets_present() {
        let w = workload();
        assert_eq!(w.datasets.len(), 2);
        assert_eq!(w.datasets[0].name, "4atoms");
        assert_eq!(w.datasets[1].name, "8atoms");
    }
}
