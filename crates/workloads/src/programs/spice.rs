//! `spice2g6`: electronic circuit simulation.
//!
//! A real (small) SPICE: modified nodal analysis with a dense Gaussian
//! solver, Newton iteration for the nonlinear devices, and companion-model
//! transient analysis for capacitors. Each device model is its own guest
//! function (resistor stamp, capacitor companion, diode, BJT-style
//! junction, FET-style quadratic device) — deliberately so, because the
//! paper attributes spice2g6's poor cross-dataset predictability to
//! "different datasets using entirely different modules of the simulator".
//! The datasets here do exactly that: linear RC circuits never enter the
//! diode/BJT/FET model code, the adder netlists live in it.
//!
//! Element encoding (5 ints each): `type, node+, node-, value-index,
//! aux-index`; types 1 R, 2 C, 3 DC current source, 4 sinusoidal current
//! source, 5 diode, 6 BJT junction, 7 FET device. Node 0 is ground.

use trace_vm::Input;

use crate::datagen::Lcg;
use crate::{Dataset, Group, Workload};

const SPICE: &str = r#"
global g_mat: [float];     // dense conductance matrix
global rhs: [float];       // right-hand side currents
global volts: [float];     // node voltages (current Newton estimate)
global volts_prev: [float];// previous timestep voltages
global nn: int;            // number of non-ground nodes

global elem: [int];
global vals: [float];
global n_elems: int;

global newton_iters: int;  // statistics
global model_evals: int;

// ---- matrix stamping --------------------------------------------------
fn stamp_g(a: int, b: int, g: float) {
    if (a > 0) { g_mat[(a - 1) * nn + (a - 1)] = g_mat[(a - 1) * nn + (a - 1)] + g; }
    if (b > 0) { g_mat[(b - 1) * nn + (b - 1)] = g_mat[(b - 1) * nn + (b - 1)] + g; }
    if (a > 0 && b > 0) {
        g_mat[(a - 1) * nn + (b - 1)] = g_mat[(a - 1) * nn + (b - 1)] - g;
        g_mat[(b - 1) * nn + (a - 1)] = g_mat[(b - 1) * nn + (a - 1)] - g;
    }
}

fn stamp_i(a: int, b: int, i: float) {
    if (a > 0) { rhs[a - 1] = rhs[a - 1] - i; }
    if (b > 0) { rhs[b - 1] = rhs[b - 1] + i; }
}

fn node_v(a: int) -> float {
    if (a == 0) { return 0.0; }
    return volts[a - 1];
}

// ---- device models ------------------------------------------------------
fn model_resistor(a: int, b: int, gval: float) {
    stamp_g(a, b, gval);
}

fn model_capacitor(a: int, b: int, c: float, dt: float) {
    // Backward-Euler companion: G = C/dt, Ieq = -G * v_prev.
    var g: float = c / dt;
    var vp: float = 0.0;
    if (a > 0) { vp = vp + volts_prev[a - 1]; }
    if (b > 0) { vp = vp - volts_prev[b - 1]; }
    stamp_g(a, b, g);
    stamp_i(a, b, 0.0 - g * vp);
}

// Junction current with clamped exponential; vt = thermal voltage.
fn junction(v: float, is: float, vt: float) -> float {
    var x: float = v / vt;
    if (x > 40.0) { x = 40.0; }
    if (x < -40.0) { x = -40.0; }
    return is * (exp(x) - 1.0);
}

fn model_diode(a: int, b: int, is: float) {
    model_evals = model_evals + 1;
    var vt: float = 0.02585;
    var v: float = node_v(a) - node_v(b);
    // Junction voltage limiting (the classic SPICE pnjlim idea).
    if (v > 0.9) { v = 0.9; }
    var i: float = junction(v, is, vt);
    var g: float = (junction(v + 0.0001, is, vt) - i) / 0.0001;
    if (g < 0.000000001) { g = 0.000000001; }
    stamp_g(a, b, g);
    stamp_i(a, b, i - g * v);
}

fn model_bjt(a: int, b: int, is: float, beta: float) {
    // Diode-connected transistor junction with beta-scaled conduction and
    // a soft Early-effect term.
    model_evals = model_evals + 1;
    var vt: float = 0.02585;
    var v: float = node_v(a) - node_v(b);
    if (v > 0.85) { v = 0.85; }
    var ibase: float = junction(v, is, vt);
    var i: float = ibase * (1.0 + beta * 0.01) + v * 0.00001;
    var g: float = (junction(v + 0.0001, is, vt) * (1.0 + beta * 0.01) - ibase * (1.0 + beta * 0.01)) / 0.0001 + 0.00001;
    if (g < 0.000000001) { g = 0.000000001; }
    stamp_g(a, b, g);
    stamp_i(a, b, i - g * v);
}

fn model_fet(a: int, b: int, k: float, vth: float) {
    // Square-law device: cutoff / conduction regimes branch on vgs.
    model_evals = model_evals + 1;
    var v: float = node_v(a) - node_v(b);
    var i: float = 0.0;
    var g: float = 0.000000001;
    if (v > vth) {
        var ov: float = v - vth;
        if (ov > 2.0) { ov = 2.0; }
        i = k * ov * ov;
        g = 2.0 * k * ov + 0.000000001;
    } else {
        i = v * 0.0000001;   // subthreshold leakage
        g = 0.0000001;
    }
    stamp_g(a, b, g);
    stamp_i(a, b, i - g * v);
}

// ---- assembly + solve ---------------------------------------------------
fn assemble(step: int, dt: float) {
    for (var i: int = 0; i < nn * nn; i = i + 1) { g_mat[i] = 0.0; }
    for (var i2: int = 0; i2 < nn; i2 = i2 + 1) {
        rhs[i2] = 0.0;
        // gmin to ground keeps the matrix nonsingular.
        g_mat[i2 * nn + i2] = 0.000000001;
    }
    for (var e: int = 0; e < n_elems; e = e + 1) {
        var base: int = e * 5;
        var t: int = elem[base];
        var a: int = elem[base + 1];
        var b: int = elem[base + 2];
        var v1: float = vals[elem[base + 3]];
        var v2: float = vals[elem[base + 4]];
        if (t == 1) { model_resistor(a, b, v1); }
        if (t == 2) { model_capacitor(a, b, v1, dt); }
        if (t == 3) { stamp_i(a, b, v1); }
        if (t == 4) { stamp_i(a, b, v1 * sin(v2 * float(step))); }
        if (t == 5) { model_diode(a, b, v1); }
        if (t == 6) { model_bjt(a, b, v1, v2); }
        if (t == 7) { model_fet(a, b, v1, v2); }
    }
}

// In-place Gaussian elimination (no pivoting needed: diagonally dominant
// by construction plus gmin).
fn solve() {
    for (var k: int = 0; k < nn; k = k + 1) {
        var pivot: float = g_mat[k * nn + k];
        for (var i: int = k + 1; i < nn; i = i + 1) {
            var f: float = g_mat[i * nn + k] / pivot;
            if (fabs(f) > 0.0) {
                for (var j: int = k; j < nn; j = j + 1) {
                    g_mat[i * nn + j] = g_mat[i * nn + j] - f * g_mat[k * nn + j];
                }
                rhs[i] = rhs[i] - f * rhs[k];
            }
        }
    }
    for (var i3: int = nn - 1; i3 >= 0; i3 = i3 - 1) {
        var s: float = rhs[i3];
        for (var j2: int = i3 + 1; j2 < nn; j2 = j2 + 1) {
            s = s - g_mat[i3 * nn + j2] * volts[j2];
        }
        volts[i3] = s / g_mat[i3 * nn + i3];
    }
}

fn main(desc: [int], values: [float], n_nodes: int, elems: int, steps: int, max_newton: int) {
    nn = n_nodes;
    elem = desc;
    vals = values;
    n_elems = elems;
    g_mat = new_float(nn * nn);
    rhs = new_float(nn);
    volts = new_float(nn);
    volts_prev = new_float(nn);
    newton_iters = 0;
    model_evals = 0;

    var dt: float = 0.0001;
    var trace_hash: float = 0.0;
    var before: [float] = new_float(nn);
    for (var step: int = 0; step < steps; step = step + 1) {
        // Newton loop: iterate until the update is small.
        var it: int = 0;
        var done: int = 0;
        while (it < max_newton && !done) {
            for (var c: int = 0; c < nn; c = c + 1) { before[c] = volts[c]; }
            assemble(step, dt);
            solve();
            // Convergence: max |delta V|.
            var maxd: float = 0.0;
            for (var i: int = 0; i < nn; i = i + 1) {
                var d: float = fabs(volts[i] - before[i]);
                if (d > maxd) { maxd = d; }
            }
            newton_iters = newton_iters + 1;
            it = it + 1;
            if (maxd < 0.000001) { done = 1; }
        }
        for (var i2: int = 0; i2 < nn; i2 = i2 + 1) {
            volts_prev[i2] = volts[i2];
        }
        trace_hash = trace_hash + volts[0] * float((step % 13) + 1);
    }

    for (var i4: int = 0; i4 < nn; i4 = i4 + 1) {
        emit(int(volts[i4] * 1000000.0));
    }
    emit(int(trace_hash * 1000.0));
    emit(newton_iters);
    emit(model_evals);
}
"#;

/// Builds a netlist incrementally.
struct Netlist {
    desc: Vec<i64>,
    vals: Vec<f64>,
    n_nodes: i64,
    n_elems: i64,
}

impl Netlist {
    fn new(n_nodes: i64) -> Self {
        Netlist {
            desc: Vec::new(),
            vals: Vec::new(),
            n_nodes,
            n_elems: 0,
        }
    }

    fn val(&mut self, v: f64) -> i64 {
        self.vals.push(v);
        self.vals.len() as i64 - 1
    }

    fn element(&mut self, ty: i64, a: i64, b: i64, v1: f64, v2: f64) {
        let i1 = self.val(v1);
        let i2 = self.val(v2);
        self.desc.extend_from_slice(&[ty, a, b, i1, i2]);
        self.n_elems += 1;
    }

    fn resistor(&mut self, a: i64, b: i64, g: f64) {
        self.element(1, a, b, g, 0.0);
    }

    fn capacitor(&mut self, a: i64, b: i64, c: f64) {
        self.element(2, a, b, c, 0.0);
    }

    fn isource(&mut self, a: i64, b: i64, i: f64) {
        self.element(3, a, b, i, 0.0);
    }

    fn sin_source(&mut self, a: i64, b: i64, amp: f64, w: f64) {
        self.element(4, a, b, amp, w);
    }

    fn diode(&mut self, a: i64, b: i64, is: f64) {
        self.element(5, a, b, is, 0.0);
    }

    fn bjt(&mut self, a: i64, b: i64, is: f64, beta: f64) {
        self.element(6, a, b, is, beta);
    }

    fn fet(&mut self, a: i64, b: i64, k: f64, vth: f64) {
        self.element(7, a, b, k, vth);
    }

    fn inputs(self, steps: i64, max_newton: i64) -> Vec<Input> {
        vec![
            Input::Ints(self.desc),
            Input::Floats(self.vals),
            Input::Int(self.n_nodes),
            Input::Int(self.n_elems),
            Input::Int(steps),
            Input::Int(max_newton),
        ]
    }
}

/// An RC ladder driven by a current source: purely linear.
fn rc_ladder(stages: i64, drive: f64) -> Netlist {
    let mut n = Netlist::new(stages);
    n.isource(0, 1, drive);
    for s in 1..=stages {
        n.resistor(s, s - 1, 0.01);
        n.capacitor(s, 0, 1e-6);
    }
    n
}

/// A diode ring with sinusoidal drive.
fn diode_mixer(seed: u64, nodes: i64) -> Netlist {
    let mut g = Lcg::new(seed);
    let mut n = Netlist::new(nodes);
    n.sin_source(0, 1, 0.02, 0.11);
    for s in 1..nodes {
        n.resistor(s, s + 1, 0.005 + g.range(1, 9) as f64 * 0.001);
        n.diode(s, 0, 1e-12);
        if g.chance(50) {
            n.capacitor(s, 0, 2e-6);
        }
    }
    n.resistor(nodes, 0, 0.02);
    n
}

/// A "4-bit all-NAND adder" built from junction devices: each gate is a
/// resistor pull plus two transistor junctions.
fn nand_adder(seed: u64, gates: usize, fet: bool) -> Netlist {
    let mut g = Lcg::new(seed);
    // Each gate occupies one node; supply injected at every node.
    let nodes = gates as i64 + 2;
    let mut n = Netlist::new(nodes);
    n.isource(0, 1, 0.03);
    for gate in 0..gates {
        let out = gate as i64 + 1;
        let other = 1 + g.below(nodes as u64 - 1) as i64;
        n.resistor(out, 0, 0.002);
        if fet {
            n.fet(out, 0, 0.002, 0.4 + g.range(0, 3) as f64 * 0.05);
            n.fet(out, other, 0.001, 0.5);
        } else {
            n.bjt(out, 0, 1e-13, 50.0 + g.range(0, 80) as f64);
            n.bjt(out, other, 1e-13, 40.0);
        }
        if g.chance(30) {
            n.capacitor(out, 0, 1e-6);
        }
    }
    n
}

/// Grey-code counter stand-in: a long RC chain clocked by a sinusoid.
fn greycode(stages: i64) -> Netlist {
    let mut n = Netlist::new(stages);
    n.sin_source(0, 1, 0.015, 0.3);
    for s in 1..stages {
        n.resistor(s, s + 1, 0.008);
        n.capacitor(s, 0, 1.5e-6);
    }
    n.resistor(stages, 0, 0.01);
    n
}

/// The `spice2g6` workload with its nine datasets.
pub fn workload() -> Workload {
    Workload {
        name: "spice2g6",
        description: "Electronic design simulator",
        group: Group::FortranFp,
        source: SPICE.to_string(),
        datasets: vec![
            Dataset::new(
                "circuit1",
                "Spice 2G User's Guide appendix example (RC, linear)",
                rc_ladder(10, 0.01).inputs(120, 6),
            ),
            Dataset::new(
                "circuit2",
                "Appendix example (very short run)",
                diode_mixer(601, 6).inputs(4, 6),
            ),
            Dataset::new(
                "circuit3",
                "Appendix example (diode mixer)",
                diode_mixer(602, 10).inputs(90, 8),
            ),
            Dataset::new("circuit4", "Appendix example (mixed RC + junctions)", {
                let mut n = diode_mixer(603, 8);
                n.bjt(3, 0, 1e-13, 60.0);
                n.bjt(5, 2, 1e-13, 75.0);
                n.inputs(110, 8)
            }),
            Dataset::new(
                "circuit5",
                "Appendix example (larger linear + diode mix)",
                {
                    let mut n = rc_ladder(14, 0.012);
                    n.diode(7, 0, 1e-12);
                    n.diode(11, 0, 1e-12);
                    n.inputs(140, 6)
                },
            ),
            Dataset::new(
                "add_bjt",
                "4-bit all-NAND adder, TTL gates",
                nand_adder(604, 18, false).inputs(60, 8),
            ),
            Dataset::new(
                "add_fet",
                "4-bit all-NAND adder, MOSFET gates",
                nand_adder(605, 18, true).inputs(60, 8),
            ),
            Dataset::new(
                "greysmall",
                "Greycode counter, smaller SPEC input",
                greycode(8).inputs(100, 4),
            ),
            Dataset::new(
                "greybig",
                "Greycode counter, larger SPEC input",
                greycode(8).inputs(1500, 4),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn run(inputs: &[Input]) -> Vec<i64> {
        let p = mflang::compile(SPICE).unwrap();
        Vm::new(&p).run(inputs).unwrap().output_ints()
    }

    #[test]
    fn resistive_divider_solves_ohms_law() {
        // I = 10mA into node 1; node1 -R(g=0.01)- ground in parallel with
        // -R(g=0.01)-: V = I / (g1+g2) = 0.01 / 0.02 = 0.5 V.
        let mut n = Netlist::new(1);
        n.isource(0, 1, 0.01);
        n.resistor(1, 0, 0.01);
        n.resistor(1, 0, 0.01);
        let out = run(&n.inputs(1, 3));
        let v = out[0] as f64 / 1e6;
        assert!((v - 0.5).abs() < 1e-4, "divider voltage {v}");
    }

    #[test]
    fn rc_charges_toward_steady_state() {
        // One RC stage: steady state v = I/g = 0.01/0.01 = 1 V.
        let mut n = Netlist::new(1);
        n.isource(0, 1, 0.01);
        n.resistor(1, 0, 0.01);
        n.capacitor(1, 0, 1e-6);
        let short = run(&n.inputs(3, 3))[0];
        let mut n2 = Netlist::new(1);
        n2.isource(0, 1, 0.01);
        n2.resistor(1, 0, 0.01);
        n2.capacitor(1, 0, 1e-6);
        let long = run(&n2.inputs(400, 3))[0];
        assert!(long > short, "capacitor must charge over time");
        let v = long as f64 / 1e6;
        assert!((v - 1.0).abs() < 0.05, "steady state {v}");
    }

    #[test]
    fn diode_clamps_voltage() {
        // Current forced through a diode: voltage pins near 0.6-0.8 V
        // regardless of drive.
        let mut n = Netlist::new(1);
        n.isource(0, 1, 0.01);
        n.diode(1, 0, 1e-12);
        let v1 = run(&n.inputs(1, 30))[0] as f64 / 1e6;
        let mut n2 = Netlist::new(1);
        n2.isource(0, 1, 0.05);
        n2.diode(1, 0, 1e-12);
        let v2 = run(&n2.inputs(1, 30))[0] as f64 / 1e6;
        assert!((0.4..1.0).contains(&v1), "diode drop {v1}");
        assert!(v2 > v1 && v2 - v1 < 0.2, "log-like I-V: {v1} -> {v2}");
    }

    #[test]
    fn fet_regimes_differ() {
        // Below threshold almost no conduction; above, strong conduction.
        let mut weak = Netlist::new(1);
        weak.isource(0, 1, 0.0000001);
        weak.fet(1, 0, 0.002, 0.5);
        weak.resistor(1, 0, 0.0001);
        let v_weak = run(&weak.inputs(1, 12))[0] as f64 / 1e6;
        let mut strong = Netlist::new(1);
        strong.isource(0, 1, 0.01);
        strong.fet(1, 0, 0.002, 0.5);
        strong.resistor(1, 0, 0.0001);
        let v_strong = run(&strong.inputs(1, 12))[0] as f64 / 1e6;
        assert!(v_weak < 0.5, "subthreshold node at {v_weak}");
        assert!(v_strong > 0.5, "conducting node at {v_strong}");
    }

    #[test]
    fn datasets_use_different_model_modules() {
        let w = workload();
        let p = w.compile().unwrap();
        // Linear circuits never evaluate a nonlinear model.
        let grey = Vm::new(&p)
            .run(&w.dataset("greysmall").unwrap().inputs)
            .unwrap()
            .output_ints();
        assert_eq!(*grey.last().unwrap(), 0, "greycode is linear");
        // The adder datasets do nothing but evaluate junction models.
        let bjt = Vm::new(&p)
            .run(&w.dataset("add_bjt").unwrap().inputs)
            .unwrap()
            .output_ints();
        assert!(*bjt.last().unwrap() > 100, "adder evaluates models");
    }

    #[test]
    fn greybig_runs_much_longer_than_greysmall() {
        let w = workload();
        let p = w.compile().unwrap();
        let small = Vm::new(&p)
            .run(&w.dataset("greysmall").unwrap().inputs)
            .unwrap();
        let big = Vm::new(&p)
            .run(&w.dataset("greybig").unwrap().inputs)
            .unwrap();
        assert!(big.stats.total_instrs > 8 * small.stats.total_instrs);
    }

    #[test]
    fn newton_converges_early() {
        // With an easy circuit, the convergence test should stop Newton
        // before max iterations (data-dependent loop, as in real SPICE).
        let mut n = Netlist::new(2);
        n.isource(0, 1, 0.01);
        n.resistor(1, 0, 0.01);
        n.resistor(1, 2, 0.01);
        n.resistor(2, 0, 0.01);
        let out = run(&n.inputs(10, 50));
        let iters = out[out.len() - 2];
        assert!(iters < 10 * 50, "Newton never converged early: {iters}");
    }
}
