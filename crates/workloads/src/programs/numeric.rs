//! The dataset-less FORTRAN/floating-point programs: `tomcatv`,
//! `matrix300`, `nasa7`, and the Livermore FORTRAN Kernels.
//!
//! The paper lists all four as "program does not read a dataset"; each is
//! represented here by a single canonical `ref` dataset carrying only its
//! size parameters (scaled down from SPEC sizes so the full matrix runs in
//! seconds — a pure ratio measure like instructions-per-break is unaffected
//! by the scaling).

use trace_vm::Input;

use crate::{Dataset, Group, Workload};

const TOMCATV: &str = r#"
// tomcatv: mesh generation with Thompson's solver, reduced to its
// control-flow skeleton: build a distorted mesh, then relax it with an
// SOR-style stencil sweep until the residual is small.
fn main(n: int, iters: int) {
    var x: [float] = new_float(n * n);
    var y: [float] = new_float(n * n);
    var rx: [float] = new_float(n * n);
    var ry: [float] = new_float(n * n);

    // Mesh generation: algebraic grid with a sinusoidal distortion.
    for (var i: int = 0; i < n; i = i + 1) {
        for (var j: int = 0; j < n; j = j + 1) {
            var fi: float = float(i) / float(n - 1);
            var fj: float = float(j) / float(n - 1);
            x[i * n + j] = fi + 0.1 * sin(6.28318 * fj);
            y[i * n + j] = fj + 0.1 * sin(6.28318 * fi);
        }
    }

    var maxres: float = 0.0;
    for (var it: int = 0; it < iters; it = it + 1) {
        maxres = 0.0;
        for (var i: int = 1; i < n - 1; i = i + 1) {
            for (var j: int = 1; j < n - 1; j = j + 1) {
                var k: int = i * n + j;
                var xxm: float = x[k - n];
                var xxp: float = x[k + n];
                var xym: float = x[k - 1];
                var xyp: float = x[k + 1];
                var newx: float = 0.25 * (xxm + xxp + xym + xyp);
                var yxm: float = y[k - n];
                var yxp: float = y[k + n];
                var yym: float = y[k - 1];
                var yyp: float = y[k + 1];
                var newy: float = 0.25 * (yxm + yxp + yym + yyp);
                rx[k] = newx - x[k];
                ry[k] = newy - y[k];
                var r: float = fabs(rx[k]) + fabs(ry[k]);
                if (r > maxres) { maxres = r; }
            }
        }
        // Over-relaxed update sweep.
        for (var i: int = 1; i < n - 1; i = i + 1) {
            for (var j: int = 1; j < n - 1; j = j + 1) {
                var k: int = i * n + j;
                x[k] = x[k] + 1.2 * rx[k];
                y[k] = y[k] + 1.2 * ry[k];
            }
        }
    }
    // Scaled residual and a center sample for validation.
    emit(int(maxres * 1000000.0));
    emit(int(x[(n / 2) * n + n / 2] * 1000000.0));
    emit(int(y[(n / 2) * n + n / 2] * 1000000.0));
}
"#;

const MATRIX300: &str = r#"
// matrix300: dense linear solve (Gaussian elimination with partial
// pivoting) on a diagonally dominant system, then a residual check.
global state: int;

fn next_rand() -> float {
    state = (state * 1103515245 + 12345) % 2147483648;
    return float(state % 1000) / 1000.0 + 0.001;
}

fn main(n: int) {
    state = 12345;
    var a: [float] = new_float(n * n);
    var saved: [float] = new_float(n * n);
    var b: [float] = new_float(n);
    var xs: [float] = new_float(n);
    var piv: [int] = new_int(n);

    for (var i: int = 0; i < n; i = i + 1) {
        var rowsum: float = 0.0;
        for (var j: int = 0; j < n; j = j + 1) {
            var v: float = next_rand();
            a[i * n + j] = v;
            rowsum = rowsum + v;
        }
        a[i * n + i] = rowsum + 1.0;
        b[i] = float(i + 1);
        for (var j2: int = 0; j2 < n; j2 = j2 + 1) {
            saved[i * n + j2] = a[i * n + j2];
        }
    }

    // Forward elimination with partial pivoting.
    for (var k: int = 0; k < n; k = k + 1) {
        var best: int = k;
        var bestv: float = fabs(a[k * n + k]);
        for (var i: int = k + 1; i < n; i = i + 1) {
            var cand: float = fabs(a[i * n + k]);
            if (cand > bestv) { bestv = cand; best = i; }
        }
        if (best != k) {
            for (var j: int = 0; j < n; j = j + 1) {
                var tmp: float = a[k * n + j];
                a[k * n + j] = a[best * n + j];
                a[best * n + j] = tmp;
            }
            var tb: float = b[k];
            b[k] = b[best];
            b[best] = tb;
        }
        piv[k] = best;
        for (var i: int = k + 1; i < n; i = i + 1) {
            var f: float = a[i * n + k] / a[k * n + k];
            a[i * n + k] = 0.0;
            for (var j: int = k + 1; j < n; j = j + 1) {
                a[i * n + j] = a[i * n + j] - f * a[k * n + j];
            }
            b[i] = b[i] - f * b[k];
        }
    }

    // Back substitution.
    for (var i: int = n - 1; i >= 0; i = i - 1) {
        var s: float = b[i];
        for (var j: int = i + 1; j < n; j = j + 1) {
            s = s - a[i * n + j] * xs[j];
        }
        xs[i] = s / a[i * n + i];
    }

    // Residual against the saved matrix (pivoting permuted b, so apply the
    // recorded swaps to a fresh right-hand side).
    var bb: [float] = new_float(n);
    for (var i: int = 0; i < n; i = i + 1) { bb[i] = float(i + 1); }
    var maxres: float = 0.0;
    for (var i: int = 0; i < n; i = i + 1) {
        var s: float = 0.0;
        for (var j: int = 0; j < n; j = j + 1) {
            s = s + saved[i * n + j] * xs[j];
        }
        var r: float = fabs(s - bb[i]);
        if (r > maxres) { maxres = r; }
    }
    emit(int(maxres * 1000000000.0));
    emit(int(xs[0] * 1000000.0));
    emit(int(xs[n - 1] * 1000000.0));
}
"#;

const NASA7: &str = r#"
// nasa7: seven synthetic numeric kernels, one guest function each,
// mirroring the structure of the SPEC program (MXM, CFFT-like butterflies,
// CHOLSKY, BTRIX, GMTRY, EMIT, VPENTA).
global checksum: float;

fn kernel_mxm(n: int) {
    var a: [float] = new_float(n * n);
    var b: [float] = new_float(n * n);
    var c: [float] = new_float(n * n);
    for (var i: int = 0; i < n * n; i = i + 1) {
        a[i] = float(i % 7) * 0.5;
        b[i] = float(i % 5) * 0.25;
    }
    for (var i: int = 0; i < n; i = i + 1) {
        for (var j: int = 0; j < n; j = j + 1) {
            var s: float = 0.0;
            for (var k: int = 0; k < n; k = k + 1) {
                s = s + a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = s;
        }
    }
    checksum = checksum + c[0] + c[n * n - 1];
}

fn kernel_fft(n: int) {
    // Butterfly index pattern over a power-of-two array.
    var re: [float] = new_float(n);
    var im: [float] = new_float(n);
    for (var i: int = 0; i < n; i = i + 1) {
        re[i] = float(i % 16) / 16.0;
        im[i] = 0.0;
    }
    var span: int = n / 2;
    while (span >= 1) {
        for (var start: int = 0; start < n; start = start + 2 * span) {
            for (var k: int = 0; k < span; k = k + 1) {
                var p: int = start + k;
                var q: int = p + span;
                var ang: float = 0.0 - 3.14159265 * float(k) / float(span);
                var wr: float = cos(ang);
                var wi: float = sin(ang);
                var tr: float = re[p] - re[q];
                var ti: float = im[p] - im[q];
                re[p] = re[p] + re[q];
                im[p] = im[p] + im[q];
                re[q] = tr * wr - ti * wi;
                im[q] = tr * wi + ti * wr;
            }
        }
        span = span / 2;
    }
    checksum = checksum + re[1] + im[n / 2];
}

fn kernel_cholsky(n: int) {
    var a: [float] = new_float(n * n);
    for (var i: int = 0; i < n; i = i + 1) {
        for (var j: int = 0; j <= i; j = j + 1) {
            a[i * n + j] = 1.0 / float(i + j + 1);
            if (i == j) { a[i * n + j] = a[i * n + j] + float(n); }
        }
    }
    for (var j: int = 0; j < n; j = j + 1) {
        var s: float = a[j * n + j];
        for (var k: int = 0; k < j; k = k + 1) {
            s = s - a[j * n + k] * a[j * n + k];
        }
        a[j * n + j] = sqrt(s);
        for (var i: int = j + 1; i < n; i = i + 1) {
            var t: float = a[i * n + j];
            for (var k2: int = 0; k2 < j; k2 = k2 + 1) {
                t = t - a[i * n + k2] * a[j * n + k2];
            }
            a[i * n + j] = t / a[j * n + j];
        }
    }
    checksum = checksum + a[n * n - 1];
}

fn kernel_btrix(n: int, batches: int) {
    // Batched tridiagonal solves (Thomas algorithm).
    var c: [float] = new_float(n);
    var d: [float] = new_float(n);
    for (var b: int = 0; b < batches; b = b + 1) {
        for (var i: int = 0; i < n; i = i + 1) {
            d[i] = float(i + b + 1);
        }
        c[0] = 0.0 - 0.25;
        d[0] = d[0] / 2.0;
        for (var i: int = 1; i < n; i = i + 1) {
            var m: float = 2.0 + 0.5 * c[i - 1];
            c[i] = (0.0 - 0.5) / m;
            d[i] = (d[i] + 0.5 * d[i - 1]) / m;
        }
        for (var i: int = n - 2; i >= 0; i = i - 1) {
            d[i] = d[i] - c[i] * d[i + 1];
        }
        checksum = checksum + d[0];
    }
}

fn kernel_gmtry(n: int) {
    // Geometry setup: distances and normalization, sqrt-heavy.
    var xs: [float] = new_float(n);
    var ys: [float] = new_float(n);
    for (var i: int = 0; i < n; i = i + 1) {
        xs[i] = cos(float(i) * 0.1);
        ys[i] = sin(float(i) * 0.1);
    }
    var total: float = 0.0;
    for (var i: int = 0; i < n; i = i + 1) {
        for (var j: int = 0; j < n; j = j + 1) {
            var dx: float = xs[i] - xs[j];
            var dy: float = ys[i] - ys[j];
            var d2: float = dx * dx + dy * dy + 0.0001;
            total = total + 1.0 / sqrt(d2);
        }
    }
    checksum = checksum + total * 0.0001;
}

fn kernel_emit(n: int) {
    // Vortex emission: append-and-accumulate with a periodic condition.
    var strength: [float] = new_float(n);
    var count: int = 0;
    var acc: float = 0.0;
    for (var step: int = 0; step < n; step = step + 1) {
        if (step % 4 == 0 && count < n) {
            strength[count] = 1.0 / float(step + 1);
            count = count + 1;
        }
        for (var v: int = 0; v < count; v = v + 1) {
            acc = acc + strength[v] * 0.001;
        }
    }
    checksum = checksum + acc;
}

fn kernel_vpenta(n: int, rows: int) {
    // Pentadiagonal forward sweeps over several rows.
    var d: [float] = new_float(n);
    for (var r: int = 0; r < rows; r = r + 1) {
        for (var i: int = 0; i < n; i = i + 1) { d[i] = float((i + r) % 9); }
        for (var i: int = 2; i < n; i = i + 1) {
            d[i] = d[i] - 0.3 * d[i - 1] - 0.1 * d[i - 2];
        }
        checksum = checksum + d[n - 1];
    }
}

fn main(scale: int) {
    checksum = 0.0;
    kernel_mxm(8 * scale);
    kernel_fft(64 * scale);
    kernel_cholsky(8 * scale);
    kernel_btrix(24 * scale, 8 * scale);
    kernel_gmtry(16 * scale);
    kernel_emit(24 * scale);
    kernel_vpenta(32 * scale, 8 * scale);
    emit(int(checksum * 1000.0));
}
"#;

const LFK: &str = r#"
// Livermore FORTRAN Kernels: a representative subset (kernels 1, 2, 3, 5,
// 6, 9, 10, 11, 12) inside one repetition driver, as in subroutine KERNEL.
global total: float;

fn main(n: int, reps: int) {
    total = 0.0;
    var x: [float] = new_float(n + 16);
    var y: [float] = new_float(n + 16);
    var z: [float] = new_float(n + 16);
    var u: [float] = new_float(n + 16);
    for (var i: int = 0; i < n + 16; i = i + 1) {
        x[i] = 0.001 * float(i);
        y[i] = 0.002 * float(i % 17);
        z[i] = 0.003 * float(i % 13);
        u[i] = 0.004 * float(i % 11);
    }

    for (var r: int = 0; r < reps; r = r + 1) {
        // K1: hydro fragment
        for (var k: int = 0; k < n; k = k + 1) {
            x[k] = 0.9 * (z[k + 10] + 0.01 * (z[k + 11] + z[k]));
        }
        // K2: incomplete Cholesky conjugate gradient excerpt
        var ipntp: int = 0;
        var ii: int = n;
        while (ii > 1) {
            var ipnt: int = ipntp;
            ipntp = ipntp + ii;
            ii = ii / 2;
            var i2: int = ipnt + 1;
            var kx: int = ipntp;
            while (i2 < ipntp - 1) {
                if (kx < n) {
                    x[kx] = z[i2 % n] - 0.5 * x[i2 % n] - 0.5 * x[(i2 + 1) % n];
                }
                kx = kx + 1;
                i2 = i2 + 2;
            }
        }
        // K3: inner product
        var q: float = 0.0;
        for (var k3: int = 0; k3 < n; k3 = k3 + 1) { q = q + z[k3] * x[k3]; }
        total = total + q * 0.001;
        // K5: tridiagonal elimination, below diagonal
        for (var k5: int = 1; k5 < n; k5 = k5 + 1) {
            x[k5] = z[k5] * (y[k5] - x[k5 - 1]);
        }
        // K6: general linear recurrence (short inner loop)
        for (var i6: int = 1; i6 < n; i6 = i6 + 1) {
            var w: float = 0.01;
            var lim: int = i6;
            if (lim > 6) { lim = 6; }
            for (var k6: int = 0; k6 < lim; k6 = k6 + 1) {
                w = w + y[k6] * x[i6 - k6 - 1];
            }
            x[i6] = x[i6] + w * 0.0001;
        }
        // K9: integrate predictors
        for (var i9: int = 0; i9 < n; i9 = i9 + 1) {
            u[i9] = z[i9] + 0.1 * (x[i9] + y[i9]) + 0.05 * (x[i9] * 0.3 + y[i9] * 0.7);
        }
        // K10: difference predictors
        for (var i10: int = 1; i10 < n; i10 = i10 + 1) {
            y[i10] = y[i10] + (u[i10] - u[i10 - 1]);
        }
        // K11: first sum
        for (var i11: int = 1; i11 < n; i11 = i11 + 1) {
            x[i11] = x[i11 - 1] + y[i11];
        }
        // K12: first difference
        for (var i12: int = 0; i12 < n - 1; i12 = i12 + 1) {
            z[i12] = (y[i12 + 1] - y[i12]) * 0.5;
        }
    }
    var s: float = 0.0;
    for (var i: int = 0; i < n; i = i + 1) { s = s + x[i] + z[i]; }
    emit(int((total + s * 0.001) * 1000.0));
}
"#;

/// The `tomcatv` workload.
pub fn tomcatv() -> Workload {
    Workload {
        name: "tomcatv",
        description: "Mesh generation and solver",
        group: Group::FortranFp,
        source: TOMCATV.to_string(),
        datasets: vec![Dataset::new(
            "ref",
            "Program does not read a dataset",
            vec![Input::Int(48), Input::Int(40)],
        )],
    }
}

/// The `matrix300` workload.
pub fn matrix300() -> Workload {
    Workload {
        name: "matrix300",
        description: "300x300 linear matrix solver (scaled to 60x60)",
        group: Group::FortranFp,
        source: MATRIX300.to_string(),
        datasets: vec![Dataset::new(
            "ref",
            "Program does not read a dataset",
            vec![Input::Int(60)],
        )],
    }
}

/// The `nasa7` workload.
pub fn nasa7() -> Workload {
    Workload {
        name: "nasa7",
        description: "7 synthetic kernels",
        group: Group::FortranFp,
        source: NASA7.to_string(),
        datasets: vec![Dataset::new(
            "ref",
            "Program does not read a dataset",
            vec![Input::Int(3)],
        )],
    }
}

/// The Livermore FORTRAN Kernels workload.
pub fn lfk() -> Workload {
    Workload {
        name: "lfk",
        description: "Livermore FORTRAN Kernels (subset, subr KERNEL only)",
        group: Group::FortranFp,
        source: LFK.to_string(),
        datasets: vec![Dataset::new(
            "ref",
            "Program does not read a dataset",
            vec![Input::Int(120), Input::Int(40)],
        )],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn run(w: &Workload, inputs: &[Input]) -> Vec<i64> {
        let p = w.compile().unwrap();
        Vm::new(&p).run(inputs).unwrap().output_ints()
    }

    #[test]
    fn tomcatv_converges() {
        let out = run(&tomcatv(), &[Input::Int(12), Input::Int(30)]);
        // Residual (scaled by 1e6) shrinks to near zero after relaxation.
        assert!(out[0] < 20_000, "residual too large: {}", out[0]);
        // Center of the unit-square mesh is near (0.5, 0.5) ± distortion.
        assert!((350_000..=650_000).contains(&out[1]), "x center {}", out[1]);
        assert!((350_000..=650_000).contains(&out[2]), "y center {}", out[2]);
    }

    #[test]
    fn matrix300_solves_accurately() {
        let out = run(&matrix300(), &[Input::Int(20)]);
        // Residual scaled by 1e9: the solve must be accurate.
        assert!(out[0].abs() < 100_000, "residual {} too large", out[0]);
    }

    #[test]
    fn nasa7_checksum_deterministic() {
        let a = run(&nasa7(), &[Input::Int(1)]);
        let b = run(&nasa7(), &[Input::Int(1)]);
        assert_eq!(a, b);
        assert_ne!(a[0], 0);
        let c = run(&nasa7(), &[Input::Int(2)]);
        assert_ne!(a[0], c[0], "scale must change the checksum");
    }

    #[test]
    fn lfk_deterministic_nonzero() {
        let a = run(&lfk(), &[Input::Int(40), Input::Int(3)]);
        assert_eq!(a.len(), 1);
        assert_ne!(a[0], 0);
    }

    #[test]
    fn numeric_codes_are_branch_sparse() {
        // The FORTRAN/FP side of Figure 1: numeric codes run many
        // instructions per conditional branch.
        let w = matrix300();
        let p = w.compile().unwrap();
        let run = Vm::new(&p).run(&[Input::Int(24)]).unwrap();
        let ipb = run.stats.total_instrs as f64 / run.stats.branches.total_executed() as f64;
        assert!(ipb > 8.0, "matrix300 instrs/branch = {ipb}");
    }
}
