//! `compress` / `uncompress`: LZW file compression, as in SPEC 3.0
//! compress.
//!
//! One guest program implements both directions behind a command-line-style
//! mode switch, exactly like the original — which is what let the paper
//! observe that compression runs are useless for predicting decompression
//! runs ("using the data from one to predict the other is a very bad
//! idea").
//!
//! The `uncompress` workload's datasets are the *actual compressed output*
//! of running the `compress` guest on the corresponding inputs, produced by
//! executing the guest once per dataset (cached process-wide).

use std::fmt::Write as _;
use std::sync::OnceLock;

use trace_vm::{Input, Vm};

use crate::datagen::Lcg;
use crate::{Dataset, Group, Workload};

const COMPRESS: &str = r#"
// LZW with 12-bit codes. Codes 0..255 are literals, 256 is CLEAR, first
// assignable code is 257. mode: 0 = compress, 1 = decompress.
global ht_key: [int];
global ht_code: [int];
global next_code: int;

fn ht_reset() {
    for (var i: int = 0; i < len(ht_key); i = i + 1) {
        ht_key[i] = 0 - 1;
    }
    next_code = 257;
}

// Open-addressed lookup; returns code or -1.
fn ht_find(key: int) -> int {
    var h: int = (key * 2654435761) % 8192;
    if (h < 0) { h = h + 8192; }
    while (ht_key[h] != 0 - 1) {
        if (ht_key[h] == key) { return ht_code[h]; }
        h = h + 1;
        if (h == 8192) { h = 0; }
    }
    return 0 - 1;
}

fn ht_insert(key: int, code: int) {
    var h: int = (key * 2654435761) % 8192;
    if (h < 0) { h = h + 8192; }
    while (ht_key[h] != 0 - 1) {
        h = h + 1;
        if (h == 8192) { h = 0; }
    }
    ht_key[h] = key;
    ht_code[h] = code;
}

fn do_compress(data: [int], n: int) {
    ht_reset();
    var w: int = data[0];
    for (var i: int = 1; i < n; i = i + 1) {
        var c: int = data[i];
        var key: int = w * 256 + c;
        var found: int = ht_find(key);
        if (found != 0 - 1) {
            w = found;
        } else {
            emit(w);
            if (next_code >= 4096) {
                emit(256);
                ht_reset();
            } else {
                ht_insert(key, next_code);
                next_code = next_code + 1;
            }
            w = c;
        }
    }
    emit(w);
}

// Decoder string table: prefix chain + final byte per code.
global d_prefix: [int];
global d_last: [int];
global d_stack: [int];

fn emit_string(code: int) -> int {
    // Walk the prefix chain, then emit in order; returns the first byte.
    var depth: int = 0;
    var c: int = code;
    while (c >= 257) {
        d_stack[depth] = d_last[c];
        depth = depth + 1;
        c = d_prefix[c];
    }
    var first: int = c;
    emit(c);
    while (depth > 0) {
        depth = depth - 1;
        emit(d_stack[depth]);
    }
    return first;
}

fn string_first(code: int) -> int {
    var c: int = code;
    while (c >= 257) { c = d_prefix[c]; }
    return c;
}

fn do_decompress(codes: [int], n: int) {
    next_code = 257;
    var prev: int = codes[0];
    emit(prev);  // first code is always a literal
    for (var i: int = 1; i < n; i = i + 1) {
        var c: int = codes[i];
        if (c == 256) {
            next_code = 257;
            i = i + 1;
            prev = codes[i];
            emit(prev);  // code after CLEAR is a literal
        } else {
            if (c < next_code) {
                var first: int = emit_string(c);
                if (next_code < 4096) {
                    d_prefix[next_code] = prev;
                    d_last[next_code] = first;
                    next_code = next_code + 1;
                }
            } else {
                // The tricky KwKwK case: c == next_code.
                var first2: int = string_first(prev);
                if (next_code < 4096) {
                    d_prefix[next_code] = prev;
                    d_last[next_code] = first2;
                    next_code = next_code + 1;
                }
                emit_string(c);
            }
            prev = c;
        }
    }
}

fn main(data: [int], n: int, mode: int) {
    ht_key = new_int(8192);
    ht_code = new_int(8192);
    d_prefix = new_int(4096);
    d_last = new_int(4096);
    d_stack = new_int(4096);
    if (n == 0) { return; }
    if (mode == 0) {
        do_compress(data, n);
    } else {
        do_decompress(data, n);
    }
}
"#;

/// Generates C-like source text (the `cmprssc` dataset: "C source for SPEC
/// 3.0 compress").
pub fn gen_c_source(seed: u64, functions: usize) -> String {
    let mut g = Lcg::new(seed);
    let types = ["int", "char", "long", "unsigned", "short"];
    let names = [
        "buf", "ptr", "count", "state", "code", "hash", "entry", "next", "bits", "mask", "offset",
        "limit",
    ];
    let mut out = String::from(
        "#include <stdio.h>\n#include <stdlib.h>\n\n#define HSIZE 69001\n#define BITS 16\n\n",
    );
    for f in 0..functions {
        let t = g.pick(&types);
        writeln!(
            out,
            "static {t} fn_{f}({t} {}, {t} {}) {{",
            names[0], names[1]
        )
        .expect("write");
        let stmts = g.range(4, 12);
        for _ in 0..stmts {
            match g.below(5) {
                0 => writeln!(
                    out,
                    "    {} {} = {} + {};",
                    g.pick(&types),
                    g.pick(&names),
                    g.pick(&names),
                    g.range(0, 255)
                )
                .expect("write"),
                1 => writeln!(
                    out,
                    "    if ({} > {}) {{ {} = {}; }}",
                    g.pick(&names),
                    g.range(0, 100),
                    g.pick(&names),
                    g.pick(&names)
                )
                .expect("write"),
                2 => writeln!(
                    out,
                    "    for ({n} = 0; {n} < {}; {n}++) {{ {}[{n}] = {}; }}",
                    g.range(8, 64),
                    g.pick(&names),
                    g.range(0, 9),
                    n = g.pick(&names)
                )
                .expect("write"),
                3 => writeln!(
                    out,
                    "    while ({} & 0x{:x}) {{ {} >>= 1; }}",
                    g.pick(&names),
                    g.range(1, 255),
                    g.pick(&names)
                )
                .expect("write"),
                _ => writeln!(
                    out,
                    "    {} ^= {} << {};",
                    g.pick(&names),
                    g.pick(&names),
                    g.range(1, 7)
                )
                .expect("write"),
            }
        }
        writeln!(out, "    return {};\n}}\n", g.pick(&names)).expect("write");
    }
    out
}

/// Generates FORTRAN-like source text (the `spicef` dataset).
pub fn gen_fortran_source(seed: u64, routines: usize) -> String {
    let mut g = Lcg::new(seed);
    let vars = [
        "VOLT", "AMPS", "GMIN", "TEMP", "VCRIT", "XN", "DELTA", "TOL",
    ];
    let mut out = String::new();
    for r in 0..routines {
        writeln!(out, "      SUBROUTINE SUB{r:03}(N, A, B)").expect("write");
        out.push_str("      IMPLICIT DOUBLE PRECISION (A-H,O-Z)\n      DIMENSION A(N), B(N)\n");
        let stmts = g.range(6, 14);
        for s in 0..stmts {
            match g.below(4) {
                0 => writeln!(
                    out,
                    "      {} = {}*{}.{}D0 + {}",
                    g.pick(&vars),
                    g.pick(&vars),
                    g.range(1, 9),
                    g.range(0, 99),
                    g.pick(&vars)
                )
                .expect("write"),
                1 => writeln!(
                    out,
                    "      DO {} I = 1, N\n      A(I) = B(I)*{}.{}D0\n   {} CONTINUE",
                    s * 10 + 10,
                    g.range(0, 3),
                    g.range(0, 99),
                    s * 10 + 10
                )
                .expect("write"),
                2 => writeln!(
                    out,
                    "      IF ({} .GT. {}.D0) {} = {}.D0",
                    g.pick(&vars),
                    g.range(1, 50),
                    g.pick(&vars),
                    g.range(1, 50)
                )
                .expect("write"),
                _ => writeln!(
                    out,
                    "      CALL SUB{:03}(N, A, B)",
                    g.below(routines as u64)
                )
                .expect("write"),
            }
        }
        out.push_str("      RETURN\n      END\n\n");
    }
    out
}

/// Generates "compiled image"-like binary data: structured, repetitive
/// regions (instruction-stream-like) mixed with high-entropy spans.
pub fn gen_binary(seed: u64, len: usize) -> Vec<i64> {
    let mut g = Lcg::new(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if g.chance(60) {
            // Instruction-like region: 4-byte records with few distinct
            // opcodes.
            let opcode = g.range(0x10, 0x1f);
            let records = g.range(8, 40);
            for _ in 0..records {
                out.push(opcode);
                out.push(g.range(0, 15));
                out.push(g.range(0, 3));
                out.push(0);
            }
        } else if g.chance(50) {
            // Zero padding.
            let pad = g.range(16, 96) as usize;
            out.extend(std::iter::repeat_n(0, pad));
        } else {
            // Data region: higher entropy.
            for _ in 0..g.range(16, 64) {
                out.push(g.range(0, 255));
            }
        }
    }
    out.truncate(len);
    out
}

/// Generates the `long` dataset: large, highly repetitive English-like text
/// (the SPEC 3.0 reference input is a big concatenated text file).
#[allow(clippy::explicit_auto_deref)] // pick returns &&str; the deref drives inference
pub fn gen_long_text(seed: u64, words: usize) -> String {
    let mut g = Lcg::new(seed);
    let vocab = [
        "the",
        "of",
        "a",
        "compression",
        "ratio",
        "table",
        "entry",
        "input",
        "output",
        "stream",
        "code",
        "when",
        "reset",
        "is",
        "full",
        "and",
        "bits",
        "per",
        "character",
        "algorithm",
    ];
    let mut out = String::new();
    for w in 0..words {
        out.push_str(*g.pick(&vocab));
        out.push(if w % 12 == 11 { '\n' } else { ' ' });
    }
    out
}

fn compress_datasets() -> Vec<Dataset> {
    let pack = |text: String| -> Vec<Input> {
        let bytes: Vec<i64> = text.bytes().map(i64::from).collect();
        let n = bytes.len() as i64;
        vec![Input::Ints(bytes), Input::Int(n), Input::Int(0)]
    };
    let pack_bin = |bytes: Vec<i64>| -> Vec<Input> {
        let n = bytes.len() as i64;
        vec![Input::Ints(bytes), Input::Int(n), Input::Int(0)]
    };
    vec![
        Dataset::new(
            "cmprssc",
            "C source for SPEC 3.0 compress",
            pack(gen_c_source(101, 40)),
        ),
        Dataset::new(
            "cmprss",
            "Multiflow compiled image for SPEC 3.0 compress",
            pack_bin(gen_binary(102, 14_000)),
        ),
        Dataset::new(
            "long",
            "The SPEC 3.0 reference data",
            pack(gen_long_text(103, 6_000)),
        ),
        Dataset::new(
            "spicef",
            "FORTRAN source for spice",
            pack(gen_fortran_source(104, 30)),
        ),
        Dataset::new(
            "spice",
            "Compiled image for spice",
            pack_bin(gen_binary(105, 18_000)),
        ),
    ]
}

/// The `compress` workload.
pub fn compress() -> Workload {
    Workload {
        name: "compress",
        description: "UNIX file compression, SPEC 3.0",
        group: Group::CInteger,
        source: COMPRESS.to_string(),
        datasets: compress_datasets(),
    }
}

/// Runs the compress guest to produce a dataset's compressed codes.
fn compress_codes(inputs: &[Input]) -> Vec<i64> {
    static PROGRAM: OnceLock<trace_ir::Program> = OnceLock::new();
    let program =
        PROGRAM.get_or_init(|| mflang::compile(COMPRESS).expect("compress guest compiles"));
    Vm::new(program)
        .run(inputs)
        .expect("compress guest runs")
        .output_ints()
}

/// The `uncompress` workload: the same guest program with the mode switch
/// set for decompression, fed the compressed images of the same datasets.
pub fn uncompress() -> Workload {
    static DATASETS: OnceLock<Vec<Dataset>> = OnceLock::new();
    let datasets = DATASETS.get_or_init(|| {
        compress_datasets()
            .into_iter()
            .map(|d| {
                let codes = compress_codes(&d.inputs);
                let n = codes.len() as i64;
                Dataset::new(
                    d.name,
                    "Compressed image of the compress dataset",
                    vec![Input::Ints(codes), Input::Int(n), Input::Int(1)],
                )
            })
            .collect()
    });
    Workload {
        name: "uncompress",
        description: "compress with switch set for decompression",
        group: Group::CInteger,
        source: COMPRESS.to_string(),
        datasets: datasets.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bytes: Vec<i64>) {
        let program = mflang::compile(COMPRESS).unwrap();
        let n = bytes.len() as i64;
        let codes = Vm::new(&program)
            .run(&[Input::Ints(bytes.clone()), Input::Int(n), Input::Int(0)])
            .unwrap()
            .output_ints();
        assert!(
            codes.len() < bytes.len() || bytes.len() < 50,
            "no compression achieved: {} codes for {} bytes",
            codes.len(),
            bytes.len()
        );
        let back = Vm::new(&program)
            .run(&[
                Input::Ints(codes.clone()),
                Input::Int(codes.len() as i64),
                Input::Int(1),
            ])
            .unwrap()
            .output_ints();
        assert_eq!(back, bytes, "roundtrip failed");
    }

    #[test]
    fn roundtrip_text() {
        roundtrip(gen_long_text(7, 400).bytes().map(i64::from).collect());
    }

    #[test]
    fn roundtrip_c_source() {
        roundtrip(gen_c_source(8, 6).bytes().map(i64::from).collect());
    }

    #[test]
    fn roundtrip_binary_with_dictionary_resets() {
        // Big enough to force the 4096-entry dictionary to reset.
        let data = gen_binary(9, 30_000);
        roundtrip(data);
    }

    #[test]
    fn roundtrip_kwkwk_case() {
        // "abababab…" exercises the c == next_code decoder path.
        let data: Vec<i64> = (0..400).map(|i| if i % 2 == 0 { 97 } else { 98 }).collect();
        roundtrip(data);
    }

    #[test]
    fn roundtrip_single_byte_and_empty() {
        roundtrip(vec![65]);
        let program = mflang::compile(COMPRESS).unwrap();
        let out = Vm::new(&program)
            .run(&[Input::Ints(vec![]), Input::Int(0), Input::Int(0)])
            .unwrap()
            .output_ints();
        assert!(out.is_empty());
    }

    #[test]
    fn uncompress_datasets_are_real_compressed_images() {
        let u = uncompress();
        assert_eq!(u.datasets.len(), 5);
        for d in &u.datasets {
            assert!(d.inputs[0].len() > 10, "{} too small", d.name);
        }
        // Decompressing the `long` dataset reproduces the original text.
        let orig = gen_long_text(103, 6_000);
        let program = mflang::compile(COMPRESS).unwrap();
        let d = u.dataset("long").unwrap();
        let back = Vm::new(&program).run(&d.inputs).unwrap().output_ints();
        let expect: Vec<i64> = orig.bytes().map(i64::from).collect();
        assert_eq!(back, expect);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_c_source(1, 3), gen_c_source(1, 3));
        assert_eq!(gen_binary(2, 100), gen_binary(2, 100));
        assert_ne!(gen_binary(2, 100), gen_binary(3, 100));
    }
}
