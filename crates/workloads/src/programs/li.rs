//! `li`: the XLISP interpreter.
//!
//! A genuine (small) Lisp: reader, symbol interning, cons heap, environments
//! as association lists, special forms (`quote`, `if`, `while`, `progn`,
//! `let`, `setq`, `define`, `lambda`, `and`, `or`), recursive `eval`/`apply`,
//! and numeric/list builtins. Its datasets mirror the paper's: the
//! n-queens search (`8queens`, `9queens`), a numeric relaxation program
//! rewritten in Lisp (`kittyv`, standing in for "SPEC tomcatv rewritten in
//! XLISP"), and a long flat machine-generated program computing primes
//! (`sieve1`, "output of machine lang to lisp simulator").
//!
//! Value encoding (3-bit tags in the low bits): 0 = nil, tag 1 = fixnum,
//! tag 2 = symbol, tag 3 = cons, tag 4 = builtin, tag 5 = lambda.

use std::fmt::Write as _;

use trace_vm::Input;

use crate::{Dataset, Group, Workload};

const LI: &str = r#"
// ---- heap and values --------------------------------------------------
global car_arr: [int];
global cdr_arr: [int];
global free_cell: int;

global sym_chars: [int];
global sym_start: [int];
global sym_len: [int];
global sym_val: [int];     // global binding (0 = unbound; nil is encoded 0 too,
global sym_bound: [int];   // so a separate bound flag)
global sym_count: int;
global chars_used: int;

// interned special-form and constant symbol ids
global s_quote: int;
global s_if: int;
global s_define: int;
global s_setq: int;
global s_while: int;
global s_progn: int;
global s_let: int;
global s_lambda: int;
global s_and: int;
global s_or: int;
global s_t: int;

global NIL: int;

fn make_num(n: int) -> int { return n * 8 + 1; }
fn num_of(v: int) -> int { return v >> 3; }
fn make_sym(s: int) -> int { return s * 8 + 2; }
fn sym_of(v: int) -> int { return v >> 3; }
fn make_cons_v(c: int) -> int { return c * 8 + 3; }
fn cell_of(v: int) -> int { return v >> 3; }
fn tag_of(v: int) -> int { return v & 7; }

fn cons(a: int, d: int) -> int {
    car_arr[free_cell] = a;
    cdr_arr[free_cell] = d;
    free_cell = free_cell + 1;
    return make_cons_v(free_cell - 1);
}

fn car(v: int) -> int {
    if (tag_of(v) != 3) { return NIL; }
    return car_arr[cell_of(v)];
}

fn cdr(v: int) -> int {
    if (tag_of(v) != 3) { return NIL; }
    return cdr_arr[cell_of(v)];
}

// ---- reader ------------------------------------------------------------
global src: [int];
global pos: int;

fn intern_range(start: int, n: int) -> int {
    for (var i: int = 0; i < sym_count; i = i + 1) {
        if (sym_len[i] == n) {
            var same: int = 1;
            for (var j: int = 0; j < n; j = j + 1) {
                if (sym_chars[sym_start[i] + j] != src[start + j]) { same = 0; break; }
            }
            if (same) { return i; }
        }
    }
    sym_start[sym_count] = chars_used;
    sym_len[sym_count] = n;
    for (var j2: int = 0; j2 < n; j2 = j2 + 1) {
        sym_chars[chars_used] = src[start + j2];
        chars_used = chars_used + 1;
    }
    sym_val[sym_count] = 0;
    sym_bound[sym_count] = 0;
    sym_count = sym_count + 1;
    return sym_count - 1;
}

fn skip_space() {
    while (pos < len(src)) {
        var c: int = src[pos];
        if (c == ';') {
            while (pos < len(src) && src[pos] != '\n') { pos = pos + 1; }
        } else {
            if (c == ' ' || c == '\n' || c == '\t' || c == '\r') {
                pos = pos + 1;
            } else {
                return;
            }
        }
    }
}

fn is_delim(c: int) -> int {
    return c == '(' || c == ')' || c == ' ' || c == '\n' || c == '\t' || c == '\r' || c == ';';
}

// Reads one expression; returns its value. -1 (impossible value: tag 7)
// signals end of input.
fn read_expr() -> int {
    skip_space();
    if (pos >= len(src)) { return 0 - 1; }
    var c: int = src[pos];
    if (c == '(') {
        pos = pos + 1;
        return read_list();
    }
    if (c == ')') {
        pos = pos + 1;  // stray close: treat as nil
        return NIL;
    }
    if (c == 39) {  // quote character '
        pos = pos + 1;
        var q: int = read_expr();
        return cons(make_sym(s_quote), cons(q, NIL));
    }
    // number?
    var neg: int = 0;
    var start: int = pos;
    if (c == '-' && pos + 1 < len(src) && src[pos + 1] >= '0' && src[pos + 1] <= '9') {
        neg = 1;
        pos = pos + 1;
    }
    if (src[pos] >= '0' && src[pos] <= '9') {
        var n: int = 0;
        while (pos < len(src) && src[pos] >= '0' && src[pos] <= '9') {
            n = n * 10 + (src[pos] - '0');
            pos = pos + 1;
        }
        if (neg) { n = 0 - n; }
        return make_num(n);
    }
    // symbol
    while (pos < len(src) && !is_delim(src[pos])) { pos = pos + 1; }
    return make_sym(intern_range(start, pos - start));
}

fn read_list() -> int {
    skip_space();
    if (pos >= len(src)) { return NIL; }
    if (src[pos] == ')') {
        pos = pos + 1;
        return NIL;
    }
    var head: int = read_expr();
    var rest: int = read_list();
    return cons(head, rest);
}

// ---- evaluator ----------------------------------------------------------
// env: assoc list ((sym . val) ...), symbols as raw ids in the pair car.
fn env_lookup(env: int, s: int) -> int {
    var e: int = env;
    while (tag_of(e) == 3) {
        var pair: int = car(e);
        if (num_of(car(pair)) == s) { return pair; }
        e = cdr(e);
    }
    return 0 - 1;
}

fn truthy(v: int) -> int {
    return v != NIL;
}

fn eval(x: int, env: int) -> int {
    var t: int = tag_of(x);
    if (t == 1) { return x; }            // number
    if (t == 0) { return NIL; }          // nil
    if (t == 2) {                         // symbol
        var s: int = sym_of(x);
        if (s == s_t) { return x; }
        var pair: int = env_lookup(env, s);
        if (pair != 0 - 1) { return cdr(pair); }
        if (sym_bound[s]) { return sym_val[s]; }
        return NIL;
    }
    // pair: special forms, then application
    var op: int = car(x);
    if (tag_of(op) == 2) {
        var s2: int = sym_of(op);
        if (s2 == s_quote) { return car(cdr(x)); }
        if (s2 == s_if) {
            var c: int = eval(car(cdr(x)), env);
            if (truthy(c)) { return eval(car(cdr(cdr(x))), env); }
            return eval(car(cdr(cdr(cdr(x)))), env);
        }
        if (s2 == s_progn) { return eval_seq(cdr(x), env); }
        if (s2 == s_while) {
            var result: int = NIL;
            while (truthy(eval(car(cdr(x)), env))) {
                result = eval_seq(cdr(cdr(x)), env);
            }
            return result;
        }
        if (s2 == s_setq) {
            var sym: int = sym_of(car(cdr(x)));
            var val: int = eval(car(cdr(cdr(x))), env);
            var pair2: int = env_lookup(env, sym);
            if (pair2 != 0 - 1) {
                cdr_arr[cell_of(pair2)] = val;
            } else {
                sym_val[sym] = val;
                sym_bound[sym] = 1;
            }
            return val;
        }
        if (s2 == s_define) {
            // (define (name args...) body...) or (define name expr)
            var spec: int = car(cdr(x));
            if (tag_of(spec) == 3) {
                var name: int = sym_of(car(spec));
                var lam: int = cons(cdr(spec), cons(cdr(cdr(x)), NIL));
                sym_val[name] = cell_of(lam) * 8 + 5;
                sym_bound[name] = 1;
                return car(spec);
            }
            var name2: int = sym_of(spec);
            sym_val[name2] = eval(car(cdr(cdr(x))), env);
            sym_bound[name2] = 1;
            return spec;
        }
        if (s2 == s_lambda) {
            // closure: (params bodylist env)
            var lam2: int = cons(car(cdr(x)), cons(cdr(cdr(x)), env));
            return cell_of(lam2) * 8 + 5;
        }
        if (s2 == s_let) {
            // (let ((a e) (b e2)) body...)
            var bindings: int = car(cdr(x));
            var newenv: int = env;
            var b: int = bindings;
            while (tag_of(b) == 3) {
                var bd: int = car(b);
                var v: int = eval(car(cdr(bd)), env);
                newenv = cons(cons(make_num(sym_of(car(bd))), v), newenv);
                b = cdr(b);
            }
            return eval_seq(cdr(cdr(x)), newenv);
        }
        if (s2 == s_and) {
            var a: int = cdr(x);
            var r: int = make_sym(s_t);
            while (tag_of(a) == 3) {
                r = eval(car(a), env);
                if (!truthy(r)) { return NIL; }
                a = cdr(a);
            }
            return r;
        }
        if (s2 == s_or) {
            var a2: int = cdr(x);
            while (tag_of(a2) == 3) {
                var r2: int = eval(car(a2), env);
                if (truthy(r2)) { return r2; }
                a2 = cdr(a2);
            }
            return NIL;
        }
    }
    // application
    var f: int = eval(op, env);
    if (tag_of(f) == 4) {
        // Builtin fast path: arguments evaluated in place, no argument
        // list is consed (XLISP similarly avoided consing for SUBRs).
        var id: int = f >> 3;
        if (id == 16) { return evlis(cdr(x), env); }  // list
        var arglist: int = cdr(x);
        var a: int = NIL;
        var b: int = NIL;
        if (tag_of(arglist) == 3) {
            a = eval(car(arglist), env);
            if (tag_of(cdr(arglist)) == 3) {
                b = eval(car(cdr(arglist)), env);
            }
        }
        return apply_builtin(id, a, b);
    }
    var args: int = evlis(cdr(x), env);
    return apply(f, args);
}

fn eval_seq(forms: int, env: int) -> int {
    var result: int = NIL;
    var f: int = forms;
    while (tag_of(f) == 3) {
        result = eval(car(f), env);
        f = cdr(f);
    }
    return result;
}

fn evlis(forms: int, env: int) -> int {
    if (tag_of(forms) != 3) { return NIL; }
    var head: int = eval(car(forms), env);
    return cons(head, evlis(cdr(forms), env));
}

// builtin ids: 1 + 2 - 3 * 4 / 5 rem 6 < 7 > 8 = 9 cons 10 car 11 cdr
// 12 null 13 atom 14 not 15 emit 16 list
fn apply_builtin(id: int, a: int, b: int) -> int {
    if (id == 1) { return make_num(num_of(a) + num_of(b)); }
    if (id == 2) { return make_num(num_of(a) - num_of(b)); }
    if (id == 3) { return make_num(num_of(a) * num_of(b)); }
    if (id == 4) {
        if (num_of(b) == 0) { return make_num(0); }
        return make_num(num_of(a) / num_of(b));
    }
    if (id == 5) {
        if (num_of(b) == 0) { return make_num(0); }
        return make_num(num_of(a) % num_of(b));
    }
    if (id == 6) { if (num_of(a) < num_of(b)) { return make_sym(s_t); } return NIL; }
    if (id == 7) { if (num_of(a) > num_of(b)) { return make_sym(s_t); } return NIL; }
    if (id == 8) { if (a == b) { return make_sym(s_t); } return NIL; }
    if (id == 9) { return cons(a, b); }
    if (id == 10) { return car(a); }
    if (id == 11) { return cdr(a); }
    if (id == 12) { if (a == NIL) { return make_sym(s_t); } return NIL; }
    if (id == 13) { if (tag_of(a) != 3) { return make_sym(s_t); } return NIL; }
    if (id == 14) { if (truthy(a)) { return NIL; } return make_sym(s_t); }
    if (id == 15) { emit(num_of(a)); return a; }
    return NIL;
}

fn apply(f: int, args: int) -> int {
    var t: int = tag_of(f);
    if (t == 4) {
        return apply_builtin(f >> 3, car(args), car(cdr(args)));
    }
    if (t == 5) {
        var cell: int = f >> 3;
        var params: int = car_arr[cell];
        var rest: int = cdr_arr[cell];
        var body: int = car(rest);
        var env: int = cdr(rest);
        var p: int = params;
        var a2: int = args;
        while (tag_of(p) == 3) {
            env = cons(cons(make_num(sym_of(car(p))), car(a2)), env);
            p = cdr(p);
            a2 = cdr(a2);
        }
        return eval_seq(body, env);
    }
    return NIL;
}

fn main(text: [int], heap_cells: int) {
    car_arr = new_int(heap_cells);
    cdr_arr = new_int(heap_cells);
    free_cell = 1;  // cell 0 reserved
    sym_chars = new_int(8192);
    sym_start = new_int(2048);
    sym_len = new_int(2048);
    sym_val = new_int(2048);
    sym_bound = new_int(2048);
    sym_count = 0;
    chars_used = 0;
    NIL = 0;

    // Stage builtin names through the source buffer trick: prepend them in
    // the driver-generated text instead. Here we intern from literals.
    src = "+ - * / rem < > = cons car cdr null atom not emit list quote if define setq while progn let lambda and or t";
    pos = 0;
    var names: [int] = new_int(32);
    var count: int = 0;
    while (pos < len(src)) {
        skip_space();
        if (pos >= len(src)) { break; }
        var start: int = pos;
        while (pos < len(src) && !is_delim(src[pos])) { pos = pos + 1; }
        names[count] = intern_range(start, pos - start);
        count = count + 1;
    }
    var bi: int = 1;
    while (bi <= 16) {
        sym_val[names[bi - 1]] = bi * 8 + 4;
        sym_bound[names[bi - 1]] = 1;
        bi = bi + 1;
    }
    s_quote = names[16];
    s_if = names[17];
    s_define = names[18];
    s_setq = names[19];
    s_while = names[20];
    s_progn = names[21];
    s_let = names[22];
    s_lambda = names[23];
    s_and = names[24];
    s_or = names[25];
    s_t = names[26];

    // Read and evaluate the program.
    src = text;
    pos = 0;
    while (1) {
        var form: int = read_expr();
        if (form == 0 - 1) { break; }
        eval(form, NIL);
    }
    emit(free_cell);  // heap usage marker (also a determinism check)
}
"#;

/// The n-queens program, parameterized by board size. Counts solutions and
/// emits the count.
fn queens_program(n: u32) -> String {
    // Bitmask formulation (columns/diagonals as integer sets, membership
    // via divide-and-parity since the Lisp has no bitwise primitives):
    // allocation stays bounded, which matters in a GC-less heap.
    let all = (1u64 << n) - 1;
    format!(
        r#"
; n-queens solution counter over integer bit-sets
; (bit-in set b) = 1 when bit b is present in set
(define (bit-free set b) (= (rem (/ set b) 2) 0))

(define (solve cols ld rd count)
  (if (= cols {all}) (+ count 1)
    (try 1 cols ld rd count)))

(define (try bit cols ld rd count)
  (if (> bit {all}) count
    (try (* bit 2) cols ld rd
      (if (and (bit-free cols bit)
               (and (bit-free ld bit) (bit-free rd bit)))
          (solve (+ cols bit)
                 (* (+ ld bit) 2)
                 (/ (+ rd bit) 2)
                 count)
          count))))

(emit (solve 0 0 0 0))
"#
    )
}

/// `kittyv`: tomcatv's relaxation loop rewritten in Lisp over a list-based
/// mesh with fixed-point (scaled integer) arithmetic.
fn kittyv_program(cells: u32, iters: u32) -> String {
    format!(
        r#"
; 1-D relaxation over a list mesh, fixed-point /1000
(define (build i n)
  (if (> i n) nil
    (cons (* (rem (* i 37) 100) 10) (build (+ i 1) n))))

; one smoothing sweep: new[i] = (prev + 2*cur + next)/4
(define (sweep prev rest)
  (if (null (cdr rest))
      (cons (car rest) nil)
      (cons (/ (+ (+ prev (* 2 (car rest))) (car (cdr rest))) 4)
            (sweep (car rest) (cdr rest)))))

(define (iterate mesh k)
  (if (= k 0) mesh
    (iterate (cons (car mesh) (sweep (car mesh) (cdr mesh))) (- k 1))))

(define (checksum lst acc)
  (if (null lst) acc
    (checksum (cdr lst) (rem (+ (* acc 31) (car lst)) 1000000007))))

(setq mesh (build 1 {cells}))
(setq mesh (iterate mesh {iters}))
(emit (checksum mesh 0))
"#
    )
}

/// `sieve1`: a long, flat, machine-generated program — "the output of a
/// machine language to lisp simulator" computing primes. Registers are
/// globals, each basic block of the pseudo-assembly is a tiny function, and
/// a driver steps through them.
fn sieve_program(limit: u32) -> String {
    let mut out = String::from("; machine-generated: pseudo-assembly blocks\n");
    // Register init block.
    out.push_str("(define (blk-init) (progn (setq r0 2) (setq r1 0) (setq r2 0) (setq r3 0)))\n");
    // Trial-division primality as unrolled blocks.
    out.push_str(
        "(define (blk-isprime) (progn (setq r2 2) (setq r3 1)\n  (while (and (< (* r2 r2) (+ r0 1)) (> r3 0))\n    (progn (if (= (rem r0 r2) 0) (setq r3 0) nil) (setq r2 (+ r2 1))))))\n",
    );
    out.push_str("(define (blk-count) (if (> r3 0) (setq r1 (+ r1 1)) nil))\n");
    out.push_str("(define (blk-sum) (if (> r3 0) (setq r4 (+ r4 r0)) nil))\n");
    // A spray of tiny generated "instruction" blocks, as a simulator would
    // emit: each updates a scratch register chain.
    for i in 0..40 {
        writeln!(
            out,
            "(define (op-{i}) (setq r5 (rem (+ (* r5 {}) {}) 65536)))",
            17 + (i % 7),
            i * 13 + 1
        )
        .expect("write");
    }
    out.push_str("(setq r4 0) (setq r5 1)\n(blk-init)\n");
    writeln!(
        out,
        "(while (< r0 {limit})\n  (progn (blk-isprime) (blk-count) (blk-sum)"
    )
    .expect("write");
    // Driver calls a rotating subset of the op blocks each iteration.
    for i in 0..8 {
        writeln!(out, "    (op-{})", i * 5).expect("write");
    }
    out.push_str("    (setq r0 (+ r0 1))))\n(emit r1) (emit r4) (emit r5)\n");
    out
}

/// The `li` workload.
pub fn workload() -> Workload {
    let pack = |program: String, cells: i64| vec![Input::from_text(&program), Input::Int(cells)];
    Workload {
        name: "li",
        description: "XLISP 1.6 public domain lisp interpreter",
        group: Group::CInteger,
        source: LI.to_string(),
        datasets: vec![
            Dataset::new(
                "8queens",
                "SPEC input, placing 8 queens on a chessboard",
                pack(queens_program(8), 1_500_000),
            ),
            Dataset::new(
                "9queens",
                "SPEC input, placing 9 queens on a chessboard",
                pack(queens_program(9), 6_000_000),
            ),
            Dataset::new(
                "kittyv",
                "SPEC tomcatv rewritten in XLISP",
                pack(kittyv_program(60, 40), 2_000_000),
            ),
            Dataset::new(
                "sieve1",
                "Prime number sieve, output of machine lang to lisp simulator",
                pack(sieve_program(600), 1_000_000),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn lisp(program: &str, cells: i64) -> Vec<i64> {
        let p = mflang::compile(LI).unwrap();
        Vm::new(&p)
            .run(&[Input::from_text(program), Input::Int(cells)])
            .unwrap()
            .output_ints()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let out = lisp("(emit (+ 1 2)) (emit (* 6 7)) (emit (- 3 10)) (emit (/ 9 2)) (emit (rem 9 2)) (emit (if (< 1 2) 111 222))", 10_000);
        assert_eq!(&out[..6], &[3, 42, -7, 4, 1, 111]);
    }

    #[test]
    fn lists_and_recursion() {
        let out = lisp(
            "(define (length lst) (if (null lst) 0 (+ 1 (length (cdr lst)))))
             (emit (length (list 1 2 3 4 5)))
             (emit (car (cdr (cons 10 (cons 20 nil)))))",
            10_000,
        );
        assert_eq!(&out[..2], &[5, 20]);
    }

    #[test]
    fn quote_let_lambda_closures() {
        let out = lisp(
            "(define (compose2 x) (let ((k 100)) (lambda (y) (+ (* k x) y))))
             (setq f (compose2 3))
             (emit (f 7))
             (emit (car (quote (9 8 7))))
             (emit (if (atom (quote abc)) 1 0))",
            10_000,
        );
        assert_eq!(&out[..3], &[307, 9, 1]);
    }

    #[test]
    fn while_and_setq() {
        let out = lisp(
            "(setq i 0) (setq sum 0)
             (while (< i 10) (progn (setq sum (+ sum i)) (setq i (+ i 1))))
             (emit sum)",
            10_000,
        );
        assert_eq!(out[0], 45);
    }

    #[test]
    fn and_or_short_circuit() {
        let out = lisp(
            "(emit (if (and t (< 1 2)) 1 0))
             (emit (if (and nil (emit 999)) 1 0))
             (emit (if (or nil (< 1 2)) 1 0))",
            10_000,
        );
        assert_eq!(&out[..3], &[1, 0, 1]);
    }

    #[test]
    fn queens_counts_are_exact() {
        // Classic n-queens solution counts: 4->2, 5->10, 6->4.
        for (n, expected) in [(4, 2), (5, 10), (6, 4)] {
            let out = lisp(&queens_program(n), 400_000);
            assert_eq!(out[0], expected, "{n}-queens");
        }
    }

    #[test]
    fn kittyv_converges_deterministically() {
        let a = lisp(&kittyv_program(20, 10), 400_000);
        let b = lisp(&kittyv_program(20, 10), 400_000);
        assert_eq!(a, b);
        assert!(a[0] > 0);
    }

    #[test]
    fn sieve_counts_primes() {
        // pi(100) = 25, sum of primes < 100 = 1060.
        let out = lisp(&sieve_program(100), 400_000);
        assert_eq!(out[0], 25);
        assert_eq!(out[1], 1060);
    }

    #[test]
    fn datasets_are_registered() {
        let w = workload();
        assert_eq!(w.datasets.len(), 4);
        assert_eq!(w.datasets[0].name, "8queens");
    }

    #[test]
    fn eight_queens_has_ninety_two_solutions() {
        // The canonical answer for the actual SPEC-named dataset.
        let w = workload();
        let p = w.compile().unwrap();
        let run = Vm::new(&p)
            .run(&w.dataset("8queens").unwrap().inputs)
            .unwrap();
        assert_eq!(run.output_ints()[0], 92);
    }
}
