//! `mfcom`: the Multiflow C & FORTRAN compiler (common optimizer and back
//! end over two front-end syntaxes).
//!
//! The paper profiled the Multiflow compiler itself compiling 5047 lines of
//! C-flavoured utilities (`c_metric`) and 5855 lines of scientific FORTRAN
//! (`fortran_metric`), measuring the code *common to both languages*. This
//! guest mirrors that structure: one program whose shared middle consists of
//! a shunting-yard expression translator, a peephole optimizer, and a
//! stack-machine back end that executes the generated code — processing
//! either C-style (`x = a*b + c;`) or FORTRAN-style (`X = A*B + C`,
//! column-ish, `**` exponent) assignment programs.

use std::fmt::Write as _;

use trace_vm::Input;

use crate::datagen::Lcg;
use crate::{Dataset, Group, Workload};

const MFCOM: &str = r#"
// Stack-code ops: 1 PUSH_CONST v, 2 LOAD var, 3 STORE var, 4 ADD, 5 SUB,
// 6 MUL, 7 DIV, 8 POW (FORTRAN **), 9 NEG.
global src: [int];
global pos: int;
global lang: int;        // 0 = C syntax, 1 = FORTRAN syntax

global code_op: [int];
global code_arg: [int];
global code_len: int;

global op_stack: [int];
global op_top: int;

global vars: [int];      // 26 variable slots, a..z / A..Z
global stmts: int;
global peephole_hits: int;

fn is_digit(c: int) -> int {
    return c >= '0' && c <= '9';
}

fn is_var(c: int) -> int {
    if (lang == 0) { return c >= 'a' && c <= 'z'; }
    return c >= 'A' && c <= 'Z';
}

fn skip_ws() {
    while (pos < len(src)) {
        var c: int = src[pos];
        if (c == ' ' || c == '\t' || c == '\r') { pos = pos + 1; } else { return; }
    }
}

fn emit_op(op: int, arg: int) {
    code_op[code_len] = op;
    code_arg[code_len] = arg;
    code_len = code_len + 1;
}

fn prec(op: int) -> int {
    if (op == 0) { return 0; }              // '(' barrier: never pops
    if (op == 8) { return 3; }              // **
    if (op == 6 || op == 7) { return 2; }   // * /
    return 1;                               // + -
}

fn flush_ops(min_prec: int) {
    while (op_top > 0 && prec(op_stack[op_top - 1]) >= min_prec) {
        op_top = op_top - 1;
        emit_op(op_stack[op_top], 0);
    }
}

// Shunting-yard over one right-hand side, up to end-of-statement.
fn compile_expr() {
    var expect_operand: int = 1;
    while (pos < len(src)) {
        skip_ws();
        if (pos >= len(src)) { break; }
        var c: int = src[pos];
        if (lang == 0 && c == ';') { break; }
        if (c == '\n') { break; }
        if (expect_operand) {
            if (c == '-') {                  // unary minus: compile operand then NEG
                pos = pos + 1;
                skip_ws();
                c = src[pos];
                if (is_digit(c)) {
                    var v0: int = 0;
                    while (pos < len(src) && is_digit(src[pos])) {
                        v0 = v0 * 10 + (src[pos] - '0');
                        pos = pos + 1;
                    }
                    emit_op(1, v0);
                } else {
                    if (lang == 0) { emit_op(2, c - 'a'); } else { emit_op(2, c - 'A'); }
                    pos = pos + 1;
                }
                emit_op(9, 0);
                expect_operand = 0;
                continue;
            }
            if (c == '(') {
                // Parenthesized subexpression: push a barrier (op 0).
                op_stack[op_top] = 0;
                op_top = op_top + 1;
                pos = pos + 1;
                continue;
            }
            if (is_digit(c)) {
                var v: int = 0;
                while (pos < len(src) && is_digit(src[pos])) {
                    v = v * 10 + (src[pos] - '0');
                    pos = pos + 1;
                }
                emit_op(1, v);
                expect_operand = 0;
                continue;
            }
            if (is_var(c)) {
                if (lang == 0) { emit_op(2, c - 'a'); } else { emit_op(2, c - 'A'); }
                pos = pos + 1;
                expect_operand = 0;
                continue;
            }
            pos = pos + 1; // skip unexpected
        } else {
            if (c == ')') {
                // pop to barrier
                while (op_top > 0 && op_stack[op_top - 1] != 0) {
                    op_top = op_top - 1;
                    emit_op(op_stack[op_top], 0);
                }
                if (op_top > 0) { op_top = op_top - 1; }
                pos = pos + 1;
                continue;
            }
            var op: int = 0;
            if (c == '+') { op = 4; }
            if (c == '-') { op = 5; }
            if (c == '*') {
                if (lang == 1 && pos + 1 < len(src) && src[pos + 1] == '*') {
                    op = 8;
                    pos = pos + 1;
                } else {
                    op = 6;
                }
            }
            if (c == '/') { op = 7; }
            if (op == 0) { break; }
            pos = pos + 1;
            // Left-assoc: pop >= precedence; POW is right-assoc: pop >.
            if (op == 8) { flush_ops(prec(op) + 1); } else { flush_ops(prec(op)); }
            op_stack[op_top] = op;
            op_top = op_top + 1;
            expect_operand = 1;
        }
    }
    while (op_top > 0) {
        op_top = op_top - 1;
        if (op_stack[op_top] != 0) { emit_op(op_stack[op_top], 0); }
    }
}

// One statement: VAR = expr (terminated by ; or newline).
fn compile_stmt() -> int {
    skip_ws();
    while (pos < len(src) && (src[pos] == '\n' || src[pos] == ';')) {
        pos = pos + 1;
        skip_ws();
    }
    if (pos >= len(src)) { return 0; }
    var target: int = src[pos];
    if (!is_var(target)) { pos = pos + 1; return 1; }
    pos = pos + 1;
    skip_ws();
    if (pos >= len(src) || src[pos] != '=') { return 1; }
    pos = pos + 1;
    compile_expr();
    if (lang == 0) { emit_op(3, target - 'a'); } else { emit_op(3, target - 'A'); }
    stmts = stmts + 1;
    return 1;
}

// Peephole: PUSH k, PUSH m, op  ->  PUSH (k op m); LOAD x, STORE x -> nop.
fn peephole() {
    var out: int = 0;
    for (var i: int = 0; i < code_len; i = i + 1) {
        var op: int = code_op[i];
        if (out >= 2 && op >= 4 && op <= 7
            && code_op[out - 1] == 1 && code_op[out - 2] == 1) {
            var b: int = code_arg[out - 1];
            var a: int = code_arg[out - 2];
            var folded: int = 0;
            var ok: int = 1;
            if (op == 4) { folded = a + b; }
            if (op == 5) { folded = a - b; }
            if (op == 6) { folded = a * b; }
            if (op == 7) { if (b != 0) { folded = a / b; } else { ok = 0; } }
            if (ok) {
                out = out - 1;
                code_arg[out - 1] = folded;
                peephole_hits = peephole_hits + 1;
                continue;
            }
        }
        if (out >= 1 && op == 3 && code_op[out - 1] == 2
            && code_arg[out - 1] == code_arg[i]) {
            // LOAD x; STORE x — dead pair (value unchanged).
            out = out - 1;
            peephole_hits = peephole_hits + 1;
            continue;
        }
        code_op[out] = op;
        code_arg[out] = code_arg[i];
        out = out + 1;
    }
    code_len = out;
}

// Back end: execute the stack code (stands in for emitting machine code —
// and verifies the translation).
fn execute() {
    var stack: [int] = new_int(256);
    var sp: int = 0;
    for (var i: int = 0; i < code_len; i = i + 1) {
        var op: int = code_op[i];
        var arg: int = code_arg[i];
        if (op == 1) { stack[sp] = arg; sp = sp + 1; continue; }
        if (op == 2) { stack[sp] = vars[arg]; sp = sp + 1; continue; }
        if (op == 3) { sp = sp - 1; vars[arg] = stack[sp]; continue; }
        if (op == 9) { stack[sp - 1] = 0 - stack[sp - 1]; continue; }
        sp = sp - 1;
        var b: int = stack[sp];
        var a: int = stack[sp - 1];
        var r: int = 0;
        if (op == 4) { r = a + b; }
        if (op == 5) { r = a - b; }
        if (op == 6) { r = a * b; }
        if (op == 7) { if (b != 0) { r = a / b; } }
        if (op == 8) {
            r = 1;
            var e: int = b;
            if (e > 12) { e = 12; }
            while (e > 0) { r = r * a; e = e - 1; }
        }
        stack[sp - 1] = r;
    }
}

fn main(text: [int], language: int) {
    src = text;
    pos = 0;
    lang = language;
    code_op = new_int(len(text) + 64);
    code_arg = new_int(len(text) + 64);
    code_len = 0;
    op_stack = new_int(128);
    op_top = 0;
    vars = new_int(26);
    stmts = 0;
    peephole_hits = 0;

    while (compile_stmt()) { }
    var raw_len: int = code_len;
    peephole();
    execute();

    emit(stmts);
    emit(raw_len);
    emit(code_len);
    emit(peephole_hits);
    var h: int = 0;
    for (var v: int = 0; v < 26; v = v + 1) {
        h = (h * 31 + vars[v]) % 1000000007;
        emit(vars[v]);
    }
    emit(h);
}
"#;

/// Generates a C-flavoured assignment program (`c_metric`).
#[allow(clippy::explicit_auto_deref)] // pick returns &&str; the deref drives inference
pub fn gen_c_metric(seed: u64, lines: usize) -> String {
    let mut g = Lcg::new(seed);
    let mut out = String::from("a = 1; b = 2; c = 3; d = 4; e = 5;\n");
    for _ in 0..lines {
        let target = (b'a' + g.below(12) as u8) as char;
        let mut expr = String::new();
        let terms = g.range(2, 5);
        for t in 0..terms {
            if t > 0 {
                expr.push_str(*g.pick(&[" + ", " - ", " * ", " / "]));
            }
            if g.chance(40) {
                write!(expr, "{}", g.range(1, 99)).expect("write");
            } else if g.chance(30) {
                write!(
                    expr,
                    "({} + {})",
                    (b'a' + g.below(12) as u8) as char,
                    g.range(1, 9)
                )
                .expect("write");
            } else {
                expr.push((b'a' + g.below(12) as u8) as char);
            }
        }
        writeln!(out, "{target} = {expr};").expect("write");
    }
    out
}

/// Generates a FORTRAN-flavoured assignment program (`fortran_metric`).
#[allow(clippy::explicit_auto_deref)] // pick returns &&str; the deref drives inference
pub fn gen_fortran_metric(seed: u64, lines: usize) -> String {
    let mut g = Lcg::new(seed);
    let mut out = String::from("A = 2\nB = 3\nC = 4\nD = 5\nE = 6\n");
    for _ in 0..lines {
        let target = (b'A' + g.below(12) as u8) as char;
        let mut expr = String::new();
        let terms = g.range(2, 4);
        for t in 0..terms {
            if t > 0 {
                expr.push_str(*g.pick(&[" + ", " - ", " * "]));
            }
            if g.chance(25) {
                // The FORTRAN flavour: exponentiation.
                write!(
                    expr,
                    "{}**{}",
                    (b'A' + g.below(6) as u8) as char,
                    g.range(2, 3)
                )
                .expect("write");
            } else if g.chance(40) {
                write!(expr, "{}", g.range(1, 99)).expect("write");
            } else {
                expr.push((b'A' + g.below(12) as u8) as char);
            }
        }
        writeln!(out, "{target} = {expr}").expect("write");
    }
    out
}

/// The `mfcom` workload.
pub fn workload() -> Workload {
    Workload {
        name: "mfcom",
        description: "The Multiflow C & FORTRAN compiler (common optimizer and backend)",
        group: Group::CInteger,
        source: MFCOM.to_string(),
        datasets: vec![
            Dataset::new(
                "c_metric",
                "C-flavoured source (cat, cpp, diff, make, maze, whetstone stand-in)",
                vec![Input::from_text(&gen_c_metric(501, 900)), Input::Int(0)],
            ),
            Dataset::new(
                "fortran_metric",
                "Scientific FORTRAN subroutine source stand-in",
                vec![
                    Input::from_text(&gen_fortran_metric(502, 1000)),
                    Input::Int(1),
                ],
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn compile_run(text: &str, lang: i64) -> Vec<i64> {
        let p = mflang::compile(MFCOM).unwrap();
        Vm::new(&p)
            .run(&[Input::from_text(text), Input::Int(lang)])
            .unwrap()
            .output_ints()
    }

    #[test]
    fn c_arithmetic_is_correct() {
        // a=6; b=7; c = a*b + 2*3 -> 48 ; precedence honoured.
        let out = compile_run("a = 6; b = 7; c = a * b + 2 * 3;", 0);
        let vars = &out[4..30];
        assert_eq!(vars[0], 6);
        assert_eq!(vars[1], 7);
        assert_eq!(vars[2], 48);
    }

    #[test]
    fn parentheses_and_unary_minus() {
        let out = compile_run("a = (2 + 3) * 4; b = -5 + 1; c = 10 - (1 + 2);", 0);
        let vars = &out[4..30];
        assert_eq!(vars[0], 20);
        assert_eq!(vars[1], -4);
        assert_eq!(vars[2], 7);
    }

    #[test]
    fn fortran_pow_is_right_assoc() {
        // B = 2; A = B**2**2 must be 2^(2^2) = 16, not (2^2)^2 = 16… use
        // 3: 3**2**2 = 3^4 = 81 vs (3^2)^2 = 81 — pick an asymmetric case:
        // 2**3**2 = 2^9 = 512 vs (2^3)^2 = 64.
        let out = compile_run("B = 2\nA = B**3**2\n", 1);
        let vars = &out[4..30];
        assert_eq!(vars[0], 512);
    }

    #[test]
    fn peephole_folds_constants() {
        let out = compile_run("a = 2 + 3; b = 4 * 5 + 1;", 0);
        assert!(out[3] >= 3, "peephole hits {}", out[3]);
        let vars = &out[4..30];
        assert_eq!(vars[0], 5);
        assert_eq!(vars[1], 21);
    }

    #[test]
    fn peephole_preserves_results() {
        // The generated datasets must compute the same values with and
        // without folding — execute() runs after peephole, and the checksum
        // is deterministic.
        let text = gen_c_metric(77, 60);
        let a = compile_run(&text, 0);
        let b = compile_run(&text, 0);
        assert_eq!(a, b);
        assert!(a[0] >= 60, "statement count");
    }

    #[test]
    fn both_datasets_run() {
        let w = workload();
        let p = w.compile().unwrap();
        for d in &w.datasets {
            let out = Vm::new(&p).run(&d.inputs).unwrap().output_ints();
            assert!(out[0] > 500, "{}: too few statements", d.name);
            assert!(out[2] < out[1], "{}: peephole did nothing", d.name);
        }
    }
}
