//! `doduc`: Monte-Carlo-flavoured nuclear reactor thermohydraulics.
//!
//! The SPEC program integrates a stiff system with many table lookups and
//! regime tests. This guest reproduces that character: an explicit
//! integrator over a small state vector whose coefficient selection branches
//! on the current regime (temperature/pressure thresholds and a property
//! table searched by bisection), so branch behaviour is data-dependent but
//! strongly biased — like the original, whose three SPEC datasets (tiny,
//! small, ref) differ mainly in simulated duration.

use trace_vm::Input;

use crate::{Dataset, Group, Workload};

const DODUC: &str = r#"
global table_t: [float];   // property table: temperature grid
global table_v: [float];   // property table: values
global lookups: int;

fn build_tables(m: int) {
    table_t = new_float(m);
    table_v = new_float(m);
    for (var i: int = 0; i < m; i = i + 1) {
        table_t[i] = float(i) * 10.0;
        table_v[i] = 1.0 + 0.05 * sin(float(i) * 0.3);
    }
}

// Bisection search of the property table (the doduc hot spot).
fn property(t: float) -> float {
    lookups = lookups + 1;
    var lo: int = 0;
    var hi: int = len(table_t) - 1;
    if (t <= table_t[0]) { return table_v[0]; }
    if (t >= table_t[hi]) { return table_v[hi]; }
    while (hi - lo > 1) {
        var mid: int = (lo + hi) / 2;
        if (table_t[mid] <= t) { lo = mid; } else { hi = mid; }
    }
    var f: float = (t - table_t[lo]) / (table_t[hi] - table_t[lo]);
    return table_v[lo] + f * (table_v[hi] - table_v[lo]);
}

// Heat source with regime switching.
fn source(temp: float, power: float) -> float {
    if (temp > 550.0) {
        // Over-temperature regime: strong negative feedback.
        return power - 0.02 * (temp - 550.0);
    }
    if (temp < 200.0) {
        // Startup regime.
        return power * 1.5;
    }
    return power;
}

fn main(steps: int) {
    build_tables(64);
    lookups = 0;

    var temp: float = 180.0;      // coolant temperature
    var rho: float = 1.0;         // density
    var power: float = 8.0;       // reactor power
    var flow: float = 2.5;        // coolant flow
    var energy: float = 0.0;

    for (var s: int = 0; s < steps; s = s + 1) {
        var k: float = property(temp);
        var q: float = source(temp, power);
        // Two half-steps (RK2-like).
        var dt: float = 0.01;
        var dtemp1: float = (q * k - flow * (temp - 150.0) * 0.004) * dt;
        var mid: float = temp + 0.5 * dtemp1;
        var kmid: float = property(mid);
        var dtemp2: float = (source(mid, power) * kmid - flow * (mid - 150.0) * 0.004) * dt;
        temp = temp + dtemp2;

        // Density feedback on power.
        rho = 1.0 / (1.0 + 0.0004 * (temp - 180.0));
        if (rho < 0.6) { rho = 0.6; }
        power = power * (0.9995 + 0.0008 * (rho - 0.97));
        if (power > 12.0) { power = 12.0; }
        if (power < 0.5) { power = 0.5; }

        // Periodic control-rod adjustment.
        if (s % 50 == 0 && temp > 400.0) {
            power = power * 0.98;
        }
        energy = energy + power * dt;
    }

    emit(int(temp * 1000.0));
    emit(int(power * 1000.0));
    emit(int(energy * 1000.0));
    emit(lookups);
}
"#;

/// The `doduc` workload with its three SPEC-style datasets.
pub fn workload() -> Workload {
    Workload {
        name: "doduc",
        description: "Nuclear reactor modeling",
        group: Group::FortranFp,
        source: DODUC.to_string(),
        datasets: vec![
            Dataset::new("tiny", "Shortest SPEC-style run", vec![Input::Int(3_000)]),
            Dataset::new("small", "Medium SPEC-style run", vec![Input::Int(8_000)]),
            Dataset::new("ref", "Reference SPEC-style run", vec![Input::Int(20_000)]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    #[test]
    fn stabilizes_and_counts_lookups() {
        let w = workload();
        let p = w.compile().unwrap();
        let out = Vm::new(&p).run(&[Input::Int(2000)]).unwrap().output_ints();
        let temp = out[0] as f64 / 1000.0;
        let power = out[1] as f64 / 1000.0;
        assert!(
            (150.0..700.0).contains(&temp),
            "temperature ran away: {temp}"
        );
        assert!((0.5..=12.0).contains(&power), "power out of clamp: {power}");
        assert_eq!(out[3], 2 * 2000, "two property lookups per step");
    }

    #[test]
    fn datasets_differ_only_in_length() {
        let w = workload();
        assert_eq!(w.datasets.len(), 3);
        let p = w.compile().unwrap();
        let tiny = Vm::new(&p).run(&w.datasets[0].inputs).unwrap();
        let small = Vm::new(&p).run(&w.datasets[1].inputs).unwrap();
        assert!(small.stats.total_instrs > 2 * tiny.stats.total_instrs);
        // Same program paths: percent-taken nearly identical (the paper's
        // "program constant").
        let pt_tiny = tiny.stats.branches.percent_taken().unwrap();
        let pt_small = small.stats.branches.percent_taken().unwrap();
        assert!((pt_tiny - pt_small).abs() < 0.05);
    }
}
