//! `eqntott`: boolean equation to truth-table conversion.
//!
//! The SPEC program parses boolean equations, builds product terms, and
//! spends most of its time in `cmppt`, a comparison routine driving a sort
//! of the truth table. This guest does the same: parse sum-of-products
//! equations from text, enumerate the full truth table, and quicksort the
//! rows with a multi-key comparison — the classic eqntott branch workload.

use std::fmt::Write as _;

use trace_vm::Input;

use crate::{Dataset, Group, Workload};

const EQNTOTT: &str = r#"
// Equation text syntax (one output per line):
//   z0 = a&b | !a&c ;
// Variables are single letters a..p (inputs) mapped to indices by first
// appearance; outputs are z0, z1, ….
global src: [int];
global pos: int;
global nvars: int;
global var_names: [int];

// Product terms: for each term, a mask (which variables matter) and a
// polarity word (required values), plus which output it belongs to.
global term_mask: [int];
global term_val: [int];
global term_out: [int];
global nterms: int;

global rows: [int];      // truth-table rows: packed (outputs << 20) | inputs
global cmp_count: int;

fn peek() -> int {
    if (pos >= len(src)) { return 0 - 1; }
    return src[pos];
}

fn skip_ws() {
    while (pos < len(src)) {
        var c: int = src[pos];
        if (c == ' ' || c == '\n' || c == '\t' || c == '\r') {
            pos = pos + 1;
        } else {
            return;
        }
    }
}

fn var_index(c: int) -> int {
    for (var i: int = 0; i < nvars; i = i + 1) {
        if (var_names[i] == c) { return i; }
    }
    var_names[nvars] = c;
    nvars = nvars + 1;
    return nvars - 1;
}

// Parses one product term: [!]var (& [!]var)*
fn parse_term(out_idx: int) {
    var mask: int = 0;
    var val: int = 0;
    while (1) {
        skip_ws();
        var neg: int = 0;
        if (peek() == '!') { neg = 1; pos = pos + 1; skip_ws(); }
        var c: int = peek();
        var v: int = var_index(c);
        pos = pos + 1;
        mask = mask | (1 << v);
        if (!neg) { val = val | (1 << v); }
        skip_ws();
        if (peek() == '&') { pos = pos + 1; } else { break; }
    }
    term_mask[nterms] = mask;
    term_val[nterms] = val;
    term_out[nterms] = out_idx;
    nterms = nterms + 1;
}

fn parse_equation(out_idx: int) {
    // z<digits> = term (| term)* ;
    skip_ws();
    while (peek() != '=') { pos = pos + 1; }
    pos = pos + 1;
    while (1) {
        parse_term(out_idx);
        skip_ws();
        if (peek() == '|') { pos = pos + 1; } else { break; }
    }
    skip_ws();
    if (peek() == ';') { pos = pos + 1; }
}

fn parse_all() -> int {
    var outputs: int = 0;
    while (1) {
        skip_ws();
        if (peek() == 0 - 1) { break; }
        parse_equation(outputs);
        outputs = outputs + 1;
    }
    return outputs;
}

// Evaluate all outputs on one input assignment.
fn eval_row(assign: int) -> int {
    var outs: int = 0;
    for (var t: int = 0; t < nterms; t = t + 1) {
        if ((assign & term_mask[t]) == term_val[t]) {
            outs = outs | (1 << term_out[t]);
        }
    }
    return outs;
}

// cmppt: compare rows by output pattern first, then input value.
fn cmppt(a: int, b: int) -> int {
    cmp_count = cmp_count + 1;
    var oa: int = a >> 20;
    var ob: int = b >> 20;
    if (oa < ob) { return 0 - 1; }
    if (oa > ob) { return 1; }
    var ia: int = a & 1048575;
    var ib: int = b & 1048575;
    if (ia < ib) { return 0 - 1; }
    if (ia > ib) { return 1; }
    return 0;
}

fn qsort_rows(lo: int, hi: int) {
    if (lo >= hi) { return; }
    var pivot: int = rows[(lo + hi) / 2];
    var i: int = lo;
    var j: int = hi;
    while (i <= j) {
        while (cmppt(rows[i], pivot) < 0) { i = i + 1; }
        while (cmppt(rows[j], pivot) > 0) { j = j - 1; }
        if (i <= j) {
            var t: int = rows[i];
            rows[i] = rows[j];
            rows[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    qsort_rows(lo, j);
    qsort_rows(i, hi);
}

fn main(text: [int], unused: int) {
    src = text;
    pos = 0;
    nvars = 0;
    var_names = new_int(20);
    term_mask = new_int(4096);
    term_val = new_int(4096);
    term_out = new_int(4096);
    nterms = 0;
    cmp_count = 0;

    var outputs: int = parse_all();
    var n: int = 1 << nvars;
    rows = new_int(n);
    for (var a: int = 0; a < n; a = a + 1) {
        rows[a] = (eval_row(a) << 20) | a;
    }
    qsort_rows(0, n - 1);

    // Emit a verification summary: header, then a checksum over the sorted
    // table, then ON-set sizes per output.
    emit(nvars);
    emit(outputs);
    emit(nterms);
    var sum: int = 0;
    for (var i: int = 0; i < n; i = i + 1) {
        sum = (sum * 31 + rows[i]) % 1000000007;
    }
    emit(sum);
    for (var o: int = 0; o < outputs; o = o + 1) {
        var ones: int = 0;
        for (var a2: int = 0; a2 < n; a2 = a2 + 1) {
            if ((rows[a2] >> (20 + o)) & 1) { ones = ones + 1; }
        }
        emit(ones);
    }
    emit(cmp_count);
}
"#;

/// Generates the naive ripple-carry adder equations of the paper's
/// `add4`/`add5`/`add6` datasets: sum and carry as raw sum-of-products over
/// `2 bits + 1` variables per stage (exponential in term count — exactly why
/// the originals were "naive").
pub fn gen_adder(bits: usize) -> String {
    assert!(bits <= 6, "variable budget: 2*bits + 1 <= 13");
    // Variables: a0..an-1 -> letters a..; b0.. -> letters after; carry-in c.
    let a = |i: usize| (b'a' + i as u8) as char;
    let b = |i: usize| (b'a' + (bits + i) as u8) as char;
    let cin = (b'a' + 2 * bits as u8) as char;

    // Build each output as sum-of-products by full enumeration over the
    // variables it depends on (naive, like the original datasets).
    let mut out = String::new();
    for stage in 0..=bits {
        // Output `stage` is sum bit; the final extra output is carry-out.
        let deps: Vec<char> = {
            let mut d = Vec::new();
            for i in 0..bits.min(stage + 1) {
                if i <= stage {
                    d.push(a(i));
                    d.push(b(i));
                }
            }
            d.push(cin);
            d
        };
        let nd = deps.len();
        let mut terms = Vec::new();
        for assign in 0..(1u32 << nd) {
            // Compute the adder output for this assignment.
            let bit = |c: char, assign: u32| -> u64 {
                let idx = deps.iter().position(|&d| d == c);
                idx.map_or(0, |i| u64::from((assign >> i) & 1))
            };
            let mut carry = bit(cin, assign);
            let mut sum_bit = 0;
            let mut carry_out = 0;
            for i in 0..bits {
                let s = bit(a(i), assign) + bit(b(i), assign) + carry;
                if i == stage {
                    sum_bit = s & 1;
                }
                carry = s >> 1;
                if i == bits - 1 {
                    carry_out = carry;
                }
            }
            let value = if stage == bits { carry_out } else { sum_bit };
            if value == 1 {
                let term: Vec<String> = deps
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        if (assign >> i) & 1 == 1 {
                            d.to_string()
                        } else {
                            format!("!{d}")
                        }
                    })
                    .collect();
                terms.push(term.join("&"));
            }
        }
        if terms.is_empty() {
            terms.push(format!("{c}&!{c}", c = cin)); // constant false
        }
        writeln!(out, "z{stage} = {} ;", terms.join(" | ")).expect("write");
    }
    out
}

/// Generates the `intpri` priority-encoder equations: output `k` is high
/// when input `k` is the highest-priority asserted line.
pub fn gen_priority(lines: usize) -> String {
    let mut out = String::new();
    for k in 0..lines {
        let mut term = String::new();
        for j in (k + 1..lines).rev() {
            write!(term, "!{}&", (b'a' + j as u8) as char).expect("write");
        }
        write!(term, "{}", (b'a' + k as u8) as char).expect("write");
        writeln!(out, "z{k} = {term} ;").expect("write");
    }
    out
}

/// The `eqntott` workload.
pub fn workload() -> Workload {
    let pack = |text: String| -> Vec<Input> { vec![Input::from_text(&text), Input::Int(0)] };
    Workload {
        name: "eqntott",
        description: "Converts boolean equations to truth tables",
        group: Group::CInteger,
        source: EQNTOTT.to_string(),
        // The naive sum-of-products expansion doubles in term count per
        // adder bit; widths are scaled one bit down from the paper's
        // add4/add5/add6 so the largest dataset stays tractable on the
        // interpreted substrate (same policy as matrix300's 60x60).
        datasets: vec![
            Dataset::new(
                "add4",
                "Naive adder equations (scaled: 3 bits)",
                pack(gen_adder(3)),
            ),
            Dataset::new(
                "add5",
                "Naive adder equations (scaled: 4 bits)",
                pack(gen_adder(4)),
            ),
            Dataset::new(
                "add6",
                "Naive adder equations (scaled: 5 bits)",
                pack(gen_adder(5)),
            ),
            Dataset::new(
                "intpri",
                "Priority circuit, from SPEC",
                pack(gen_priority(13)),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn run_text(text: &str) -> Vec<i64> {
        let p = mflang::compile(EQNTOTT).unwrap();
        Vm::new(&p)
            .run(&[Input::from_text(text), Input::Int(0)])
            .unwrap()
            .output_ints()
    }

    #[test]
    fn simple_equation_truth_table() {
        // z0 = a&b: 1 of 4 rows on.
        let out = run_text("z0 = a&b ;");
        assert_eq!(out[0], 2, "nvars");
        assert_eq!(out[1], 1, "outputs");
        assert_eq!(out[2], 1, "terms");
        assert_eq!(out[4], 1, "ON-set size of AND");
    }

    #[test]
    fn or_and_negation() {
        // z0 = a | !a&b  -> ON for a=1 (2 rows) plus a=0,b=1 (1 row) = 3.
        let out = run_text("z0 = a | !a&b ;");
        assert_eq!(out[4], 3);
    }

    #[test]
    fn adder_equations_are_correct() {
        // For the 2-bit adder, check ON-set sizes against arithmetic.
        let text = gen_adder(2);
        let out = run_text(&text);
        let nvars = out[0];
        assert_eq!(nvars, 5); // a0 a1 b0 b1 cin
        let outputs = out[1];
        assert_eq!(outputs, 3); // s0 s1 carry
                                // Brute-force the adder in Rust; variable order in the guest is by
                                // first appearance, which matches generation order… so instead of
                                // relying on bit positions, just validate total ON counts.
        let mut on = [0i64; 3];
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..2u32 {
                    let s = a + b + c;
                    if s & 1 == 1 {
                        on[0] += 1;
                    }
                    if (s >> 1) & 1 == 1 {
                        on[1] += 1;
                    }
                    if (s >> 2) & 1 == 1 {
                        on[2] += 1;
                    }
                }
            }
        }
        assert_eq!(&out[4..7], &on[..], "ON-set sizes vs arithmetic");
    }

    #[test]
    fn priority_encoder_on_sets() {
        // Output k fires when line k is set and every higher-priority line
        // is clear, leaving the k lower lines free: 2^k assignments.
        let out = run_text(&gen_priority(5));
        assert_eq!(out[0], 5);
        assert_eq!(&out[4..9], &[1, 2, 4, 8, 16]);
    }

    #[test]
    fn sort_produces_many_comparisons() {
        let out = run_text(&gen_adder(4));
        let cmp_count = *out.last().unwrap();
        assert!(cmp_count > 1000, "cmppt barely ran: {cmp_count}");
    }

    #[test]
    fn smallest_dataset_runs() {
        // The larger datasets run in the release-mode harness; debug tests
        // exercise only add4 to stay fast.
        let w = workload();
        let p = w.compile().unwrap();
        let d = w.dataset("add4").unwrap();
        let run = Vm::new(&p).run(&d.inputs).unwrap();
        assert!(!run.output.is_empty());
    }
}
