//! `espresso`: two-level logic (PLA) minimization.
//!
//! The real espresso iterates EXPAND / IRREDUNDANT / REDUCE over a cube
//! cover. This guest implements the core of that loop on the classic
//! (mask, value) cube representation: EXPAND raises literals to don't-care
//! while staying disjoint from the OFF-set, IRREDUNDANT removes cubes
//! contained in other cubes, and the loop iterates to a fixpoint. The
//! result is verified exhaustively: every ON minterm stays covered, no OFF
//! minterm ever becomes covered.

use trace_vm::Input;

use crate::datagen::Lcg;
use crate::{Dataset, Group, Workload};

const ESPRESSO: &str = r#"
// Cubes are (mask, val) pairs: mask bit set = variable specified, val bit
// gives the required value (only meaningful under mask).
global on_mask: [int];
global on_val: [int];
global n_on: int;
global off_mask: [int];
global off_val: [int];
global n_off: int;
global nvars: int;
global alive: [int];

// Two cubes intersect iff they agree on commonly specified variables.
fn intersects(m1: int, v1: int, m2: int, v2: int) -> int {
    var common: int = m1 & m2;
    return ((v1 ^ v2) & common) == 0;
}

// Cube 1 contains cube 2 iff cube 1's constraints are a subset.
fn contains(m1: int, v1: int, m2: int, v2: int) -> int {
    if ((m1 & ~m2) != 0) { return 0; }
    return ((v1 ^ v2) & m1) == 0;
}

// EXPAND: try clearing each specified literal; keep the raise if the cube
// still avoids the whole OFF-set.
fn expand() -> int {
    var changed: int = 0;
    for (var c: int = 0; c < n_on; c = c + 1) {
        if (!alive[c]) { continue; }
        for (var v: int = 0; v < nvars; v = v + 1) {
            var bit: int = 1 << v;
            if ((on_mask[c] & bit) == 0) { continue; }
            var new_mask: int = on_mask[c] & ~bit;
            var ok: int = 1;
            for (var o: int = 0; o < n_off; o = o + 1) {
                if (intersects(new_mask, on_val[c], off_mask[o], off_val[o])) {
                    ok = 0;
                    break;
                }
            }
            if (ok) {
                on_mask[c] = new_mask;
                on_val[c] = on_val[c] & new_mask;
                changed = 1;
            }
        }
    }
    return changed;
}

// IRREDUNDANT (single-cube containment): kill cubes contained in another
// live cube.
fn irredundant() -> int {
    var changed: int = 0;
    for (var i: int = 0; i < n_on; i = i + 1) {
        if (!alive[i]) { continue; }
        for (var j: int = 0; j < n_on; j = j + 1) {
            if (i == j || !alive[j]) { continue; }
            if (contains(on_mask[j], on_val[j], on_mask[i], on_val[i])) {
                // Tie-break: equal cubes kill the higher index only.
                if (contains(on_mask[i], on_val[i], on_mask[j], on_val[j]) && i < j) {
                    continue;
                }
                alive[i] = 0;
                changed = 1;
                break;
            }
        }
    }
    return changed;
}

fn minterm_covered(m: int) -> int {
    for (var c: int = 0; c < n_on; c = c + 1) {
        if (!alive[c]) { continue; }
        if (((m ^ on_val[c]) & on_mask[c]) == 0) { return 1; }
    }
    return 0;
}

fn main(data: [int], header: int) {
    // data layout: nvars, n_on, n_off, then (mask, val) pairs for ON then
    // OFF cubes.
    nvars = data[0];
    n_on = data[1];
    n_off = data[2];
    on_mask = new_int(n_on);
    on_val = new_int(n_on);
    off_mask = new_int(n_off);
    off_val = new_int(n_off);
    alive = new_int(n_on);
    var p: int = 3;
    for (var i: int = 0; i < n_on; i = i + 1) {
        on_mask[i] = data[p];
        on_val[i] = data[p + 1];
        alive[i] = 1;
        p = p + 2;
    }
    for (var i2: int = 0; i2 < n_off; i2 = i2 + 1) {
        off_mask[i2] = data[p];
        off_val[i2] = data[p + 1];
        p = p + 2;
    }

    // Record original coverage for the verification pass.
    var total: int = 1 << nvars;
    var before: [int] = new_int(total);
    for (var m: int = 0; m < total; m = m + 1) {
        before[m] = minterm_covered(m);
    }

    // The espresso loop.
    var rounds: int = 0;
    var changed: int = 1;
    while (changed && rounds < 8) {
        changed = 0;
        if (expand()) { changed = 1; }
        if (irredundant()) { changed = 1; }
        rounds = rounds + 1;
    }

    // Verification + result summary.
    var live: int = 0;
    var literals: int = 0;
    for (var c: int = 0; c < n_on; c = c + 1) {
        if (alive[c]) {
            live = live + 1;
            var mm: int = on_mask[c];
            while (mm != 0) {
                literals = literals + (mm & 1);
                mm = mm >> 1;
            }
        }
    }
    var lost: int = 0;      // ON minterms that lost coverage (must be 0)
    var violations: int = 0; // OFF minterms now covered (must be 0)
    var cover_hash: int = 0;
    for (var m2: int = 0; m2 < total; m2 = m2 + 1) {
        var now: int = minterm_covered(m2);
        if (before[m2] && !now) { lost = lost + 1; }
        cover_hash = (cover_hash * 31 + now) % 1000000007;
        if (now) {
            for (var o: int = 0; o < n_off; o = o + 1) {
                if (((m2 ^ off_val[o]) & off_mask[o]) == 0) {
                    violations = violations + 1;
                    break;
                }
            }
        }
    }
    emit(n_on);
    emit(live);
    emit(literals);
    emit(rounds);
    emit(lost);
    emit(violations);
    emit(cover_hash);
    emit(header);
}
"#;

/// A generated PLA: header word plus packed cube data.
fn gen_pla(seed: u64, nvars: u32, n_on: usize, n_off: usize) -> Vec<i64> {
    let mut g = Lcg::new(seed);
    let full = (1u64 << nvars) - 1;

    // ON cubes: random cubes of varying specificity.
    let mut on: Vec<(i64, i64)> = Vec::new();
    for _ in 0..n_on {
        let specified = g.range(2, nvars as i64) as u32;
        let mut mask = 0u64;
        while mask.count_ones() < specified {
            mask |= 1 << g.below(u64::from(nvars));
        }
        let val = g.next_u64() & mask;
        on.push((mask as i64, val as i64));
    }
    // OFF cubes: minterms not intersecting any ON cube.
    let covered = |m: u64| {
        on.iter()
            .any(|&(mask, val)| (m ^ val as u64) & mask as u64 == 0)
    };
    let mut off: Vec<(i64, i64)> = Vec::new();
    let mut guard = 0;
    while off.len() < n_off && guard < 200_000 {
        guard += 1;
        let m = g.next_u64() & full;
        if !covered(m) && !off.iter().any(|&(_, v)| v == m as i64) {
            off.push((full as i64, m as i64));
        }
    }

    let mut data = vec![i64::from(nvars), on.len() as i64, off.len() as i64];
    for (m, v) in on.iter().chain(off.iter()) {
        data.push(*m);
        data.push(*v);
    }
    data
}

/// The `espresso` workload.
pub fn workload() -> Workload {
    let pack = |data: Vec<i64>, tag: i64| vec![Input::Ints(data), Input::Int(tag)];
    Workload {
        name: "espresso",
        description: "PLA optimizer",
        group: Group::CInteger,
        source: ESPRESSO.to_string(),
        datasets: vec![
            Dataset::new(
                "bca",
                "Dense control PLA",
                pack(gen_pla(301, 10, 90, 220), 1),
            ),
            Dataset::new("cps", "Wide sparse PLA", pack(gen_pla(302, 12, 60, 320), 2)),
            Dataset::new("ti", "Narrow deep PLA", pack(gen_pla(303, 9, 130, 160), 3)),
            Dataset::new(
                "tial",
                "Large mixed PLA",
                pack(gen_pla(304, 12, 140, 300), 4),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use trace_vm::Vm;

    use super::*;

    fn run_pla(data: Vec<i64>) -> Vec<i64> {
        let p = mflang::compile(ESPRESSO).unwrap();
        Vm::new(&p)
            .run(&[Input::Ints(data), Input::Int(0)])
            .unwrap()
            .output_ints()
    }

    #[test]
    fn never_loses_coverage_or_hits_offset() {
        for seed in [301, 302, 303] {
            let out = run_pla(gen_pla(seed, 8, 40, 80));
            assert_eq!(out[4], 0, "seed {seed}: lost ON coverage");
            assert_eq!(out[5], 0, "seed {seed}: OFF-set violated");
        }
    }

    #[test]
    fn minimization_shrinks_literals() {
        // Two mergeable minterms: x&y | x&!y should expand/absorb to x.
        // nvars=2, ON: (11,11)=x&y and (11,01)=x&!y (bit0 = x), OFF: (11,00),(11,10).
        let data = vec![2, 2, 2, 3, 3, 3, 1, 3, 0, 3, 2];
        let out = run_pla(data);
        assert_eq!(out[1], 1, "should minimize to a single cube");
        assert_eq!(out[2], 1, "single literal x");
        assert_eq!(out[4], 0);
        assert_eq!(out[5], 0);
    }

    #[test]
    fn redundant_duplicate_removed() {
        // Same cube twice.
        let data = vec![2, 2, 1, 3, 3, 3, 3, 3, 0];
        let out = run_pla(data);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn datasets_have_disjoint_on_off() {
        for (seed, nv, non, noff) in [(301u64, 10u32, 90usize, 220usize), (303, 9, 130, 160)] {
            let data = gen_pla(seed, nv, non, noff);
            let n_on = data[1] as usize;
            let n_off = data[2] as usize;
            assert!(n_off > 0);
            let on = &data[3..3 + 2 * n_on];
            let off = &data[3 + 2 * n_on..3 + 2 * (n_on + n_off)];
            for o in off.chunks(2) {
                for c in on.chunks(2) {
                    let common = c[0] & o[0];
                    assert!(
                        (c[1] ^ o[1]) & common != 0,
                        "ON cube intersects OFF minterm"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_output() {
        let a = run_pla(gen_pla(55, 8, 30, 60));
        let b = run_pla(gen_pla(55, 8, 30, 60));
        assert_eq!(a, b);
    }
}
