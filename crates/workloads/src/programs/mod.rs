//! Guest programs, one module per Table 2 row (numeric kernels share a
//! module).

pub mod compress;
pub mod doduc;
pub mod eqntott;
pub mod espresso;
pub mod fpppp;
pub mod gcc;
pub mod li;
pub mod mfcom;
pub mod numeric;
pub mod spice;
pub mod spiff;
