//! End-to-end tests: compile guest source and execute it on the VM.

use mflang::{compile, compile_with, CompileOptions, SwitchMode};
use trace_ir::{BranchKind, Terminator};
use trace_vm::{Input, Vm};

fn run_ints(src: &str, inputs: &[Input]) -> Vec<i64> {
    let program = compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    Vm::new(&program)
        .run(inputs)
        .unwrap_or_else(|e| panic!("runtime error: {e}"))
        .output_ints()
}

fn run_floats(src: &str, inputs: &[Input]) -> Vec<f64> {
    let program = compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    Vm::new(&program)
        .run(inputs)
        .unwrap_or_else(|e| panic!("runtime error: {e}"))
        .output_floats()
}

#[test]
fn arithmetic_and_precedence() {
    let out = run_ints(
        "fn main() { emit(1 + 2 * 3); emit((1 + 2) * 3); emit(10 % 4); emit(7 / 2); emit(-3); }",
        &[],
    );
    assert_eq!(out, vec![7, 9, 2, 3, -3]);
}

#[test]
fn float_arithmetic() {
    let out = run_floats(
        "fn main() { emit(1.5 + 2.25); emit(sqrt(16.0)); emit(fmax(1.0, 2.0)); emit(float(7)); }",
        &[],
    );
    assert_eq!(out, vec![3.75, 4.0, 2.0, 7.0]);
}

#[test]
fn conversions() {
    let out = run_ints("fn main() { emit(int(3.9)); emit(int(-3.9)); }", &[]);
    assert_eq!(out, vec![3, -3]);
}

#[test]
fn bitwise_ops() {
    let out = run_ints(
        "fn main() { emit(6 & 3); emit(6 | 3); emit(6 ^ 3); emit(1 << 4); emit(-16 >> 2); emit(~0); }",
        &[],
    );
    assert_eq!(out, vec![2, 7, 5, 16, -4, -1]);
}

#[test]
fn while_loop() {
    let out = run_ints(
        r#"
        fn main(n: int) {
            var i: int = 0;
            var s: int = 0;
            while (i < n) { s = s + i; i = i + 1; }
            emit(s);
        }
        "#,
        &[Input::Int(100)],
    );
    assert_eq!(out, vec![4950]);
}

#[test]
fn for_loop_with_break_continue() {
    let out = run_ints(
        r#"
        fn main() {
            var s: int = 0;
            for (var i: int = 0; i < 100; i = i + 1) {
                if (i % 2 == 1) { continue; }
                if (i >= 10) { break; }
                s = s + i;
            }
            emit(s);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![2 + 4 + 6 + 8]);
}

#[test]
fn do_while_runs_at_least_once() {
    let out = run_ints(
        r#"
        fn main() {
            var n: int = 0;
            do { n = n + 1; } while (0);
            emit(n);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![1]);
}

#[test]
fn nested_loops_break_inner_only() {
    let out = run_ints(
        r#"
        fn main() {
            var count: int = 0;
            for (var i: int = 0; i < 3; i = i + 1) {
                for (var j: int = 0; j < 10; j = j + 1) {
                    if (j == 2) { break; }
                    count = count + 1;
                }
            }
            emit(count);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![6]);
}

#[test]
fn short_circuit_evaluation() {
    // The second operand must not run when the first decides: the guard
    // would divide by zero.
    let out = run_ints(
        r#"
        fn main(d: int) {
            if (d != 0 && 10 / d > 1) { emit(1); } else { emit(0); }
            if (d == 0 || 10 / d > 1) { emit(1); } else { emit(0); }
            emit(d != 0 && d > 100);
            emit(d == 0 || d > 100);
        }
        "#,
        &[Input::Int(0)],
    );
    assert_eq!(out, vec![0, 1, 0, 1]);
}

#[test]
fn logical_not() {
    let out = run_ints(
        "fn main() { emit(!0); emit(!5); if (!(1 == 2)) { emit(7); } }",
        &[],
    );
    assert_eq!(out, vec![1, 0, 7]);
}

#[test]
fn switch_cascade_and_default() {
    let src = r#"
        fn classify(x: int) -> int {
            switch (x) {
                case 0: { return 100; }
                case 1: { return 101; }
                case 5: { return 105; }
                default: { return -1; }
            }
            return -2;
        }
        fn main() {
            emit(classify(0)); emit(classify(1)); emit(classify(5));
            emit(classify(3)); emit(classify(-9));
        }
    "#;
    assert_eq!(run_ints(src, &[]), vec![100, 101, 105, -1, -1]);
    // Same behaviour under jump-table lowering.
    let program = compile_with(
        src,
        &CompileOptions {
            switch_mode: SwitchMode::JumpTable,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let run = Vm::new(&program).run(&[]).unwrap();
    assert_eq!(run.output_ints(), vec![100, 101, 105, -1, -1]);
    // Jump-table mode really used an indirect jump.
    assert!(run.stats.events.indirect_jumps >= 5);
}

#[test]
fn switch_cascade_produces_switch_arm_branches() {
    let src = r#"
        fn main(x: int) {
            switch (x) {
                case 1: { emit(1); }
                case 2: { emit(2); }
            }
        }
    "#;
    let program = compile(src).unwrap();
    let arm_count = program
        .branch_info
        .iter()
        .filter(|b| b.kind == BranchKind::SwitchArm)
        .count();
    assert_eq!(arm_count, 2);
    let run = Vm::new(&program).run(&[Input::Int(2)]).unwrap();
    assert_eq!(run.output_ints(), vec![2]);
    assert_eq!(run.stats.events.indirect_jumps, 0);
}

#[test]
fn arrays_and_strings() {
    let out = run_ints(
        r#"
        fn main() {
            var a: [int] = new_int(5);
            for (var i: int = 0; i < len(a); i = i + 1) { a[i] = i * i; }
            emit(a[4]);
            var s: [int] = "AZ";
            emit(len(s)); emit(s[0]); emit(s[1]);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![16, 2, 65, 90]);
}

#[test]
fn float_arrays() {
    let out = run_floats(
        r#"
        fn main() {
            var a: [float] = new_float(3);
            a[0] = 1.5; a[1] = 2.5; a[2] = 4.0;
            var s: float = 0.0;
            for (var i: int = 0; i < 3; i = i + 1) { s = s + a[i]; }
            emit(s);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![8.0]);
}

#[test]
fn globals_persist_across_calls() {
    let out = run_ints(
        r#"
        global counter: int;
        global table: [int];
        fn bump() { counter = counter + 1; }
        fn main() {
            table = new_int(4);
            bump(); bump(); bump();
            table[0] = counter;
            emit(table[0]);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![3]);
}

#[test]
fn recursion_fibonacci() {
    let out = run_ints(
        r#"
        fn fib(n: int) -> int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { emit(fib(15)); }
        "#,
        &[],
    );
    assert_eq!(out, vec![610]);
}

#[test]
fn indirect_calls_through_fn_values() {
    let src = r#"
        fn double(x: int) -> int { return x * 2; }
        fn square(x: int) -> int { return x * x; }
        fn apply(f: fn(int) -> int, x: int) -> int { return f(x); }
        global op: fn(int) -> int;
        fn main() {
            emit(apply(@double, 10));
            emit(apply(@square, 10));
            op = @double;
            emit(op(7));
        }
    "#;
    let program = compile(src).unwrap();
    let run = Vm::new(&program).run(&[]).unwrap();
    assert_eq!(run.output_ints(), vec![20, 100, 14]);
    assert_eq!(run.stats.events.indirect_calls, 3);
    assert_eq!(run.stats.events.indirect_returns, 3);
}

#[test]
fn select_builtin_uses_select_instruction() {
    let src = "fn main(c: int) { emit(select(c, 10, 20)); }";
    let program = compile(src).unwrap();
    let run = Vm::new(&program).run(&[Input::Int(1)]).unwrap();
    assert_eq!(run.output_ints(), vec![10]);
    assert_eq!(run.stats.events.selects, 1);
    // select produces no conditional branch
    assert_eq!(run.stats.branches.total_executed(), 0);
}

#[test]
fn loop_branches_are_backward_taken() {
    let src = r#"
        fn main(n: int) {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + 1; }
            emit(s);
        }
    "#;
    let program = compile(src).unwrap();
    // Find the LoopBack branch and check its layout is backward.
    let mut found = false;
    for (fi, func) in program.functions.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            if let Terminator::Branch { id, taken, .. } = block.term {
                if program.branch_info[id.index()].kind == BranchKind::LoopBack {
                    found = true;
                    assert!(
                        taken.index() <= bi,
                        "LoopBack branch must be backward-taken"
                    );
                    assert!(program.is_backward_branch(
                        trace_ir::FuncId::from_index(fi),
                        trace_ir::BlockId::from_index(bi)
                    ));
                }
            }
        }
    }
    assert!(found, "no LoopBack branch generated");
    // Dynamic check: backward branch taken n-1 of n times.
    let run = Vm::new(&program).run(&[Input::Int(50)]).unwrap();
    let back = program
        .branch_info
        .iter()
        .position(|b| b.kind == BranchKind::LoopBack)
        .unwrap();
    let (exec, taken) = run.stats.branches.get(trace_ir::BranchId::from_index(back));
    assert_eq!((exec, taken), (50, 49));
}

#[test]
fn else_if_chain() {
    let src = r#"
        fn grade(x: int) -> int {
            if (x >= 90) { return 4; }
            else if (x >= 80) { return 3; }
            else if (x >= 70) { return 2; }
            else { return 0; }
        }
        fn main() { emit(grade(95)); emit(grade(85)); emit(grade(71)); emit(grade(3)); }
    "#;
    assert_eq!(run_ints(src, &[]), vec![4, 3, 2, 0]);
}

#[test]
fn shadowing_in_inner_scopes() {
    let out = run_ints(
        r#"
        fn main() {
            var x: int = 1;
            if (1) { var x: int = 2; emit(x); }
            emit(x);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![2, 1]);
}

#[test]
fn void_function_calls() {
    let out = run_ints(
        r#"
        global journal: [int];
        global pos: int;
        fn push(v: int) { journal[pos] = v; pos = pos + 1; }
        fn main() {
            journal = new_int(8);
            push(5); push(6);
            emit(journal[0]); emit(journal[1]); emit(pos);
        }
        "#,
        &[],
    );
    assert_eq!(out, vec![5, 6, 2]);
}

#[test]
fn string_interning_dedupes() {
    let program =
        compile(r#"fn main() { var a: [int] = "xy"; var b: [int] = "xy"; emit(a[0] + b[1]); }"#)
            .unwrap();
    assert_eq!(program.const_arrays.len(), 1);
}

#[test]
fn compile_errors() {
    let cases: &[(&str, &str)] = &[
        ("fn f() { }", "no `main`"),
        ("fn main() { x = 1; }", "unknown name"),
        ("fn main() { var x: int = 1.0; }", "cannot initialize"),
        ("fn main() { var x: int = 1; x = 2.0; }", "cannot assign"),
        ("fn main() { emit(1 + 2.0); }", "type mismatch"),
        ("fn main() { emit(1.0 % 2.0); }", "not defined"),
        ("fn main() { if (1.5) { } }", "condition must be int"),
        ("fn main() { break; }", "outside of a loop"),
        ("fn main() { continue; }", "outside of a loop"),
        ("fn main() -> int { return; }", "must return a value"),
        ("fn main() { return 3; }", "void function returns"),
        (
            "fn f() -> int { return 1; } fn main() { emit(f(2)); }",
            "expects 0 arguments",
        ),
        ("fn main() { emit(nothere()); }", "unknown function"),
        ("fn main() { emit(len(3)); }", "must be an array"),
        ("fn main() { var x: int = 0; emit(x[0]); }", "not indexable"),
        ("fn emit() { } fn main() { }", "builtin"),
        ("global len: int; fn main() { }", "builtin"),
        ("fn f() { } fn f() { } fn main() { }", "duplicate function"),
        (
            "global g: int; global g: int; fn main() { }",
            "duplicate global",
        ),
        ("fn main(a: int, a: int) { }", "duplicate parameter"),
        ("fn v() { } fn main() { emit(v()); }", "void call"),
        (
            "fn main() { var f: fn(int) = @nosuch; }",
            "unknown function `nosuch` in",
        ),
        ("fn main() { var f: fn(int) = @main; }", "cannot initialize"),
        (
            "fn g(x: int) { } fn main() { var f: fn(float) = @g; }",
            "cannot initialize",
        ),
        ("fn main() { switch (1.0) { } }", "must be int"),
    ];
    for (src, want) in cases {
        let err = compile(src).expect_err(src).to_string();
        assert!(
            err.contains(want),
            "source {src:?}: error {err:?} does not contain {want:?}"
        );
    }
}

#[test]
fn branch_lines_recorded() {
    let src = "fn main(x: int) {\n  if (x > 0) { emit(1); }\n}";
    let program = compile(src).unwrap();
    assert_eq!(program.branch_info.len(), 1);
    assert_eq!(program.branch_info[0].line, 2);
    assert_eq!(program.branch_info[0].kind, BranchKind::If);
}

#[test]
fn and_or_as_values_normalize_to_bool() {
    let out = run_ints(
        "fn main() { emit(5 && 3); emit(0 && 3); emit(0 || 9); emit(0 || 0); }",
        &[],
    );
    assert_eq!(out, vec![1, 0, 1, 0]);
}

#[test]
fn simple_ifs_are_select_converted() {
    // `if (v > m) { m = v; }` is the Trace front ends' select pattern.
    let src = r#"
        fn main(data: [int], n: int) {
            var m: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                var v: int = data[i];
                if (v > m) { m = v; }
            }
            emit(m);
        }
    "#;
    let converted = compile(src).unwrap();
    let run = Vm::new(&converted)
        .run(&[Input::Ints(vec![3, 9, 1, 7]), Input::Int(4)])
        .unwrap();
    assert_eq!(run.output_ints(), vec![9]);
    assert_eq!(run.stats.events.selects, 4, "one select per element");

    // With conversion off, the same source branches instead.
    let plain = compile_with(
        src,
        &CompileOptions {
            if_conversion: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let run2 = Vm::new(&plain)
        .run(&[Input::Ints(vec![3, 9, 1, 7]), Input::Int(4)])
        .unwrap();
    assert_eq!(run2.output_ints(), vec![9]);
    assert_eq!(run2.stats.events.selects, 0);
    assert!(run2.stats.branches.total_executed() > run.stats.branches.total_executed());
}

#[test]
fn if_else_assignments_select_convert() {
    let src = "fn main(x: int) { var r: int = 0; if (x > 5) { r = 1; } else { r = 2; } emit(r); }";
    let p = compile(src).unwrap();
    let run = Vm::new(&p).run(&[Input::Int(9)]).unwrap();
    assert_eq!(run.output_ints(), vec![1]);
    assert_eq!(run.stats.events.selects, 1);
    let run = Vm::new(&p).run(&[Input::Int(1)]).unwrap();
    assert_eq!(run.output_ints(), vec![2]);
}

#[test]
fn trapping_and_impure_ifs_are_not_converted() {
    // Division can trap: must stay a real branch.
    let src = "fn main(x: int) { var r: int = 9; if (x != 0) { r = 10 / x; } emit(r); }";
    let p = compile(src).unwrap();
    let run = Vm::new(&p).run(&[Input::Int(0)]).unwrap();
    assert_eq!(run.output_ints(), vec![9], "guarded divide must not run");
    assert_eq!(run.stats.events.selects, 0);

    // Calls have side effects: must stay a real branch.
    let src2 = r#"
        global hits: int;
        fn bump() -> int { hits = hits + 1; return hits; }
        fn main(x: int) { var r: int = 0; if (x > 0) { r = bump(); } emit(r); emit(hits); }
    "#;
    let p2 = compile(src2).unwrap();
    let run2 = Vm::new(&p2).run(&[Input::Int(-1)]).unwrap();
    assert_eq!(run2.output_ints(), vec![0, 0], "call must not execute");

    // Array loads can trap on bounds: not converted.
    let src3 =
        "fn main(a: [int], i: int) { var r: int = -1; if (i < len(a)) { r = a[i]; } emit(r); }";
    let p3 = compile(src3).unwrap();
    let run3 = Vm::new(&p3)
        .run(&[Input::Ints(vec![5]), Input::Int(3)])
        .unwrap();
    assert_eq!(run3.output_ints(), vec![-1]);
}

#[test]
fn entry_with_array_inputs() {
    let out = run_ints(
        r#"
        fn main(data: [int], n: int) {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + data[i]; }
            emit(s);
        }
        "#,
        &[Input::Ints(vec![10, 20, 30]), Input::Int(3)],
    );
    assert_eq!(out, vec![60]);
}

#[test]
fn fallthrough_returns_zero() {
    let out = run_ints(
        "fn f(x: int) -> int { if (x > 0) { return 9; } } fn main() { emit(f(1)); emit(f(-1)); }",
        &[],
    );
    assert_eq!(out, vec![9, 0]);
}
