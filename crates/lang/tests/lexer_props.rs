//! Property tests for the lexer: constructed token sequences survive a
//! print → lex round trip.

use proptest::prelude::*;

mod support {
    /// A token we can both print and predict the lexing of.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Tok {
        Int(i64),
        Float(u32, u32),
        Ident(String),
        Str(String),
        Op(&'static str),
    }

    impl Tok {
        pub fn print(&self) -> String {
            match self {
                Tok::Int(v) => v.to_string(),
                Tok::Float(w, f) => format!("{w}.{f:03}"),
                Tok::Ident(s) => s.clone(),
                Tok::Str(s) => format!("{s:?}"),
                Tok::Op(s) => (*s).to_string(),
            }
        }
    }
}

use support::Tok;

fn arb_ident() -> impl Strategy<Value = String> {
    // Identifiers that are not keywords: prefix guarantees it.
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("q{s}"))
}

fn arb_tok() -> impl Strategy<Value = Tok> {
    prop_oneof![
        (0i64..1_000_000).prop_map(Tok::Int),
        (0u32..10_000, 0u32..1000).prop_map(|(w, f)| Tok::Float(w, f)),
        arb_ident().prop_map(Tok::Ident),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(Tok::Str),
        prop_oneof![
            Just(Tok::Op("+")),
            Just(Tok::Op("*")),
            Just(Tok::Op("<=")),
            Just(Tok::Op(">=")),
            Just(Tok::Op("==")),
            Just(Tok::Op("!=")),
            Just(Tok::Op("&&")),
            Just(Tok::Op("||")),
            Just(Tok::Op("<<")),
            Just(Tok::Op("->")),
            Just(Tok::Op("(")),
            Just(Tok::Op(")")),
            Just(Tok::Op(";")),
        ],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_lex_roundtrips(toks in prop::collection::vec(arb_tok(), 0..40)) {
        // Join with spaces so adjacent tokens cannot merge, sprinkle in
        // comments and newlines as extra trivia.
        let mut src = String::new();
        for (i, t) in toks.iter().enumerate() {
            src.push_str(&t.print());
            src.push(' ');
            if i % 7 == 3 {
                src.push_str("// trivia\n");
            }
            if i % 11 == 5 {
                src.push_str("/* more\ntrivia */ ");
            }
        }

        // A guest program is not needed: drive the lexer through the
        // public compile path by wrapping in a function only when the
        // tokens happen to form one; here we call the lexer indirectly by
        // checking compile() errors never panic, and directly verify the
        // token count via a sentinel program.
        // The public surface for lexing alone is compile(), so assert the
        // pipeline never panics on arbitrary token soup:
        let _ = mflang::compile(&src);

        // And verify real token identity through a program embedding the
        // integers as emitted constants.
        let ints: Vec<i64> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Int(v) => Some(*v),
                _ => None,
            })
            .collect();
        let mut program = String::from("fn main() {\n");
        for v in &ints {
            program.push_str(&format!("    emit({v});\n"));
        }
        program.push('}');
        let compiled = mflang::compile(&program).expect("emit program compiles");
        let run = trace_vm::Vm::new(&compiled).run(&[]).expect("runs");
        prop_assert_eq!(run.output_ints(), ints);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_compiler(bytes in prop::collection::vec(0u8..128, 0..200)) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = mflang::compile(text); // must return Err, not panic
        }
    }

    #[test]
    fn float_literals_lex_to_their_value(w in 0u32..10_000, f in 0u32..1000) {
        let src = format!("fn main() {{ emit({w}.{f:03}); }}");
        let p = mflang::compile(&src).expect("compiles");
        let out = trace_vm::Vm::new(&p).run(&[]).expect("runs").output_floats();
        let expected = f64::from(w) + f64::from(f) / 1000.0;
        prop_assert!((out[0] - expected).abs() < 1e-9);
    }
}
