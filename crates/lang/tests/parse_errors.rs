//! Error-recovery coverage for the front end: every lexer and parser
//! diagnostic has a concrete input that produces it, diagnostics carry a
//! usable line number, and no input — however mangled — makes `compile`
//! panic instead of returning `Err`.
//!
//! Two lexer diagnostics are defensive and unreachable from `&str` input,
//! so they have no test here: "invalid float literal" (the lexer only
//! builds digit/`.`/exponent shapes, which `f64::from_str` always accepts)
//! and "non-UTF-8 string literal" (string bytes are copied from an already
//! valid UTF-8 source at char boundaries, and all escapes are ASCII).

use mflang::CompileError;

/// Compiles and returns the diagnostic, panicking (with the input) if the
/// front end unexpectedly accepted it.
fn diag(source: &str) -> CompileError {
    match mflang::compile(source) {
        Err(e) => e,
        Ok(_) => panic!("expected a compile error for {source:?}"),
    }
}

/// Asserts `source` fails with a message containing `needle`.
fn expect_msg(source: &str, needle: &str) {
    let e = diag(source);
    assert!(
        e.message.contains(needle),
        "for {source:?}: expected message containing {needle:?}, got {:?}",
        e.message
    );
}

// ---------------------------------------------------------------- lexer --

#[test]
fn lexer_unterminated_block_comment() {
    expect_msg("fn main() { } /* trails off", "unterminated block comment");
}

#[test]
fn lexer_invalid_hex_literal() {
    // `0x` with no digits, and a hex constant past i64::MAX.
    expect_msg("fn main() { emit(0x); }", "invalid hex literal");
    expect_msg(
        "fn main() { emit(0xFFFFFFFFFFFFFFFFF); }",
        "invalid hex literal",
    );
}

#[test]
fn lexer_integer_literal_out_of_range() {
    expect_msg(
        "fn main() { emit(99999999999999999999); }",
        "integer literal out of range",
    );
}

#[test]
fn lexer_invalid_escape_sequence() {
    expect_msg(
        "fn main() { trace(\"bad \\q escape\"); }",
        "invalid escape sequence",
    );
}

#[test]
fn lexer_unterminated_string_literal() {
    // Both at end of input and at a newline.
    expect_msg("fn main() { trace(\"open", "unterminated string literal");
    expect_msg(
        "fn main() { trace(\"open\n\"); }",
        "unterminated string literal",
    );
}

#[test]
fn lexer_empty_char_literal() {
    expect_msg("fn main() { emit(''); }", "empty char literal");
}

#[test]
fn lexer_unterminated_char_literal() {
    expect_msg("fn main() { emit('ab'); }", "unterminated char literal");
    expect_msg("fn main() { emit('a", "unterminated char literal");
}

#[test]
fn lexer_unexpected_character() {
    expect_msg("fn main() { emit($); }", "unexpected character");
    expect_msg("fn main() { emit(1 . 2); }", "unexpected character");
}

// --------------------------------------------------------------- parser --

#[test]
fn parser_expected_punct() {
    // Missing `;` after a statement, missing `)` in a condition.
    expect_msg("fn main() { var x: int = 1 }", "expected `;`");
    expect_msg("fn main() { if (1 { emit(1); } }", "expected `)`");
}

#[test]
fn parser_expected_keyword() {
    // A `do` body must be followed by `while`.
    expect_msg(
        "fn main() { do { emit(1); } until (0); }",
        "expected `while`",
    );
}

#[test]
fn parser_expected_identifier() {
    expect_msg("fn 1() { }", "expected identifier");
    expect_msg("fn main() { var 7: int = 0; }", "expected identifier");
}

#[test]
fn parser_top_level_expects_fn_or_global() {
    expect_msg("xyzzy", "expected `fn` or `global` at top level");
    expect_msg(
        "fn main() { } emit(1);",
        "expected `fn` or `global` at top level",
    );
}

#[test]
fn parser_arrays_of_unsupported_element() {
    expect_msg("fn main() { var x: [[int]] = 0; }", "arrays of");
    expect_msg("global g: [fn()];", "arrays of");
}

#[test]
fn parser_expected_a_type() {
    expect_msg("fn main(x: 5) { }", "expected a type");
    expect_msg("fn main() { var x: while = 0; }", "expected a type");
}

#[test]
fn parser_unexpected_end_of_input_inside_block() {
    expect_msg("fn main() {", "unexpected end of input inside block");
    expect_msg(
        "fn main() { while (1) { emit(1);",
        "unexpected end of input inside block",
    );
}

#[test]
fn parser_expected_integer_case_label() {
    expect_msg(
        "fn main(x: int) { switch (x) { case y: { } } }",
        "expected integer case label",
    );
    expect_msg(
        "fn main(x: int) { switch (x) { case -y: { } } }",
        "expected integer case label",
    );
}

#[test]
fn parser_duplicate_case_label() {
    expect_msg(
        "fn main(x: int) { switch (x) { case 1: { } case 1: { } } }",
        "duplicate case label 1",
    );
    // Negative labels normalize before the duplicate check.
    expect_msg(
        "fn main(x: int) { switch (x) { case -2: { } case -2: { } } }",
        "duplicate case label -2",
    );
}

#[test]
fn parser_duplicate_default_arm() {
    expect_msg(
        "fn main(x: int) { switch (x) { default: { } default: { } } }",
        "duplicate default arm",
    );
}

#[test]
fn parser_switch_body_expects_case_or_default() {
    expect_msg(
        "fn main(x: int) { switch (x) { what: { } } }",
        "expected `case` or `default`",
    );
}

#[test]
fn parser_bad_assignment_target() {
    expect_msg(
        "fn main() { (1 + 2) = 3; }",
        "assignment target must be a variable or element",
    );
}

#[test]
fn parser_expected_an_expression() {
    expect_msg("fn main() { emit(1 + ); }", "expected an expression");
    expect_msg("fn main() { emit(;); }", "expected an expression");
}

// ----------------------------------------------------------- line numbers --

#[test]
fn diagnostics_carry_the_offending_line() {
    let e = diag("fn main() {\n    var x: int = 1;\n    var y: int = ;\n}");
    assert_eq!(e.line, 3, "error should point at line 3, got: {e}");
    assert!(e.to_string().starts_with("line 3:"));
}

// ------------------------------------------------------------- no panics --

/// Deterministic byte mangling over a set of valid seed programs: every
/// mutant must produce `Ok` or `Err`, never a panic. This is the cheap
/// in-tree cousin of the mffuzz compile-panic oracle.
#[test]
fn mangled_sources_never_panic_the_front_end() {
    const SEEDS: &[&str] = &[
        "fn main(a: int, b: int) { if (a < b) { emit(a); } else { emit(b); } }",
        "fn main(n: int) { var i: int = 0; while (i < n) { i = i + 1; } emit(i); }",
        "fn main(x: int) { switch (x % 3) { case 0: { emit(0); } case -1: { emit(1); } \
         default: { emit(2); } } }",
        "global g: int = 4; fn main() { for (var i: int = 0; i < g; i = i + 1) { emit(i); } }",
        "fn helper(v: float) -> float { return v * 2.5; } fn main() { emitf(helper(1.25e2)); }",
        "fn main() { var s: [int] = array(3); s[0] = 0x10; emit(s[0] >> 1); trace(\"t\\n\"); }",
    ];
    // SplitMix64: a fixed stream so failures replay exactly.
    let mut state: u64 = 0x5EED_CAFE;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut checked = 0usize;
    for round in 0..400 {
        let seed = SEEDS[round % SEEDS.len()];
        let mut bytes = seed.as_bytes().to_vec();
        for _ in 0..(1 + next() % 4) {
            let at = (next() as usize) % bytes.len();
            match next() % 4 {
                0 => bytes[at] = (next() % 256) as u8,
                1 => {
                    bytes.remove(at);
                }
                2 => bytes.insert(at, b"(){};\"'$%0x."[(next() as usize) % 12]),
                3 => bytes.truncate(at.max(1)),
                _ => unreachable!(),
            }
            if bytes.is_empty() {
                bytes.push(b' ');
            }
        }
        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = std::panic::catch_unwind(|| mflang::compile(&mangled).map(drop));
        assert!(
            outcome.is_ok(),
            "front end panicked on mangled input (round {round}): {mangled:?}"
        );
        checked += 1;
    }
    assert_eq!(checked, 400);
}
