//! Compile-time errors.

use std::error::Error;
use std::fmt;

use trace_ir::ValidateError;

/// A lexical, syntactic, or semantic error, with the source line it occurred
/// on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 when no location applies).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for CompileError {}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> Self {
        CompileError::new(0, format!("internal: generated invalid IR: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CompileError::new(7, "unexpected token");
        assert_eq!(e.to_string(), "line 7: unexpected token");
        let e0 = CompileError::new(0, "no entry function");
        assert_eq!(e0.to_string(), "no entry function");
    }
}
