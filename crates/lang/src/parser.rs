//! Recursive-descent parser.

use crate::ast::{BinaryOp, Expr, ExprKind, Item, LValue, Param, Stmt, StmtKind, Type, UnaryOp};
use crate::error::CompileError;
use crate::token::{Punct, Token, TokenKind};

/// Parses a token stream into top-level items.
///
/// # Errors
///
/// Returns a [`CompileError`] at the offending token.
pub fn parse(tokens: Vec<Token>) -> Result<Vec<Item>, CompileError> {
    Parser { tokens, pos: 0 }.items()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if !matches!(t, TokenKind::Eof) {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), CompileError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.peek() {
            TokenKind::Ident(s) if !is_reserved(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn items(&mut self) -> Result<Vec<Item>, CompileError> {
        let mut items = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.is_keyword("global") {
                items.push(self.global()?);
            } else if self.is_keyword("fn") {
                items.push(self.function()?);
            } else {
                return Err(self.error(format!(
                    "expected `fn` or `global` at top level, found {}",
                    self.peek()
                )));
            }
        }
        Ok(items)
    }

    fn global(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        self.expect_keyword("global")?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::Colon)?;
        let ty = self.parse_type()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Item::Global { name, ty, line })
    }

    fn function(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        self.expect_keyword("fn")?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let pname = self.expect_ident()?;
                self.expect_punct(Punct::Colon)?;
                let ty = self.parse_type()?;
                params.push(Param { name: pname, ty });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        let ret = if self.eat_punct(Punct::Arrow) {
            Some(self.parse_type()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Item::Function {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn parse_type(&mut self) -> Result<Type, CompileError> {
        if self.eat_punct(Punct::LBracket) {
            let elem = self.parse_type()?;
            self.expect_punct(Punct::RBracket)?;
            return match elem {
                Type::Int => Ok(Type::IntArray),
                Type::Float => Ok(Type::FloatArray),
                other => Err(self.error(format!("arrays of {other} are not supported"))),
            };
        }
        if self.eat_keyword("int") {
            return Ok(Type::Int);
        }
        if self.eat_keyword("float") {
            return Ok(Type::Float);
        }
        if self.eat_keyword("fn") {
            self.expect_punct(Punct::LParen)?;
            let mut params = Vec::new();
            if !self.eat_punct(Punct::RParen) {
                loop {
                    params.push(self.parse_type()?);
                    if self.eat_punct(Punct::RParen) {
                        break;
                    }
                    self.expect_punct(Punct::Comma)?;
                }
            }
            let ret = if self.eat_punct(Punct::Arrow) {
                Some(Box::new(self.parse_type()?))
            } else {
                None
            };
            return Ok(Type::FnRef { params, ret });
        }
        Err(self.error(format!("expected a type, found {}", self.peek())))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let kind = if self.is_keyword("var") {
            let s = self.simple_stmt()?;
            self.expect_punct(Punct::Semi)?;
            s
        } else if self.eat_keyword("if") {
            self.if_tail()?
        } else if self.eat_keyword("while") {
            self.expect_punct(Punct::LParen)?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            let body = self.block()?;
            StmtKind::While { cond, body }
        } else if self.eat_keyword("do") {
            let body = self.block()?;
            self.expect_keyword("while")?;
            self.expect_punct(Punct::LParen)?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::Semi)?;
            StmtKind::DoWhile { body, cond }
        } else if self.eat_keyword("for") {
            self.expect_punct(Punct::LParen)?;
            let init = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                None
            } else {
                let l = self.line();
                Some(Box::new(Stmt {
                    kind: self.simple_stmt()?,
                    line: l,
                }))
            };
            self.expect_punct(Punct::Semi)?;
            let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::Semi)?;
            let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                None
            } else {
                let l = self.line();
                Some(Box::new(Stmt {
                    kind: self.simple_stmt()?,
                    line: l,
                }))
            };
            self.expect_punct(Punct::RParen)?;
            let body = self.block()?;
            StmtKind::For {
                init,
                cond,
                step,
                body,
            }
        } else if self.eat_keyword("switch") {
            self.expect_punct(Punct::LParen)?;
            let scrutinee = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::LBrace)?;
            let mut cases = Vec::new();
            let mut default = Vec::new();
            let mut saw_default = false;
            while !self.eat_punct(Punct::RBrace) {
                if self.eat_keyword("case") {
                    let value = match self.bump() {
                        TokenKind::Int(v) => v,
                        TokenKind::Punct(Punct::Minus) => match self.bump() {
                            TokenKind::Int(v) => -v,
                            other => {
                                return Err(CompileError::new(
                                    line,
                                    format!("expected integer case label, found {other}"),
                                ))
                            }
                        },
                        other => {
                            return Err(CompileError::new(
                                line,
                                format!("expected integer case label, found {other}"),
                            ))
                        }
                    };
                    if cases.iter().any(|(v, _)| *v == value) {
                        return Err(self.error(format!("duplicate case label {value}")));
                    }
                    self.expect_punct(Punct::Colon)?;
                    cases.push((value, self.block()?));
                } else if self.eat_keyword("default") {
                    if saw_default {
                        return Err(self.error("duplicate default arm"));
                    }
                    saw_default = true;
                    self.expect_punct(Punct::Colon)?;
                    default = self.block()?;
                } else {
                    return Err(self.error(format!(
                        "expected `case` or `default`, found {}",
                        self.peek()
                    )));
                }
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            }
        } else if self.eat_keyword("break") {
            self.expect_punct(Punct::Semi)?;
            StmtKind::Break
        } else if self.eat_keyword("continue") {
            self.expect_punct(Punct::Semi)?;
            StmtKind::Continue
        } else if self.eat_keyword("return") {
            let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::Semi)?;
            StmtKind::Return(value)
        } else {
            let s = self.simple_stmt()?;
            self.expect_punct(Punct::Semi)?;
            s
        };
        Ok(Stmt { kind, line })
    }

    /// `else`-chain tail after the `if` keyword has been consumed.
    fn if_tail(&mut self) -> Result<StmtKind, CompileError> {
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat_keyword("else") {
            if self.eat_keyword("if") {
                let line = self.line();
                vec![Stmt {
                    kind: self.if_tail()?,
                    line,
                }]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(StmtKind::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// A `var` declaration, assignment, or expression statement — the forms
    /// allowed in `for` headers. Does not consume the trailing `;`.
    fn simple_stmt(&mut self) -> Result<StmtKind, CompileError> {
        if self.eat_keyword("var") {
            let name = self.expect_ident()?;
            self.expect_punct(Punct::Colon)?;
            let ty = self.parse_type()?;
            self.expect_punct(Punct::Assign)?;
            let init = self.expr()?;
            return Ok(StmtKind::Var { name, ty, init });
        }
        // Could be an assignment (`x = …`, `x[i] = …`) or an expression
        // statement (a call). Parse an expression and look for `=`.
        let e = self.expr()?;
        if self.eat_punct(Punct::Assign) {
            let target = match e.kind {
                ExprKind::Name(n) => LValue::Name(n),
                ExprKind::Index { base, index } => match base.kind {
                    ExprKind::Name(n) => LValue::Index {
                        base: n,
                        index: *index,
                    },
                    _ => {
                        return Err(CompileError::new(
                            e.line,
                            "assignment target must be a variable or element",
                        ))
                    }
                },
                _ => {
                    return Err(CompileError::new(
                        e.line,
                        "assignment target must be a variable or element",
                    ))
                }
            };
            let value = self.expr()?;
            return Ok(StmtKind::Assign { target, value });
        }
        Ok(StmtKind::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_level: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, level)) = self.peek_binary_op() {
            if level < min_level {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        Ok(lhs)
    }

    fn peek_binary_op(&self) -> Option<(BinaryOp, u8)> {
        let TokenKind::Punct(p) = self.peek() else {
            return None;
        };
        // Levels follow C: higher binds tighter. All binary operators are
        // left-associative (binary_expr recurses at level + 1).
        Some(match p {
            Punct::OrOr => (BinaryOp::Or, 0),
            Punct::AndAnd => (BinaryOp::And, 1),
            Punct::Pipe => (BinaryOp::BitOr, 2),
            Punct::Caret => (BinaryOp::BitXor, 3),
            Punct::Amp => (BinaryOp::BitAnd, 4),
            Punct::EqEq => (BinaryOp::Eq, 5),
            Punct::NotEq => (BinaryOp::Ne, 5),
            Punct::Lt => (BinaryOp::Lt, 6),
            Punct::Le => (BinaryOp::Le, 6),
            Punct::Gt => (BinaryOp::Gt, 6),
            Punct::Ge => (BinaryOp::Ge, 6),
            Punct::Shl => (BinaryOp::Shl, 7),
            Punct::Shr => (BinaryOp::Shr, 7),
            Punct::Plus => (BinaryOp::Add, 8),
            Punct::Minus => (BinaryOp::Sub, 8),
            Punct::Star => (BinaryOp::Mul, 9),
            Punct::Slash => (BinaryOp::Div, 9),
            Punct::Percent => (BinaryOp::Rem, 9),
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                line,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let line = self.line();
                let index = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                e = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                    line,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr {
                kind: ExprKind::Int(v),
                line,
            }),
            TokenKind::Float(v) => Ok(Expr {
                kind: ExprKind::Float(v),
                line,
            }),
            TokenKind::Str(s) => Ok(Expr {
                kind: ExprKind::Str(s),
                line,
            }),
            TokenKind::Punct(Punct::At) => {
                let name = self.expect_ident()?;
                Ok(Expr {
                    kind: ExprKind::FuncRef(name),
                    line,
                })
            }
            TokenKind::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            // `int(…)` and `float(…)` are the conversion builtins; the type
            // keywords are callable but not usable as bare names.
            TokenKind::Ident(name)
                if !is_reserved(&name)
                    || ((name == "int" || name == "float")
                        && *self.peek() == TokenKind::Punct(Punct::LParen)) =>
            {
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr {
                        kind: ExprKind::Call { callee: name, args },
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Name(name),
                        line,
                    })
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

fn is_reserved(s: &str) -> bool {
    matches!(
        s,
        "fn" | "global"
            | "var"
            | "if"
            | "else"
            | "while"
            | "do"
            | "for"
            | "switch"
            | "case"
            | "default"
            | "break"
            | "continue"
            | "return"
            | "int"
            | "float"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Vec<Item>, CompileError> {
        parse(lex(src).unwrap())
    }

    #[test]
    fn parses_function_and_global() {
        let items = parse_src("global tab: [int];\n fn main(n: int) -> int { return n; }").unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(&items[0], Item::Global { name, ty, .. }
            if name == "tab" && *ty == Type::IntArray));
        match &items[1] {
            Item::Function {
                name, params, ret, ..
            } => {
                assert_eq!(name, "main");
                assert_eq!(params.len(), 1);
                assert_eq!(*ret, Some(Type::Int));
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn precedence_is_c_like() {
        let items = parse_src("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        let Item::Function { body, .. } = &items[0] else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &body[0].kind else {
            panic!()
        };
        // (1 + (2 * 3))
        let ExprKind::Binary { op, rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            &rhs.kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn left_associativity() {
        let items = parse_src("fn f() -> int { return 10 - 3 - 2; }").unwrap();
        let Item::Function { body, .. } = &items[0] else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &body[0].kind else {
            panic!()
        };
        // ((10 - 3) - 2)
        let ExprKind::Binary { op, lhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Sub);
        assert!(matches!(
            &lhs.kind,
            ExprKind::Binary {
                op: BinaryOp::Sub,
                ..
            }
        ));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            fn f(n: int) {
                var i: int = 0;
                while (i < n) { i = i + 1; }
                do { i = i - 1; } while (i > 0);
                for (i = 0; i < 5; i = i + 1) { continue; }
                if (i == 0) { return; } else if (i == 1) { emit(i); } else { break; }
                switch (i) {
                    case 0: { emit(0); }
                    case -1: { emit(1); }
                    default: { emit(2); }
                }
            }
        "#;
        let items = parse_src(src).unwrap();
        let Item::Function { body, .. } = &items[0] else {
            panic!()
        };
        assert_eq!(body.len(), 6);
        assert!(matches!(body[5].kind, StmtKind::Switch { ref cases, .. } if cases.len() == 2));
    }

    #[test]
    fn else_if_chains_nest() {
        let src = "fn f(x: int) { if (x == 0) { } else if (x == 1) { } else { } }";
        let items = parse_src(src).unwrap();
        let Item::Function { body, .. } = &items[0] else {
            panic!()
        };
        let StmtKind::If { else_body, .. } = &body[0].kind else {
            panic!()
        };
        assert_eq!(else_body.len(), 1);
        assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn fn_types_parse() {
        let items = parse_src("fn f(cb: fn(int, float) -> int, g: fn()) { }").unwrap();
        let Item::Function { params, .. } = &items[0] else {
            panic!()
        };
        assert_eq!(
            params[0].ty,
            Type::FnRef {
                params: vec![Type::Int, Type::Float],
                ret: Some(Box::new(Type::Int)),
            }
        );
        assert_eq!(
            params[1].ty,
            Type::FnRef {
                params: vec![],
                ret: None,
            }
        );
    }

    #[test]
    fn func_ref_and_index() {
        let items = parse_src("fn f(a: [int]) -> int { return a[a[0]] + 1; }").unwrap();
        assert_eq!(items.len(), 1);
        let items = parse_src("fn g() { } fn f() { var h: fn() = @g; h(); }");
        // `h(…)` parses as a call with callee name `h`.
        assert!(items.is_ok());
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_src("fn f( { }").is_err());
        assert!(parse_src("fn f() { var x int = 1; }").is_err());
        assert!(parse_src("fn f() { 1 + ; }").is_err());
        assert!(parse_src("fn f() { if 1 { } }").is_err());
        assert!(parse_src("xyzzy").is_err());
        assert!(parse_src("fn f() { switch (1) { what: {} } }").is_err());
        assert!(parse_src("fn f() { (1 + 2) = 3; }").is_err());
        assert!(parse_src("fn f() {").is_err());
        assert!(parse_src("fn f() { x = 1 }").is_err());
        assert!(parse_src("global g: [fn()];").is_err());
    }

    #[test]
    fn rejects_duplicate_case_labels() {
        assert!(parse_src("fn f(x: int) { switch (x) { case 1: { } case 1: { } } }").is_err());
        assert!(parse_src("fn f(x: int) { switch (x) { default: { } default: { } } }").is_err());
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert!(parse_src("fn while() { }").is_err());
        assert!(parse_src("fn f() { var if: int = 1; }").is_err());
    }
}
