//! The lexer.

use crate::error::CompileError;
use crate::token::{Punct, Token, TokenKind};

/// Lexes `source` into a token stream ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals, unterminated comments or
/// strings, and unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                });
                return Ok(tokens);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'"' => self.string()?,
                b'\'' => self.char_literal()?,
                _ => self.punct()?,
            };
            tokens.push(Token { kind, line });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(c), _) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                (Some(b'/'), Some(b'/')) => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        let line = self.line;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.bytes[hex_start..self.pos]).expect("ascii");
            return i64::from_str_radix(text, 16)
                .map(TokenKind::Int)
                .map_err(|_| CompileError::new(line, "invalid hex literal"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.bytes.get(ahead), Some(b'+') | Some(b'-')) {
                ahead += 1;
            }
            if matches!(self.bytes.get(ahead), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| CompileError::new(line, "invalid float literal"))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| CompileError::new(line, "integer literal out of range"))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        TokenKind::Ident(text.to_string())
    }

    fn escape(&mut self, line: u32) -> Result<u8, CompileError> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b'\\') => Ok(b'\\'),
            Some(b'\'') => Ok(b'\''),
            Some(b'"') => Ok(b'"'),
            _ => Err(CompileError::new(line, "invalid escape sequence")),
        }
    }

    fn string(&mut self) -> Result<TokenKind, CompileError> {
        let line = self.line;
        self.bump(); // opening quote
        let mut out = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => out.push(self.escape(line)?),
                Some(b'\n') | None => {
                    return Err(CompileError::new(line, "unterminated string literal"))
                }
                Some(c) => out.push(c),
            }
        }
        Ok(TokenKind::Str(String::from_utf8(out).map_err(|_| {
            CompileError::new(line, "non-UTF-8 string literal")
        })?))
    }

    fn char_literal(&mut self) -> Result<TokenKind, CompileError> {
        let line = self.line;
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => self.escape(line)?,
            Some(b'\'') | None => return Err(CompileError::new(line, "empty char literal")),
            Some(c) => c,
        };
        if self.bump() != Some(b'\'') {
            return Err(CompileError::new(line, "unterminated char literal"));
        }
        Ok(TokenKind::Int(i64::from(c)))
    }

    fn punct(&mut self) -> Result<TokenKind, CompileError> {
        let line = self.line;
        let c = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Self, next: u8, a: Punct, b: Punct| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                a
            } else {
                b
            }
        };
        let p = match c {
            b'(' => Punct::LParen,
            b')' => Punct::RParen,
            b'{' => Punct::LBrace,
            b'}' => Punct::RBrace,
            b'[' => Punct::LBracket,
            b']' => Punct::RBracket,
            b',' => Punct::Comma,
            b';' => Punct::Semi,
            b':' => Punct::Colon,
            b'+' => Punct::Plus,
            b'*' => Punct::Star,
            b'/' => Punct::Slash,
            b'%' => Punct::Percent,
            b'^' => Punct::Caret,
            b'~' => Punct::Tilde,
            b'@' => Punct::At,
            b'-' => two(self, b'>', Punct::Arrow, Punct::Minus),
            b'=' => two(self, b'=', Punct::EqEq, Punct::Assign),
            b'!' => two(self, b'=', Punct::NotEq, Punct::Bang),
            b'&' => two(self, b'&', Punct::AndAnd, Punct::Amp),
            b'|' => two(self, b'|', Punct::OrOr, Punct::Pipe),
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Punct::Le
                } else if self.peek() == Some(b'<') {
                    self.bump();
                    Punct::Shl
                } else {
                    Punct::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Punct::Ge
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    Punct::Shr
                } else {
                    Punct::Gt
                }
            }
            other => {
                return Err(CompileError::new(
                    line,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("fn main() -> int { return 42; }");
        assert_eq!(k[0], TokenKind::Ident("fn".to_string()));
        assert_eq!(k[1], TokenKind::Ident("main".to_string()));
        assert_eq!(k[2], TokenKind::Punct(Punct::LParen));
        assert_eq!(k[4], TokenKind::Punct(Punct::Arrow));
        assert!(k.contains(&TokenKind::Int(42)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(kinds("123")[0], TokenKind::Int(123));
        assert_eq!(kinds("0x1F")[0], TokenKind::Int(31));
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("2e3")[0], TokenKind::Float(2000.0));
        assert_eq!(kinds("1.5e-2")[0], TokenKind::Float(0.015));
    }

    #[test]
    fn dot_requires_digit() {
        // `1.foo` is not a float; we don't have member access so the dot is
        // an error, but `1 . 2` style tokens must not merge.
        assert!(lex("1.x").is_err());
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(kinds("'a'")[0], TokenKind::Int(97));
        assert_eq!(kinds("'\\n'")[0], TokenKind::Int(10));
        assert_eq!(kinds("'\\0'")[0], TokenKind::Int(0));
        assert_eq!(
            kinds("\"hi\\tthere\"")[0],
            TokenKind::Str("hi\tthere".to_string())
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("// one\n/* two\nthree */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".to_string()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn compound_operators() {
        let k = kinds("<= >= == != && || << >> -> < >");
        use Punct::*;
        let expect = [Le, Ge, EqEq, NotEq, AndAnd, OrOr, Shl, Shr, Arrow, Lt, Gt];
        for (i, p) in expect.iter().enumerate() {
            assert_eq!(k[i], TokenKind::Punct(*p), "at {i}");
        }
    }

    #[test]
    fn errors_carry_line() {
        let err = lex("x\n$").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("\"abc").is_err());
        assert!(lex("/* nope").is_err());
        assert!(lex("''").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
