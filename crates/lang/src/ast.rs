//! Abstract syntax tree.

use std::fmt;

/// A guest-language type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer (also the boolean type).
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Array of integers.
    IntArray,
    /// Array of floats.
    FloatArray,
    /// A typed function reference: parameter types and optional return type.
    FnRef {
        /// Parameter types.
        params: Vec<Type>,
        /// Return type, or `None` for a void function.
        ret: Option<Box<Type>>,
    },
}

impl Type {
    /// True for `int` and `float`.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }

    /// The element type of an array type.
    pub fn element(&self) -> Option<Type> {
        match self {
            Type::IntArray => Some(Type::Int),
            Type::FloatArray => Some(Type::Float),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::IntArray => write!(f, "[int]"),
            Type::FloatArray => write!(f, "[float]"),
            Type::FnRef { params, ret } => {
                write!(f, "fn(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")?;
                if let Some(r) = ret {
                    write!(f, " -> {r}")?;
                }
                Ok(())
            }
        }
    }
}

/// Binary operators at the source level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field/variant names mirror the construct itself
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// Unary operators at the source level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation (`-`).
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise complement (`~`).
    BitNot,
}

/// An expression with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The expression's payload.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (becomes an interned read-only `[int]`).
    Str(String),
    /// Variable or global reference.
    Name(String),
    /// `@func` — a function reference.
    FuncRef(String),
    /// `a[i]`.
    Index {
        /// The array expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Binary operation (including short-circuit `&&`/`||`).
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// A call: direct (`f(x)`), indirect (variable of `fn` type), or a
    /// builtin (`len`, `emit`, `sqrt`, …) — resolved during lowering.
    Call {
        /// Callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

/// An assignment target.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A variable or global.
    Name(String),
    /// An array element.
    Index {
        /// The array (variable or global name).
        base: String,
        /// The index expression.
        index: Expr,
    },
}

/// A statement with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// The statement's payload.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// `var name: ty = init;`
    Var {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer.
        init: Expr,
    },
    /// `lvalue = value;`
    Assign {
        /// The target.
        target: LValue,
        /// The value.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// The condition (must be `int`).
        cond: Expr,
        /// The then-branch.
        then_body: Vec<Stmt>,
        /// The else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `do { … } while (cond);`
    DoWhile {
        /// The loop body.
        body: Vec<Stmt>,
        /// The loop condition, tested after each iteration.
        cond: Expr,
    },
    /// `for (init; cond; step) { … }`
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (missing = always true).
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `switch (scrutinee) { case N: { … } … default: { … } }`
    Switch {
        /// The value switched on (must be `int`).
        scrutinee: Expr,
        /// `(value, body)` per case arm; no fallthrough.
        cases: Vec<(i64, Vec<Stmt>)>,
        /// The default arm (possibly empty).
        default: Vec<Stmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` / `return expr;`
    Return(Option<Expr>),
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `global name: ty;`
    Global {
        /// Global name.
        name: String,
        /// Declared type.
        ty: Type,
        /// 1-based source line.
        line: u32,
    },
    /// `fn name(params) -> ret { body }`
    Function {
        /// Function name.
        name: String,
        /// Parameters.
        params: Vec<Param>,
        /// Return type, or `None` for void.
        ret: Option<Type>,
        /// Body statements.
        body: Vec<Stmt>,
        /// 1-based source line.
        line: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::FloatArray.to_string(), "[float]");
        let f = Type::FnRef {
            params: vec![Type::Int, Type::Float],
            ret: Some(Box::new(Type::Int)),
        };
        assert_eq!(f.to_string(), "fn(int, float) -> int");
        let v = Type::FnRef {
            params: vec![],
            ret: None,
        };
        assert_eq!(v.to_string(), "fn()");
    }

    #[test]
    fn type_helpers() {
        assert!(Type::Int.is_scalar());
        assert!(!Type::IntArray.is_scalar());
        assert_eq!(Type::IntArray.element(), Some(Type::Int));
        assert_eq!(Type::FloatArray.element(), Some(Type::Float));
        assert_eq!(Type::Int.element(), None);
    }
}
