//! Token definitions.

use std::fmt;

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The kinds of token the lexer produces.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal (decimal, hex, or char).
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (already unescaped).
    Str(String),
    /// A punctuation or operator token.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Punctuation and operator tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field/variant names mirror the construct itself
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    At,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Comma => ",",
            Punct::Semi => ";",
            Punct::Colon => ":",
            Punct::Arrow => "->",
            Punct::Assign => "=",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::EqEq => "==",
            Punct::NotEq => "!=",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Bang => "!",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::At => "@",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer literal {v}"),
            TokenKind::Float(v) => write!(f, "float literal {v}"),
            TokenKind::Str(s) => write!(f, "string literal {s:?}"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
