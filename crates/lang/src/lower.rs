//! Type checking and lowering to `trace-ir`.
//!
//! Lowering fixes the branch-count characteristics the experiments measure:
//!
//! * every comparison is a separate compare instruction feeding a
//!   conditional branch (the classic RISC cmp+branch pair);
//! * `&&`/`||` produce real short-circuit branches;
//! * loops are rotated: a guard branch at entry (kind `If`) plus a
//!   bottom-of-loop back-edge branch (kind `LoopBack`, taken = iterate) —
//!   the layout the backward-taken heuristic predictor keys on;
//! * `switch` lowers to cascaded conditional branches (one `SwitchArm`
//!   branch per case) exactly as the Multiflow compiler did for the paper,
//!   or to a branch-target table (an indirect jump) under
//!   [`SwitchMode::JumpTable`].

use std::collections::HashMap;

use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
use trace_ir::{BinOp, BlockId, BranchKind, FuncId, GlobalId, Program, Reg, UnOp};

use crate::ast::{BinaryOp, Expr, ExprKind, Item, LValue, Stmt, StmtKind, Type, UnaryOp};
use crate::error::CompileError;

/// How `switch` statements are lowered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SwitchMode {
    /// Cascaded conditional branches, one per case (the paper's choice: the
    /// predictability of each arm then shows up in the branch statistics).
    #[default]
    Cascade,
    /// A branch-target table: a single indirect jump, counted as an
    /// unavoidable break in control. Falls back to cascade when the case
    /// values span more than 1024 slots.
    JumpTable,
}

/// Compilation options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// `switch` lowering strategy.
    pub switch_mode: SwitchMode,
    /// Convert simple `if` statements into `select` instructions, as the
    /// Trace front ends did (the paper left this on and reports selects at
    /// 0.2–0.7% of executed instructions). Applies only when the branches
    /// are single scalar assignments whose right-hand sides cannot trap and
    /// have no side effects.
    pub if_conversion: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            switch_mode: SwitchMode::default(),
            if_conversion: true,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
struct FnSig {
    params: Vec<Type>,
    ret: Option<Type>,
}

/// Lowers parsed items to a validated program. The entry function must be
/// named `main`.
///
/// # Errors
///
/// Returns a [`CompileError`] for semantic errors (unknown names, type
/// mismatches, bad arity, missing `main`, …).
pub fn lower(items: &[Item], options: &CompileOptions) -> Result<Program, CompileError> {
    let mut pb = ProgramBuilder::new();
    let mut globals: HashMap<String, (GlobalId, Type)> = HashMap::new();
    let mut funcs: HashMap<String, (FuncId, FnSig)> = HashMap::new();

    // Pass 1: collect globals and function signatures.
    for item in items {
        match item {
            Item::Global { name, ty, line } => {
                if is_builtin(name) {
                    return Err(CompileError::new(
                        *line,
                        format!("`{name}` is a builtin and cannot be redefined"),
                    ));
                }
                if globals.contains_key(name) {
                    return Err(CompileError::new(
                        *line,
                        format!("duplicate global `{name}`"),
                    ));
                }
                let id = pb.add_global(name.clone());
                globals.insert(name.clone(), (id, ty.clone()));
            }
            Item::Function {
                name,
                params,
                ret,
                line,
                ..
            } => {
                if is_builtin(name) {
                    return Err(CompileError::new(
                        *line,
                        format!("`{name}` is a builtin and cannot be redefined"),
                    ));
                }
                if funcs.contains_key(name) {
                    return Err(CompileError::new(
                        *line,
                        format!("duplicate function `{name}`"),
                    ));
                }
                let id = pb.declare_function(name.clone());
                funcs.insert(
                    name.clone(),
                    (
                        id,
                        FnSig {
                            params: params.iter().map(|p| p.ty.clone()).collect(),
                            ret: ret.clone(),
                        },
                    ),
                );
            }
        }
    }

    if !funcs.contains_key("main") {
        return Err(CompileError::new(0, "no `main` function defined"));
    }

    // Pass 2: lower each function body.
    for item in items {
        let Item::Function {
            name,
            params,
            ret,
            body,
            line,
        } = item
        else {
            continue;
        };
        let mut fb = FunctionBuilder::new(name.clone(), params.len() as u32);
        let mut lowerer = Lowerer {
            pb: &mut pb,
            fb: &mut fb,
            globals: &globals,
            funcs: &funcs,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            ret: ret.clone(),
            options: *options,
        };
        for (i, p) in params.iter().enumerate() {
            if lowerer.scopes[0].contains_key(&p.name) {
                return Err(CompileError::new(
                    *line,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
            lowerer.scopes[0].insert(p.name.clone(), (Reg(i as u32), p.ty.clone()));
        }
        lowerer.lower_body(body)?;
        let (id, _) = &funcs[name];
        pb.define_function(*id, fb.finish());
    }

    Ok(pb.finish("main")?)
}

fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "len"
            | "new_int"
            | "new_float"
            | "emit"
            | "int"
            | "float"
            | "sqrt"
            | "sin"
            | "cos"
            | "exp"
            | "log"
            | "floor"
            | "iabs"
            | "fabs"
            | "fmin"
            | "fmax"
            | "select"
    )
}

struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

struct Lowerer<'a> {
    pb: &'a mut ProgramBuilder,
    fb: &'a mut FunctionBuilder,
    globals: &'a HashMap<String, (GlobalId, Type)>,
    funcs: &'a HashMap<String, (FuncId, FnSig)>,
    scopes: Vec<HashMap<String, (Reg, Type)>>,
    loops: Vec<LoopCtx>,
    ret: Option<Type>,
    options: CompileOptions,
}

impl<'a> Lowerer<'a> {
    fn lower_body(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.lower_stmts(body)?;
        // Implicit return at the end of the function: void functions return
        // nothing; value functions return zero of their type (reachable only
        // when control falls off the end).
        if !self.fb.current_terminated() {
            match &self.ret {
                None => self.fb.ret(None),
                Some(Type::Float) => {
                    let z = self.fb.const_float(0.0);
                    self.fb.ret(Some(z));
                }
                Some(_) => {
                    let z = self.fb.const_int(0);
                    self.fb.ret(Some(z));
                }
            }
        }
        Ok(())
    }

    fn lookup_var(&self, name: &str) -> Option<(Reg, Type)> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        let result = stmts.iter().try_for_each(|s| self.lower_stmt(s));
        self.scopes.pop();
        result
    }

    /// After a `return`/`break`/`continue`, subsequent statements in the
    /// same source block are unreachable; give them a fresh block so the
    /// builder's one-terminator invariant holds. The block is terminated by
    /// the implicit function-end return or a later jump and simply never
    /// executes (the optimizer's unreachable-code pass removes it).
    fn start_dead_block(&mut self) {
        let dead = self.fb.new_block();
        self.fb.switch_to(dead);
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::Var { name, ty, init } => {
                let (r, ity) = self.lower_expr(init)?;
                if ity != *ty {
                    return Err(CompileError::new(
                        line,
                        format!("cannot initialize `{name}: {ty}` with a value of type {ity}"),
                    ));
                }
                let var_reg = self.fb.new_reg();
                self.fb.mov_to(var_reg, r);
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), (var_reg, ty.clone()));
            }
            StmtKind::Assign { target, value } => match target {
                LValue::Name(name) => {
                    let (r, vty) = self.lower_expr(value)?;
                    if let Some((reg, ty)) = self.lookup_var(name) {
                        if vty != ty {
                            return Err(CompileError::new(
                                line,
                                format!("cannot assign {vty} to `{name}: {ty}`"),
                            ));
                        }
                        self.fb.mov_to(reg, r);
                    } else if let Some((gid, ty)) = self.globals.get(name) {
                        if vty != *ty {
                            return Err(CompileError::new(
                                line,
                                format!("cannot assign {vty} to global `{name}: {ty}`"),
                            ));
                        }
                        self.fb.global_set(*gid, r);
                    } else {
                        return Err(CompileError::new(line, format!("unknown name `{name}`")));
                    }
                }
                LValue::Index { base, index } => {
                    let (arr, aty) = self.lower_name(base, line)?;
                    let Some(elem) = aty.element() else {
                        return Err(CompileError::new(
                            line,
                            format!("`{base}` has type {aty}, which is not indexable"),
                        ));
                    };
                    let (idx, idx_ty) = self.lower_expr(index)?;
                    if idx_ty != Type::Int {
                        return Err(CompileError::new(line, "array index must be int"));
                    }
                    let (val, vty) = self.lower_expr(value)?;
                    if vty != elem {
                        return Err(CompileError::new(
                            line,
                            format!("cannot store {vty} into {aty}"),
                        ));
                    }
                    self.fb.store(arr, idx, val);
                }
            },
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.options.if_conversion
                    && self.try_if_conversion(cond, then_body, else_body)?
                {
                    return Ok(());
                }
                let then_blk = self.fb.new_block();
                let else_blk = self.fb.new_block();
                let join = self.fb.new_block();
                self.lower_cond(cond, then_blk, else_blk, BranchKind::If)?;
                self.fb.switch_to(then_blk);
                self.lower_stmts(then_body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(join);
                }
                self.fb.switch_to(else_blk);
                self.lower_stmts(else_body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(join);
                }
                self.fb.switch_to(join);
            }
            StmtKind::While { cond, body } => {
                // Rotated loop: guard at entry, test at bottom.
                let body_blk = self.fb.new_block();
                let test_blk = self.fb.new_block();
                let exit = self.fb.new_block();
                self.lower_cond(cond, body_blk, exit, BranchKind::If)?;
                self.loops.push(LoopCtx {
                    continue_target: test_blk,
                    break_target: exit,
                });
                self.fb.switch_to(body_blk);
                self.lower_stmts(body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(test_blk);
                }
                self.fb.switch_to(test_blk);
                self.lower_cond(cond, body_blk, exit, BranchKind::LoopBack)?;
                self.loops.pop();
                self.fb.switch_to(exit);
            }
            StmtKind::DoWhile { body, cond } => {
                let body_blk = self.fb.new_block();
                let test_blk = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jump(body_blk);
                self.loops.push(LoopCtx {
                    continue_target: test_blk,
                    break_target: exit,
                });
                self.fb.switch_to(body_blk);
                self.lower_stmts(body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(test_blk);
                }
                self.fb.switch_to(test_blk);
                self.lower_cond(cond, body_blk, exit, BranchKind::LoopBack)?;
                self.loops.pop();
                self.fb.switch_to(exit);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let body_blk = self.fb.new_block();
                let step_blk = self.fb.new_block();
                let exit = self.fb.new_block();
                match cond {
                    Some(c) => self.lower_cond(c, body_blk, exit, BranchKind::If)?,
                    None => self.fb.jump(body_blk),
                }
                self.loops.push(LoopCtx {
                    continue_target: step_blk,
                    break_target: exit,
                });
                self.fb.switch_to(body_blk);
                self.lower_stmts(body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(step_blk);
                }
                self.fb.switch_to(step_blk);
                if let Some(step) = step {
                    self.lower_stmt(step)?;
                }
                match cond {
                    Some(c) => self.lower_cond(c, body_blk, exit, BranchKind::LoopBack)?,
                    None => self.fb.jump(body_blk),
                }
                self.loops.pop();
                self.scopes.pop();
                self.fb.switch_to(exit);
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                self.lower_switch(scrutinee, cases, default, line)?;
            }
            StmtKind::Break => {
                let Some(ctx) = self.loops.last() else {
                    return Err(CompileError::new(line, "`break` outside of a loop"));
                };
                self.fb.jump(ctx.break_target);
                self.start_dead_block();
            }
            StmtKind::Continue => {
                let Some(ctx) = self.loops.last() else {
                    return Err(CompileError::new(line, "`continue` outside of a loop"));
                };
                self.fb.jump(ctx.continue_target);
                self.start_dead_block();
            }
            StmtKind::Return(value) => {
                let ret_ty = self.ret.clone();
                match (&ret_ty, value) {
                    (None, None) => self.fb.ret(None),
                    (None, Some(_)) => {
                        return Err(CompileError::new(line, "void function returns a value"))
                    }
                    (Some(expected), Some(e)) => {
                        let (r, ty) = self.lower_expr(e)?;
                        if ty != *expected {
                            return Err(CompileError::new(
                                line,
                                format!("return type mismatch: expected {expected}, found {ty}"),
                            ));
                        }
                        self.fb.ret(Some(r));
                    }
                    (Some(expected), None) => {
                        return Err(CompileError::new(
                            line,
                            format!("function must return a value of type {expected}"),
                        ))
                    }
                }
                self.start_dead_block();
            }
            StmtKind::Expr(e) => {
                if let ExprKind::Call { callee, args } = &e.kind {
                    // Statement position: void calls are allowed.
                    self.lower_call(callee, args, e.line)?;
                } else {
                    self.lower_expr(e)?;
                }
            }
        }
        Ok(())
    }

    fn lower_switch(
        &mut self,
        scrutinee: &Expr,
        cases: &[(i64, Vec<Stmt>)],
        default: &[Stmt],
        line: u32,
    ) -> Result<(), CompileError> {
        let (scrut, ty) = self.lower_expr(scrutinee)?;
        if ty != Type::Int {
            return Err(CompileError::new(line, "switch scrutinee must be int"));
        }
        let join = self.fb.new_block();

        let use_table = self.options.switch_mode == SwitchMode::JumpTable && !cases.is_empty() && {
            let min = cases.iter().map(|(v, _)| *v).min().expect("nonempty");
            let max = cases.iter().map(|(v, _)| *v).max().expect("nonempty");
            (max - min) < 1024
        };

        if use_table {
            let min = cases.iter().map(|(v, _)| *v).min().expect("nonempty");
            let max = cases.iter().map(|(v, _)| *v).max().expect("nonempty");
            let default_blk = self.fb.new_block();
            let mut case_blks = HashMap::new();
            for (v, _) in cases {
                case_blks.insert(*v, self.fb.new_block());
            }
            let targets: Vec<BlockId> = (min..=max)
                .map(|v| case_blks.get(&v).copied().unwrap_or(default_blk))
                .collect();
            let min_reg = self.fb.const_int(min);
            let idx = self.fb.binop(BinOp::Sub, scrut, min_reg);
            self.fb.jump_table(idx, targets, default_blk);
            for (v, body) in cases {
                self.fb.switch_to(case_blks[v]);
                self.lower_stmts(body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(join);
                }
            }
            self.fb.switch_to(default_blk);
            self.lower_stmts(default)?;
            if !self.fb.current_terminated() {
                self.fb.jump(join);
            }
        } else {
            // Cascaded ifs: test each case in order (the paper's lowering).
            #[cfg(feature = "seeded-defects")]
            let cmp = if mfdefect::active("lang-switch-case-compare") {
                BinOp::Le
            } else {
                BinOp::Eq
            };
            #[cfg(not(feature = "seeded-defects"))]
            let cmp = BinOp::Eq;
            for (v, body) in cases {
                let case_blk = self.fb.new_block();
                let next_test = self.fb.new_block();
                let cv = self.fb.const_int(*v);
                let eq = self.fb.binop(cmp, scrut, cv);
                self.fb
                    .branch(eq, case_blk, next_test, line, BranchKind::SwitchArm);
                self.fb.switch_to(case_blk);
                self.lower_stmts(body)?;
                if !self.fb.current_terminated() {
                    self.fb.jump(join);
                }
                self.fb.switch_to(next_test);
            }
            self.lower_stmts(default)?;
            if !self.fb.current_terminated() {
                self.fb.jump(join);
            }
        }
        self.fb.switch_to(join);
        Ok(())
    }

    /// If-conversion (the Trace front ends' `select`): `if (c) { x = a; }`
    /// and `if (c) { x = a; } else { x = b; }` become a `select` when `x`
    /// is a local scalar and `c`, `a`, `b` are pure, trap-free scalar
    /// expressions. Returns `Ok(true)` when converted.
    fn try_if_conversion(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
    ) -> Result<bool, CompileError> {
        // Shape check: one simple scalar assignment per arm, same target.
        let arm = |body: &[Stmt]| -> Option<(String, Expr)> {
            let [stmt] = body else { return None };
            let StmtKind::Assign {
                target: LValue::Name(name),
                value,
            } = &stmt.kind
            else {
                return None;
            };
            Some((name.clone(), value.clone()))
        };
        let Some((name, then_value)) = arm(then_body) else {
            return Ok(false);
        };
        let else_value = if else_body.is_empty() {
            None
        } else {
            match arm(else_body) {
                Some((else_name, v)) if else_name == name => Some(v),
                _ => return Ok(false),
            }
        };
        // Target must be a local scalar (globals keep the branch so stores
        // stay conditional in program order).
        let Some((target_reg, target_ty)) = self.lookup_var(&name) else {
            return Ok(false);
        };
        if !target_ty.is_scalar() {
            return Ok(false);
        }
        if !Self::is_selectable(cond)
            || !Self::is_selectable(&then_value)
            || !else_value.as_ref().is_none_or(Self::is_selectable)
        {
            return Ok(false);
        }

        let (c, cty) = self.lower_expr(cond)?;
        if cty != Type::Int {
            return Err(CompileError::new(
                cond.line,
                format!("condition must be int, found {cty}"),
            ));
        }
        let (tv, tty) = self.lower_expr(&then_value)?;
        if tty != target_ty {
            return Err(CompileError::new(
                cond.line,
                format!("cannot assign {tty} to `{name}: {target_ty}`"),
            ));
        }
        let ev = match else_value {
            Some(e) => {
                let (ev, ety) = self.lower_expr(&e)?;
                if ety != target_ty {
                    return Err(CompileError::new(
                        cond.line,
                        format!("cannot assign {ety} to `{name}: {target_ty}`"),
                    ));
                }
                ev
            }
            None => target_reg, // keep the old value
        };
        let sel = self.fb.select(c, tv, ev);
        self.fb.mov_to(target_reg, sel);
        Ok(true)
    }

    /// True for pure, trap-free scalar expressions: literals, scalar
    /// names, unary operators, and binary operators other than division,
    /// remainder and the short-circuit forms. No calls, no indexing.
    fn is_selectable(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Name(_) => true,
            ExprKind::Unary { operand, .. } => Self::is_selectable(operand),
            ExprKind::Binary { op, lhs, rhs } => {
                !matches!(
                    op,
                    BinaryOp::Div | BinaryOp::Rem | BinaryOp::And | BinaryOp::Or
                ) && Self::is_selectable(lhs)
                    && Self::is_selectable(rhs)
            }
            _ => false,
        }
    }

    /// Lowers a condition into control flow: jump to `true_blk` when the
    /// condition is non-zero, `false_blk` otherwise. `&&`, `||` and `!` are
    /// handled structurally so each primitive test is one real conditional
    /// branch.
    fn lower_cond(
        &mut self,
        cond: &Expr,
        true_blk: BlockId,
        false_blk: BlockId,
        kind: BranchKind,
    ) -> Result<(), CompileError> {
        match &cond.kind {
            ExprKind::Binary {
                op: BinaryOp::And,
                lhs,
                rhs,
            } => {
                let mid = self.fb.new_block();
                self.lower_cond(lhs, mid, false_blk, BranchKind::ShortCircuit)?;
                self.fb.switch_to(mid);
                self.lower_cond(rhs, true_blk, false_blk, kind)
            }
            ExprKind::Binary {
                op: BinaryOp::Or,
                lhs,
                rhs,
            } => {
                let mid = self.fb.new_block();
                self.lower_cond(lhs, true_blk, mid, BranchKind::ShortCircuit)?;
                self.fb.switch_to(mid);
                self.lower_cond(rhs, true_blk, false_blk, kind)
            }
            ExprKind::Unary {
                op: UnaryOp::Not,
                operand,
            } => self.lower_cond(operand, false_blk, true_blk, kind),
            _ => {
                let (r, ty) = self.lower_expr(cond)?;
                if ty != Type::Int {
                    return Err(CompileError::new(
                        cond.line,
                        format!("condition must be int, found {ty}"),
                    ));
                }
                self.fb.branch(r, true_blk, false_blk, cond.line, kind);
                Ok(())
            }
        }
    }

    /// Resolves a bare name (local variable, then global) to a value
    /// register.
    fn lower_name(&mut self, name: &str, line: u32) -> Result<(Reg, Type), CompileError> {
        if let Some((reg, ty)) = self.lookup_var(name) {
            return Ok((reg, ty));
        }
        if let Some((gid, ty)) = self.globals.get(name) {
            let r = self.fb.global_get(*gid);
            return Ok((r, ty.clone()));
        }
        Err(CompileError::new(line, format!("unknown name `{name}`")))
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(Reg, Type), CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => Ok((self.fb.const_int(*v), Type::Int)),
            ExprKind::Float(v) => Ok((self.fb.const_float(*v), Type::Float)),
            ExprKind::Str(s) => {
                let idx = self.pb.intern_str(s);
                Ok((self.fb.const_array(idx), Type::IntArray))
            }
            ExprKind::Name(name) => self.lower_name(name, line),
            ExprKind::FuncRef(name) => {
                let Some((id, sig)) = self.funcs.get(name) else {
                    return Err(CompileError::new(
                        line,
                        format!("unknown function `{name}` in `@{name}`"),
                    ));
                };
                let r = self.fb.func_addr(*id);
                Ok((
                    r,
                    Type::FnRef {
                        params: sig.params.clone(),
                        ret: sig.ret.clone().map(Box::new),
                    },
                ))
            }
            ExprKind::Index { base, index } => {
                let (arr, aty) = self.lower_expr(base)?;
                let Some(elem) = aty.element() else {
                    return Err(CompileError::new(
                        line,
                        format!("type {aty} is not indexable"),
                    ));
                };
                let (idx, ity) = self.lower_expr(index)?;
                if ity != Type::Int {
                    return Err(CompileError::new(line, "array index must be int"));
                }
                Ok((self.fb.load(arr, idx), elem))
            }
            ExprKind::Unary { op, operand } => {
                let (r, ty) = self.lower_expr(operand)?;
                match (op, &ty) {
                    (UnaryOp::Neg, Type::Int) => Ok((self.fb.unop(UnOp::Neg, r), Type::Int)),
                    (UnaryOp::Neg, Type::Float) => Ok((self.fb.unop(UnOp::FNeg, r), Type::Float)),
                    (UnaryOp::Not, Type::Int) => Ok((self.fb.unop(UnOp::LNot, r), Type::Int)),
                    (UnaryOp::BitNot, Type::Int) => Ok((self.fb.unop(UnOp::Not, r), Type::Int)),
                    _ => Err(CompileError::new(
                        line,
                        format!("unary operator not defined for {ty}"),
                    )),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs, line),
            ExprKind::Call { callee, args } => match self.lower_call(callee, args, line)? {
                Some(rt) => Ok(rt),
                None => Err(CompileError::new(
                    line,
                    format!("void call to `{callee}` used as a value"),
                )),
            },
        }
    }

    fn lower_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(Reg, Type), CompileError> {
        // Short-circuit operators in value position materialize 0/1 through
        // control flow, like a C compiler.
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            let result = self.fb.new_reg();
            let t_blk = self.fb.new_block();
            let f_blk = self.fb.new_block();
            let join = self.fb.new_block();
            let whole = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(rhs.clone()),
                },
                line,
            };
            self.lower_cond(&whole, t_blk, f_blk, BranchKind::ShortCircuit)?;
            self.fb.switch_to(t_blk);
            let one = self.fb.const_int(1);
            self.fb.mov_to(result, one);
            self.fb.jump(join);
            self.fb.switch_to(f_blk);
            let zero = self.fb.const_int(0);
            self.fb.mov_to(result, zero);
            self.fb.jump(join);
            self.fb.switch_to(join);
            return Ok((result, Type::Int));
        }

        let (l, lt) = self.lower_expr(lhs)?;
        let (r, rt) = self.lower_expr(rhs)?;
        if lt != rt {
            return Err(CompileError::new(
                line,
                format!("operand type mismatch: {lt} vs {rt}"),
            ));
        }
        use BinaryOp as B;
        let (irop, ty) = match (op, &lt) {
            (B::Add, Type::Int) => (BinOp::Add, Type::Int),
            (B::Sub, Type::Int) => (BinOp::Sub, Type::Int),
            (B::Mul, Type::Int) => (BinOp::Mul, Type::Int),
            (B::Div, Type::Int) => (BinOp::Div, Type::Int),
            (B::Rem, Type::Int) => (BinOp::Rem, Type::Int),
            (B::Add, Type::Float) => (BinOp::FAdd, Type::Float),
            (B::Sub, Type::Float) => (BinOp::FSub, Type::Float),
            (B::Mul, Type::Float) => (BinOp::FMul, Type::Float),
            (B::Div, Type::Float) => (BinOp::FDiv, Type::Float),
            (B::Eq, Type::Int) => (BinOp::Eq, Type::Int),
            (B::Ne, Type::Int) => (BinOp::Ne, Type::Int),
            (B::Lt, Type::Int) => (BinOp::Lt, Type::Int),
            (B::Le, Type::Int) => (BinOp::Le, Type::Int),
            (B::Gt, Type::Int) => (BinOp::Gt, Type::Int),
            (B::Ge, Type::Int) => (BinOp::Ge, Type::Int),
            (B::Eq, Type::Float) => (BinOp::FEq, Type::Int),
            (B::Ne, Type::Float) => (BinOp::FNe, Type::Int),
            (B::Lt, Type::Float) => (BinOp::FLt, Type::Int),
            (B::Le, Type::Float) => (BinOp::FLe, Type::Int),
            (B::Gt, Type::Float) => (BinOp::FGt, Type::Int),
            (B::Ge, Type::Float) => (BinOp::FGe, Type::Int),
            (B::BitAnd, Type::Int) => (BinOp::And, Type::Int),
            (B::BitOr, Type::Int) => (BinOp::Or, Type::Int),
            (B::BitXor, Type::Int) => (BinOp::Xor, Type::Int),
            (B::Shl, Type::Int) => (BinOp::Shl, Type::Int),
            (B::Shr, Type::Int) => (BinOp::Shr, Type::Int),
            _ => {
                return Err(CompileError::new(
                    line,
                    format!("operator not defined for operands of type {lt}"),
                ))
            }
        };
        Ok((self.fb.binop(irop, l, r), ty))
    }

    /// Lowers a call: builtin, indirect (through a `fn`-typed variable), or
    /// direct. Returns `None` for void calls.
    fn lower_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<(Reg, Type)>, CompileError> {
        if is_builtin(callee) {
            return self.lower_builtin(callee, args, line);
        }

        // A local or global of fn type shadows a function of the same name.
        // For globals the register is resolved after argument lowering.
        let indirect = self.lookup_var(callee).map(|vt| (vt, false)).or_else(|| {
            self.globals
                .get(callee)
                .map(|(_, ty)| ((Reg(0), ty.clone()), true))
        });
        if let Some(((reg, ty), is_global)) = indirect {
            let Type::FnRef { params, ret } = ty else {
                return Err(CompileError::new(
                    line,
                    format!("`{callee}` has non-function type {ty} and cannot be called"),
                ));
            };
            if args.len() != params.len() {
                return Err(CompileError::new(
                    line,
                    format!(
                        "`{callee}` expects {} arguments, got {}",
                        params.len(),
                        args.len()
                    ),
                ));
            }
            let mut arg_regs = Vec::with_capacity(args.len());
            for (a, pty) in args.iter().zip(&params) {
                let (r, ty) = self.lower_expr(a)?;
                if ty != *pty {
                    return Err(CompileError::new(
                        a.line,
                        format!("argument type mismatch: expected {pty}, found {ty}"),
                    ));
                }
                arg_regs.push(r);
            }
            let target = if is_global {
                let (gid, _) = &self.globals[callee];
                self.fb.global_get(*gid)
            } else {
                reg
            };
            let dst = self.fb.call_indirect(target, arg_regs);
            return Ok(ret.map(|t| (dst, *t)));
        }

        let Some((id, sig)) = self.funcs.get(callee) else {
            return Err(CompileError::new(
                line,
                format!("unknown function `{callee}`"),
            ));
        };
        let (id, sig) = (*id, sig.clone());
        if args.len() != sig.params.len() {
            return Err(CompileError::new(
                line,
                format!(
                    "`{callee}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut arg_regs = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&sig.params) {
            let (r, ty) = self.lower_expr(a)?;
            if ty != *pty {
                return Err(CompileError::new(
                    a.line,
                    format!("argument type mismatch: expected {pty}, found {ty}"),
                ));
            }
            arg_regs.push(r);
        }
        match sig.ret {
            Some(ret) => {
                let dst = self.fb.call(id, arg_regs);
                Ok(Some((dst, ret)))
            }
            None => {
                self.fb.call_void(id, arg_regs);
                Ok(None)
            }
        }
    }

    fn lower_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<(Reg, Type)>, CompileError> {
        let mut lowered = Vec::with_capacity(args.len());
        for a in args {
            lowered.push(self.lower_expr(a)?);
        }
        let arity_err =
            |n: usize| CompileError::new(line, format!("`{name}` expects {n} argument(s)"));
        let type_err = |msg: &str| CompileError::new(line, format!("`{name}`: {msg}"));

        let unary_float =
            |this: &mut Self, op: UnOp| -> Result<Option<(Reg, Type)>, CompileError> {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if *ty != Type::Float {
                    return Err(type_err("argument must be float"));
                }
                Ok(Some((this.fb.unop(op, r), Type::Float)))
            };

        match name {
            "len" => {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if ty.element().is_none() {
                    return Err(type_err("argument must be an array"));
                }
                Ok(Some((self.fb.array_len(r), Type::Int)))
            }
            "new_int" | "new_float" => {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if *ty != Type::Int {
                    return Err(type_err("length must be int"));
                }
                if name == "new_int" {
                    Ok(Some((self.fb.new_int_array(r), Type::IntArray)))
                } else {
                    Ok(Some((self.fb.new_float_array(r), Type::FloatArray)))
                }
            }
            "emit" => {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if !ty.is_scalar() {
                    return Err(type_err("argument must be a scalar"));
                }
                self.fb.emit_value(r);
                Ok(None)
            }
            "int" => {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if *ty != Type::Float {
                    return Err(type_err("argument must be float"));
                }
                Ok(Some((self.fb.unop(UnOp::FloatToInt, r), Type::Int)))
            }
            "float" => {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if *ty != Type::Int {
                    return Err(type_err("argument must be int"));
                }
                Ok(Some((self.fb.unop(UnOp::IntToFloat, r), Type::Float)))
            }
            "sqrt" => unary_float(self, UnOp::Sqrt),
            "sin" => unary_float(self, UnOp::Sin),
            "cos" => unary_float(self, UnOp::Cos),
            "exp" => unary_float(self, UnOp::Exp),
            "log" => unary_float(self, UnOp::Log),
            "floor" => unary_float(self, UnOp::Floor),
            "fabs" => unary_float(self, UnOp::FAbs),
            "iabs" => {
                let [(r, ref ty)] = lowered[..] else {
                    return Err(arity_err(1));
                };
                if *ty != Type::Int {
                    return Err(type_err("argument must be int"));
                }
                Ok(Some((self.fb.unop(UnOp::Abs, r), Type::Int)))
            }
            "fmin" | "fmax" => {
                let [(a, ref t1), (b, ref t2)] = lowered[..] else {
                    return Err(arity_err(2));
                };
                if *t1 != Type::Float || *t2 != Type::Float {
                    return Err(type_err("arguments must be float"));
                }
                let op = if name == "fmin" {
                    BinOp::FMin
                } else {
                    BinOp::FMax
                };
                Ok(Some((self.fb.binop(op, a, b), Type::Float)))
            }
            "select" => {
                let [(c, ref ct), (a, ref at), (b, ref bt)] = lowered[..] else {
                    return Err(arity_err(3));
                };
                if *ct != Type::Int {
                    return Err(type_err("condition must be int"));
                }
                if at != bt || !at.is_scalar() {
                    return Err(type_err("value operands must be scalars of one type"));
                }
                Ok(Some((self.fb.select(c, a, b), at.clone())))
            }
            _ => unreachable!("is_builtin and lower_builtin disagree on `{name}`"),
        }
    }
}
