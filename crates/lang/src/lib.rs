#![warn(missing_docs)]

//! # mflang
//!
//! A small, C/Fortran-flavoured guest language compiled to [`trace_ir`]. It
//! stands in for the Multiflow trace-scheduling compiler front ends in the
//! Fisher & Freudenberger reproduction: every workload in the program sample
//! base is written in this language, compiled here, and executed on
//! [`trace-vm`](../trace_vm/index.html).
//!
//! The language is deliberately close to the paper's source languages:
//!
//! * `int`/`float` scalars, `[int]`/`[float]` arrays, typed function
//!   references (`fn(int) -> int`) for indirect calls,
//! * `if`/`else`, `while`, `do`/`while`, `for`, `switch` (lowered to
//!   cascaded conditional branches by default, exactly as the paper's
//!   compiler did, or to a branch-target table with
//!   [`SwitchMode::JumpTable`]),
//! * short-circuit `&&`/`||` (each test is a real conditional branch),
//! * `break`/`continue`/`return`, globals, recursion, string/char literals.
//!
//! Every conditional branch in the emitted IR carries a stable source-level
//! [`trace_ir::BranchId`] assigned in source order, plus its line and
//! construct kind — the hook the IFPROBBER-style profiling machinery keys on.
//!
//! ```
//! use mflang::compile;
//! use trace_vm::{Vm, Input};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile(
//!     r#"
//!     fn main(n: int) -> int {
//!         var s: int = 0;
//!         for (var i: int = 0; i < n; i = i + 1) {
//!             if (i % 3 == 0) { s = s + i; }
//!         }
//!         emit(s);
//!         return s;
//!     }
//!     "#,
//! )?;
//! let run = Vm::new(&program).run(&[trace_vm::Input::Int(10)])?;
//! assert_eq!(run.output_ints(), vec![18]);
//! # Ok(())
//! # }
//! ```

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod token;

pub use error::CompileError;
pub use lower::{CompileOptions, SwitchMode};

use trace_ir::Program;

/// Compiles guest source to a validated [`Program`] with default options
/// (cascaded-if switch lowering, as in the paper).
///
/// # Errors
///
/// Returns a [`CompileError`] with a line number for lexical, syntactic, or
/// type errors.
pub fn compile(source: &str) -> Result<Program, CompileError> {
    compile_with(source, &CompileOptions::default())
}

/// Compiles guest source with explicit [`CompileOptions`].
///
/// # Errors
///
/// Returns a [`CompileError`] with a line number for lexical, syntactic, or
/// type errors.
pub fn compile_with(source: &str, options: &CompileOptions) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source)?;
    let items = parser::parse(tokens)?;
    lower::lower(&items, options)
}
