#![warn(missing_docs)]

//! # mfdyn — online dynamic branch predictors
//!
//! The 1992 paper's headline claim is that per-branch profiles from
//! *previous* runs rival hardware dynamic prediction. This crate supplies
//! the hardware side of that comparison: a family of online conditional
//! branch predictors driven by the VM's [`BranchSink`] event stream —
//! always-taken and BTFN static baselines, local 1-bit and 2-bit counter
//! tables, gshare with configurable history length and table size, and a
//! perceptron predictor.
//!
//! Everything is deterministic and allocation-bounded: each predictor
//! allocates its tables once at construction (sized by `table_bits`) and
//! never allocates on the hot path, so a [`Zoo`] can be attached to any
//! run — including fuzz runs — without perturbing behavior or memory use.
//!
//! Two independent implementations of the same predictor semantics exist:
//!
//! * the **online** path ([`Zoo`], a [`BranchSink`]) updates every
//!   predictor as branches execute, without materializing a trace;
//! * the **golden** path ([`golden::replay`]) re-simulates a predictor
//!   over a recorded [`BranchEvent`] trace after the fact.
//!
//! On a clean build the two must agree bit for bit; the fuzzer's
//! `dynpred-consistency` oracle holds them against each other, and the
//! seeded defect `dynpred-history-not-updated` (gshare skips its history
//! update on not-taken branches, online path only) is convicted exactly by
//! that disagreement.

use std::sync::Arc;

use trace_ir::{BranchId, Program, Terminator};
use trace_vm::BranchSink;

/// Smallest allowed `table_bits` for any tabled predictor.
pub const MIN_TABLE_BITS: u32 = 1;
/// Largest allowed `table_bits` for any tabled predictor (2^24 entries —
/// far past the aliasing knee on this suite, still allocation-bounded).
pub const MAX_TABLE_BITS: u32 = 24;
/// Largest allowed global-history length, in branches.
pub const MAX_HISTORY: u32 = 63;

/// Perceptron weights saturate at ±[`WEIGHT_LIMIT`], the classic 8-bit
/// hardware budget. Clamping keeps every weight (and therefore every dot
/// product, at most `(MAX_HISTORY + 1) × WEIGHT_LIMIT`) far inside `i32`.
pub const WEIGHT_LIMIT: i32 = 127;

/// One predictor configuration — the unit the characterization harness
/// sweeps over, and the tag [`mfharness`] folds into its run key so runs
/// observed by different zoos never share a cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DynSpec {
    /// Predict every branch taken.
    AlwaysTaken,
    /// Backward-taken / forward-not-taken, from static layout (needs
    /// [`BranchDirs`]; without them every branch counts as forward).
    Btfn,
    /// Local 1-bit last-outcome table, indexed by branch id.
    OneBit {
        /// log2 of the table size.
        table_bits: u32,
    },
    /// Local 2-bit saturating-counter table, indexed by branch id.
    TwoBit {
        /// log2 of the table size.
        table_bits: u32,
    },
    /// Global-history XOR branch-id indexed 2-bit counter table.
    Gshare {
        /// Global history length in branches.
        history: u32,
        /// log2 of the table size.
        table_bits: u32,
    },
    /// Branch-id indexed table of perceptrons over the global history.
    Perceptron {
        /// Global history length in branches (one weight per bit, plus bias).
        history: u32,
        /// log2 of the table size.
        table_bits: u32,
    },
}

impl DynSpec {
    /// The canonical spelling: `always-taken`, `btfn`, `1bit/t12`,
    /// `2bit/t12`, `gshare/h8/t12`, `perceptron/h12/t8`. Stable — used in
    /// harness run keys, `BENCH_dynpred.json`, and report tables.
    pub fn name(self) -> String {
        match self {
            DynSpec::AlwaysTaken => "always-taken".to_string(),
            DynSpec::Btfn => "btfn".to_string(),
            DynSpec::OneBit { table_bits } => format!("1bit/t{table_bits}"),
            DynSpec::TwoBit { table_bits } => format!("2bit/t{table_bits}"),
            DynSpec::Gshare {
                history,
                table_bits,
            } => format!("gshare/h{history}/t{table_bits}"),
            DynSpec::Perceptron {
                history,
                table_bits,
            } => format!("perceptron/h{history}/t{table_bits}"),
        }
    }

    /// Validates the configuration bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound.
    pub fn validate(self) -> Result<(), String> {
        let (history, table_bits) = match self {
            DynSpec::AlwaysTaken | DynSpec::Btfn => return Ok(()),
            DynSpec::OneBit { table_bits } | DynSpec::TwoBit { table_bits } => (1, table_bits),
            DynSpec::Gshare {
                history,
                table_bits,
            }
            | DynSpec::Perceptron {
                history,
                table_bits,
            } => (history, table_bits),
        };
        if !(MIN_TABLE_BITS..=MAX_TABLE_BITS).contains(&table_bits) {
            return Err(format!(
                "table_bits {table_bits} outside {MIN_TABLE_BITS}..={MAX_TABLE_BITS}"
            ));
        }
        if !(1..=MAX_HISTORY).contains(&history) {
            return Err(format!("history {history} outside 1..={MAX_HISTORY}"));
        }
        Ok(())
    }
}

impl std::fmt::Display for DynSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl std::str::FromStr for DynSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let spec = match s {
            "always-taken" => DynSpec::AlwaysTaken,
            "btfn" => DynSpec::Btfn,
            _ => {
                let mut parts = s.split('/');
                let kind = parts.next().unwrap_or_default();
                let mut history = None;
                let mut table_bits = None;
                for p in parts {
                    let (tag, num) = p.split_at(1.min(p.len()));
                    let v: u32 = num
                        .parse()
                        .map_err(|_| format!("bad predictor component '{p}' in '{s}'"))?;
                    match tag {
                        "h" => history = Some(v),
                        "t" => table_bits = Some(v),
                        _ => return Err(format!("bad predictor component '{p}' in '{s}'")),
                    }
                }
                let t = || table_bits.ok_or(format!("'{s}' is missing its /tN table size"));
                let h = || history.ok_or(format!("'{s}' is missing its /hN history length"));
                match kind {
                    "1bit" => DynSpec::OneBit { table_bits: t()? },
                    "2bit" => DynSpec::TwoBit { table_bits: t()? },
                    "gshare" => DynSpec::Gshare {
                        history: h()?,
                        table_bits: t()?,
                    },
                    "perceptron" => DynSpec::Perceptron {
                        history: h()?,
                        table_bits: t()?,
                    },
                    other => return Err(format!("unknown predictor '{other}' in '{s}'")),
                }
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// The two-spec zoo the bench harness attaches to every profiling run for
/// the heuristic table's dynamic columns: a classic local 2-bit table and
/// a mid-sized gshare.
pub fn standard_zoo() -> Vec<DynSpec> {
    vec![
        DynSpec::TwoBit { table_bits: 12 },
        DynSpec::Gshare {
            history: 8,
            table_bits: 12,
        },
    ]
}

/// The full headline zoo `dynbench` evaluates: the static baselines, both
/// local counter tables, the gshare history sweep, and the perceptron.
pub fn full_zoo() -> Vec<DynSpec> {
    vec![
        DynSpec::AlwaysTaken,
        DynSpec::Btfn,
        DynSpec::OneBit { table_bits: 12 },
        DynSpec::TwoBit { table_bits: 12 },
        DynSpec::Gshare {
            history: 4,
            table_bits: 12,
        },
        DynSpec::Gshare {
            history: 8,
            table_bits: 12,
        },
        DynSpec::Gshare {
            history: 12,
            table_bits: 12,
        },
        DynSpec::Gshare {
            history: 16,
            table_bits: 12,
        },
        DynSpec::Perceptron {
            history: 12,
            table_bits: 8,
        },
    ]
}

/// Static branch directions extracted from a program's layout — the
/// information the BTFN baseline predicts from (backward ⇒ taken).
#[derive(Clone, Debug, Default)]
pub struct BranchDirs {
    backward: Arc<Vec<bool>>,
}

impl BranchDirs {
    /// No layout information: every branch counts as forward (BTFN
    /// predicts not-taken everywhere).
    pub fn none() -> Self {
        BranchDirs::default()
    }

    /// Extracts per-branch backwardness from `program` layout, by the same
    /// rule as [`Program::is_backward_branch`]: a branch is backward when
    /// its taken target does not come after the block it ends.
    pub fn of(program: &Program) -> Self {
        let mut backward = vec![false; program.branch_info.len()];
        for f in &program.functions {
            for (bi, b) in f.blocks.iter().enumerate() {
                if let Terminator::Branch { id, taken, .. } = b.term {
                    if taken.index() <= bi {
                        backward[id.0 as usize] = true;
                    }
                }
            }
        }
        BranchDirs {
            backward: Arc::new(backward),
        }
    }

    /// Whether `id` is a backward (loop-style) branch.
    pub fn is_backward(&self, id: BranchId) -> bool {
        self.backward.get(id.0 as usize).copied().unwrap_or(false)
    }
}

/// Executed/mispredicted tallies for one predictor over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ZooCounts {
    /// Conditional branches the predictor saw.
    pub executed: u64,
    /// Of those, how many it predicted wrong.
    pub mispredicted: u64,
}

impl ZooCounts {
    /// Mispredict rate in [0, 1]; 0 for an empty run.
    pub fn mispredict_rate(self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executed as f64
        }
    }

    /// Percent predicted correctly; 100 for an empty run.
    pub fn percent_correct(self) -> f64 {
        100.0 * (1.0 - self.mispredict_rate())
    }

    /// Folds another run's tallies into this one.
    pub fn merge(&mut self, other: ZooCounts) {
        self.executed += other.executed;
        self.mispredicted += other.mispredicted;
    }
}

/// Per-spec tallies for one run, in the zoo's construction order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ZooReport {
    /// `(spec, counts)` pairs, in the order the specs were given.
    pub entries: Vec<(DynSpec, ZooCounts)>,
}

impl ZooReport {
    /// The counts for `spec`, if it was in the zoo.
    pub fn get(&self, spec: DynSpec) -> Option<ZooCounts> {
        self.entries
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|&(_, c)| c)
    }

    /// Folds another report (same specs, same order) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the spec lists differ.
    pub fn merge(&mut self, other: &ZooReport) {
        if self.entries.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "merging reports from different zoos"
        );
        for ((sa, ca), (sb, cb)) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(sa, sb, "merging reports from different zoos");
            ca.merge(*cb);
        }
    }
}

/// One step of a 2-bit saturating counter (0..=3; ≥2 predicts taken).
#[inline]
pub fn two_bit_step(state: u8, taken: bool) -> u8 {
    if taken {
        (state + 1).min(3)
    } else {
        state.saturating_sub(1)
    }
}

/// The gshare table index: branch id XOR global history, masked to the
/// table. Always within `0..(1 << table_bits)` for any history value.
#[inline]
pub fn gshare_index(id: BranchId, history: u64, table_bits: u32) -> usize {
    (((id.0 as u64) ^ history) & ((1u64 << table_bits) - 1)) as usize
}

/// The perceptron training threshold θ = ⌊1.93·h + 14⌋ (Jiménez & Lin's
/// empirically best value), in integer arithmetic.
#[inline]
pub fn perceptron_theta(history: u32) -> i32 {
    ((193 * history + 1400) / 100) as i32
}

#[inline]
fn clamp_weight(w: i32) -> i32 {
    w.clamp(-WEIGHT_LIMIT, WEIGHT_LIMIT)
}

/// Initial 2-bit counter state: weakly not-taken.
const TWO_BIT_INIT: u8 = 1;

enum State {
    AlwaysTaken,
    Btfn,
    OneBit { table: Vec<u8> },
    TwoBit { table: Vec<u8> },
    Gshare { table: Vec<u8>, history: u64 },
    Perceptron { weights: Vec<i32>, history: u64 },
}

struct Pred {
    spec: DynSpec,
    state: State,
    counts: ZooCounts,
}

impl Pred {
    fn new(spec: DynSpec) -> Self {
        let state = match spec {
            DynSpec::AlwaysTaken => State::AlwaysTaken,
            DynSpec::Btfn => State::Btfn,
            DynSpec::OneBit { table_bits } => State::OneBit {
                table: vec![0; 1 << table_bits],
            },
            DynSpec::TwoBit { table_bits } => State::TwoBit {
                table: vec![TWO_BIT_INIT; 1 << table_bits],
            },
            DynSpec::Gshare { table_bits, .. } => State::Gshare {
                table: vec![TWO_BIT_INIT; 1 << table_bits],
                history: 0,
            },
            DynSpec::Perceptron {
                history,
                table_bits,
            } => State::Perceptron {
                weights: vec![0; (1 << table_bits) * (history as usize + 1)],
                history: 0,
            },
        };
        Pred {
            spec,
            state,
            counts: ZooCounts::default(),
        }
    }

    /// Predicts, tallies, and trains on one executed branch. This is the
    /// hot path: no allocation, no hashing, just table arithmetic.
    fn observe(&mut self, dirs: &BranchDirs, id: BranchId, taken: bool) {
        let predicted = match &mut self.state {
            State::AlwaysTaken => true,
            State::Btfn => dirs.is_backward(id),
            State::OneBit { table } => {
                let idx = id.0 as usize & (table.len() - 1);
                let p = table[idx] != 0;
                table[idx] = u8::from(taken);
                p
            }
            State::TwoBit { table } => {
                let idx = id.0 as usize & (table.len() - 1);
                let p = table[idx] >= 2;
                table[idx] = two_bit_step(table[idx], taken);
                p
            }
            State::Gshare { table, history } => {
                let (hist_len, table_bits) = match self.spec {
                    DynSpec::Gshare {
                        history,
                        table_bits,
                    } => (history, table_bits),
                    _ => unreachable!("state/spec agree by construction"),
                };
                let idx = gshare_index(id, *history, table_bits);
                let p = table[idx] >= 2;
                table[idx] = two_bit_step(table[idx], taken);
                // The seeded defect skips the history update on not-taken
                // branches, so the online predictor's indices drift away
                // from the golden replay's — the dynpred-consistency
                // oracle's conviction signal.
                #[cfg(feature = "seeded-defects")]
                let skip_update = mfdefect::active("dynpred-history-not-updated") && !taken;
                #[cfg(not(feature = "seeded-defects"))]
                let skip_update = false;
                if !skip_update {
                    *history = ((*history << 1) | u64::from(taken)) & ((1u64 << hist_len) - 1);
                }
                p
            }
            State::Perceptron { weights, history } => {
                let (hist_len, table_bits) = match self.spec {
                    DynSpec::Perceptron {
                        history,
                        table_bits,
                    } => (history, table_bits),
                    _ => unreachable!("state/spec agree by construction"),
                };
                let h = hist_len as usize;
                let idx = id.0 as usize & ((1 << table_bits) - 1);
                let w = &mut weights[idx * (h + 1)..][..h + 1];
                let mut y = w[0];
                for (i, wi) in w[1..].iter().enumerate() {
                    y += if (*history >> i) & 1 == 1 { *wi } else { -*wi };
                }
                let p = y >= 0;
                if p != taken || y.abs() <= perceptron_theta(hist_len) {
                    let t = if taken { 1 } else { -1 };
                    w[0] = clamp_weight(w[0] + t);
                    for (i, wi) in w[1..].iter_mut().enumerate() {
                        let x = if (*history >> i) & 1 == 1 { 1 } else { -1 };
                        *wi = clamp_weight(*wi + t * x);
                    }
                }
                *history = ((*history << 1) | u64::from(taken)) & ((1u64 << hist_len) - 1);
                p
            }
        };
        self.counts.executed += 1;
        if predicted != taken {
            self.counts.mispredicted += 1;
        }
    }
}

/// A set of online predictors all observing one run through the VM's
/// [`BranchSink`] hook. Attaching a zoo is pure observation: it never
/// changes the run's output, stats, or trace.
pub struct Zoo {
    dirs: BranchDirs,
    preds: Vec<Pred>,
}

impl Zoo {
    /// A zoo with no layout information (BTFN predicts not-taken
    /// everywhere).
    pub fn new(specs: &[DynSpec]) -> Self {
        Zoo::with_dirs(specs, BranchDirs::none())
    }

    /// A zoo with BTFN directions extracted from `program`.
    pub fn for_program(specs: &[DynSpec], program: &Program) -> Self {
        Zoo::with_dirs(specs, BranchDirs::of(program))
    }

    /// A zoo with explicit [`BranchDirs`].
    pub fn with_dirs(specs: &[DynSpec], dirs: BranchDirs) -> Self {
        Zoo {
            dirs,
            preds: specs.iter().map(|&s| Pred::new(s)).collect(),
        }
    }

    /// The per-spec tallies so far.
    pub fn report(&self) -> ZooReport {
        ZooReport {
            entries: self.preds.iter().map(|p| (p.spec, p.counts)).collect(),
        }
    }
}

impl BranchSink for Zoo {
    fn branch(&mut self, id: BranchId, taken: bool) {
        for p in &mut self.preds {
            p.observe(&self.dirs, id, taken);
        }
    }
}

pub mod golden {
    //! A second, independent implementation of every predictor, replayed
    //! over a recorded branch trace. Deliberately written in a different
    //! style (sparse maps instead of dense tables, no shared update
    //! helpers, no seeded-defect hooks) so a bug in the online path cannot
    //! hide by being mirrored here. On a clean build
    //! `golden::replay(spec, dirs, &run.branch_trace)` must equal the
    //! online [`Zoo`](crate::Zoo)'s counts for `spec` bit for bit.

    use std::collections::HashMap;

    use trace_vm::BranchEvent;

    use crate::{BranchDirs, DynSpec, ZooCounts, ZooReport};

    fn saturate(c: i64, taken: bool) -> i64 {
        let next = if taken { c + 1 } else { c - 1 };
        next.clamp(0, 3)
    }

    /// Replays `spec` over `trace` from a cold start and returns its
    /// tallies.
    pub fn replay(spec: DynSpec, dirs: &BranchDirs, trace: &[BranchEvent]) -> ZooCounts {
        let mut counts = ZooCounts::default();
        match spec {
            DynSpec::AlwaysTaken => {
                for ev in trace {
                    counts.executed += 1;
                    if !ev.taken {
                        counts.mispredicted += 1;
                    }
                }
            }
            DynSpec::Btfn => {
                for ev in trace {
                    counts.executed += 1;
                    if dirs.is_backward(ev.id) != ev.taken {
                        counts.mispredicted += 1;
                    }
                }
            }
            DynSpec::OneBit { table_bits } => {
                let mask = (1u64 << table_bits) - 1;
                let mut last: HashMap<u64, bool> = HashMap::new();
                for ev in trace {
                    let slot = u64::from(ev.id.0) & mask;
                    let predicted = last.get(&slot).copied().unwrap_or(false);
                    counts.executed += 1;
                    if predicted != ev.taken {
                        counts.mispredicted += 1;
                    }
                    last.insert(slot, ev.taken);
                }
            }
            DynSpec::TwoBit { table_bits } => {
                let mask = (1u64 << table_bits) - 1;
                let mut ctr: HashMap<u64, i64> = HashMap::new();
                for ev in trace {
                    let slot = u64::from(ev.id.0) & mask;
                    let c = ctr
                        .get(&slot)
                        .copied()
                        .unwrap_or(i64::from(crate::TWO_BIT_INIT));
                    counts.executed += 1;
                    if (c >= 2) != ev.taken {
                        counts.mispredicted += 1;
                    }
                    ctr.insert(slot, saturate(c, ev.taken));
                }
            }
            DynSpec::Gshare {
                history,
                table_bits,
            } => {
                let mask = (1u64 << table_bits) - 1;
                let hist_mask = (1u64 << history) - 1;
                let mut ctr: HashMap<u64, i64> = HashMap::new();
                let mut ghist = 0u64;
                for ev in trace {
                    let slot = (u64::from(ev.id.0) ^ ghist) & mask;
                    let c = ctr
                        .get(&slot)
                        .copied()
                        .unwrap_or(i64::from(crate::TWO_BIT_INIT));
                    counts.executed += 1;
                    if (c >= 2) != ev.taken {
                        counts.mispredicted += 1;
                    }
                    ctr.insert(slot, saturate(c, ev.taken));
                    ghist = ((ghist << 1) | u64::from(ev.taken)) & hist_mask;
                }
            }
            DynSpec::Perceptron {
                history,
                table_bits,
            } => {
                let mask = (1u64 << table_bits) - 1;
                let hist_mask = (1u64 << history) - 1;
                let h = history as usize;
                let theta = i64::from(crate::perceptron_theta(history));
                let limit = i64::from(crate::WEIGHT_LIMIT);
                let mut table: HashMap<u64, Vec<i64>> = HashMap::new();
                let mut ghist = 0u64;
                for ev in trace {
                    let slot = u64::from(ev.id.0) & mask;
                    let w = table.entry(slot).or_insert_with(|| vec![0; h + 1]);
                    let mut y = w[0];
                    for i in 0..h {
                        let x = if (ghist >> i) & 1 == 1 { 1 } else { -1 };
                        y += w[i + 1] * x;
                    }
                    let predicted = y >= 0;
                    counts.executed += 1;
                    if predicted != ev.taken {
                        counts.mispredicted += 1;
                    }
                    if predicted != ev.taken || y.abs() <= theta {
                        let t = if ev.taken { 1 } else { -1 };
                        w[0] = (w[0] + t).clamp(-limit, limit);
                        for i in 0..h {
                            let x = if (ghist >> i) & 1 == 1 { 1 } else { -1 };
                            w[i + 1] = (w[i + 1] + t * x).clamp(-limit, limit);
                        }
                    }
                    ghist = ((ghist << 1) | u64::from(ev.taken)) & hist_mask;
                }
            }
        }
        counts
    }

    /// [`replay`] for a whole spec list, shaped like a zoo report.
    pub fn replay_zoo(specs: &[DynSpec], dirs: &BranchDirs, trace: &[BranchEvent]) -> ZooReport {
        ZooReport {
            entries: specs.iter().map(|&s| (s, replay(s, dirs, trace))).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trace_vm::{BranchEvent, Vm, VmConfig};

    fn compile(src: &str) -> Program {
        mflang::compile(src).expect("test source compiles")
    }

    fn traced_config() -> VmConfig {
        VmConfig {
            fuel: 1_000_000,
            record_branch_trace: true,
            ..VmConfig::default()
        }
    }

    /// A loop whose branch behavior mixes a biased loop branch, an
    /// alternating branch, and a data-dependent one.
    const MIXED: &str = "
        fn main(n: int) {
            var i: int = 0;
            var acc: int = 0;
            while (i < n) {
                if (i % 2 == 0) { acc = acc + 1; }
                if (acc > 7) { acc = acc - 3; }
                i = i + 1;
            }
            emit(acc);
        }
    ";

    #[test]
    fn online_matches_golden_on_both_backends() {
        let program = compile(MIXED);
        let specs = full_zoo();
        let dirs = BranchDirs::of(&program);
        for backend in trace_vm::Backend::ALL {
            let config = VmConfig {
                backend,
                ..traced_config()
            };
            let mut zoo = Zoo::for_program(&specs, &program);
            let run = Vm::with_config(&program, config)
                .run_branches(&[trace_vm::Input::Int(40)], &mut zoo)
                .expect("clean run");
            assert!(!run.branch_trace.is_empty());
            let golden = golden::replay_zoo(&specs, &dirs, &run.branch_trace);
            assert_eq!(zoo.report(), golden, "backend {backend}");
        }
    }

    #[test]
    fn attaching_a_zoo_changes_nothing_observable() {
        let program = compile(MIXED);
        let config = traced_config();
        let plain = Vm::with_config(&program, config)
            .run(&[trace_vm::Input::Int(25)])
            .expect("clean run");
        let mut zoo = Zoo::for_program(&full_zoo(), &program);
        let observed = Vm::with_config(&program, config)
            .run_branches(&[trace_vm::Input::Int(25)], &mut zoo)
            .expect("clean run");
        assert_eq!(plain, observed);
        let report = zoo.report();
        let executed = report.entries[0].1.executed;
        assert_eq!(executed, plain.branch_trace.len() as u64);
        for (spec, counts) in &report.entries {
            assert_eq!(counts.executed, executed, "{spec}");
            assert!(counts.mispredicted <= counts.executed, "{spec}");
        }
    }

    #[test]
    fn predictors_learn_a_biased_loop() {
        // A long counted loop: the loop branch is taken ~n times and falls
        // out once, so every learning predictor should beat always-taken's
        // complement and approach perfect.
        let program =
            compile("fn main(n: int) { var i: int = 0; while (i < n) { i = i + 1; } emit(i); }");
        let mut zoo = Zoo::for_program(&full_zoo(), &program);
        Vm::with_config(&program, traced_config())
            .run_branches(&[trace_vm::Input::Int(500)], &mut zoo)
            .expect("clean run");
        let report = zoo.report();
        for spec in [
            DynSpec::TwoBit { table_bits: 12 },
            DynSpec::Gshare {
                history: 8,
                table_bits: 12,
            },
        ] {
            let c = report.get(spec).expect("spec in zoo");
            assert!(
                c.mispredict_rate() < 0.02,
                "{spec}: {} / {}",
                c.mispredicted,
                c.executed
            );
        }
    }

    #[test]
    fn gshare_learns_a_correlated_alternation_two_bit_cannot() {
        // i % 2 alternates every iteration: a local 2-bit counter on one
        // branch thrashes (50% wrong), while one bit of global history
        // makes it perfectly predictable after warmup.
        let program = compile(
            "fn main(n: int) {
                var i: int = 0; var acc: int = 0;
                while (i < n) { if (i % 2 == 0) { acc = acc + 1; } i = i + 1; }
                emit(acc);
            }",
        );
        let mut zoo = Zoo::for_program(
            &[
                DynSpec::TwoBit { table_bits: 12 },
                DynSpec::Gshare {
                    history: 8,
                    table_bits: 12,
                },
            ],
            &program,
        );
        Vm::with_config(&program, traced_config())
            .run_branches(&[trace_vm::Input::Int(400)], &mut zoo)
            .expect("clean run");
        let report = zoo.report();
        let two_bit = report.get(DynSpec::TwoBit { table_bits: 12 }).unwrap();
        let gshare = report
            .get(DynSpec::Gshare {
                history: 8,
                table_bits: 12,
            })
            .unwrap();
        assert!(
            two_bit.mispredict_rate() > 0.2,
            "2-bit should thrash on alternation: {two_bit:?}"
        );
        assert!(
            gshare.mispredict_rate() < 0.05,
            "gshare should learn the alternation: {gshare:?}"
        );
    }

    #[test]
    fn spec_names_round_trip() {
        for spec in full_zoo() {
            let name = spec.name();
            assert_eq!(name.parse::<DynSpec>().unwrap(), spec, "{name}");
        }
        assert!("gshare/h0/t12".parse::<DynSpec>().is_err());
        assert!("gshare/h8".parse::<DynSpec>().is_err());
        assert!("gshare/h8/t99".parse::<DynSpec>().is_err());
        assert!("tage/h8/t8".parse::<DynSpec>().is_err());
        assert!("1bit".parse::<DynSpec>().is_err());
        assert!("1bit/x4".parse::<DynSpec>().is_err());
    }

    #[test]
    fn btfn_uses_layout_directions() {
        // The while-loop branch is backward (taken target at or before its
        // block), so online BTFN with program dirs predicts it taken and
        // its percent-correct is high; with no dirs it predicts not-taken.
        let program =
            compile("fn main(n: int) { var i: int = 0; while (i < n) { i = i + 1; } emit(i); }");
        let spec = [DynSpec::Btfn];
        let mut with = Zoo::for_program(&spec, &program);
        Vm::with_config(&program, traced_config())
            .run_branches(&[trace_vm::Input::Int(100)], &mut with)
            .expect("clean run");
        let mut without = Zoo::new(&spec);
        Vm::with_config(&program, traced_config())
            .run_branches(&[trace_vm::Input::Int(100)], &mut without)
            .expect("clean run");
        let w = with.report().entries[0].1;
        let wo = without.report().entries[0].1;
        assert!(w.mispredict_rate() < 0.1, "{w:?}");
        assert!(wo.mispredict_rate() > 0.9, "{wo:?}");
    }

    fn arb_bool() -> impl Strategy<Value = bool> {
        (0u8..2).prop_map(|b| b == 1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite: the 2-bit counter never leaves 0..=3 for any outcome
        /// sequence.
        #[test]
        fn two_bit_counter_stays_saturated(seq in prop::collection::vec(arb_bool(), 0..64)) {
            let mut c = TWO_BIT_INIT;
            for taken in seq {
                c = two_bit_step(c, taken);
                prop_assert!(c <= 3, "counter escaped its bounds: {c}");
            }
        }

        /// Satellite: the gshare index is always within the table mask for
        /// arbitrary ids, histories, and table sizes.
        #[test]
        fn gshare_index_is_always_in_table(
            id in 0u32..u32::MAX,
            history in 0u64..u64::MAX,
            table_bits in MIN_TABLE_BITS..MAX_TABLE_BITS + 1,
        ) {
            let idx = gshare_index(BranchId(id), history, table_bits);
            prop_assert!(idx < (1usize << table_bits), "{idx} out of 2^{table_bits}");
        }

        /// Satellite: perceptron weight updates clamp to ±WEIGHT_LIMIT, so
        /// neither a weight nor the dot product can overflow i32.
        #[test]
        fn perceptron_weights_never_overflow(
            seq in prop::collection::vec((arb_bool(), 0u32..4), 1..200),
        ) {
            let hist_len = 12u32;
            let specs = [DynSpec::Perceptron { history: hist_len, table_bits: 2 }];
            let mut zoo = Zoo::new(&specs);
            use trace_vm::BranchSink as _;
            for (taken, id) in seq {
                zoo.branch(BranchId(id), taken);
            }
            let State::Perceptron { weights, .. } = &zoo.preds[0].state else {
                unreachable!("spec built a perceptron");
            };
            for &w in weights {
                prop_assert!(w.abs() <= WEIGHT_LIMIT, "weight {w} escaped the clamp");
            }
            // The dot product bound the clamp guarantees:
            let max_dot = (i64::from(hist_len) + 1) * i64::from(WEIGHT_LIMIT);
            prop_assert!(max_dot < i64::from(i32::MAX));
        }

        /// Online and golden agree on arbitrary synthetic traces, for every
        /// spec in the full zoo (the same invariant the fuzz oracle holds
        /// over real program runs).
        #[test]
        fn online_matches_golden_on_synthetic_traces(
            seq in prop::collection::vec((0u32..24, arb_bool()), 0..300),
        ) {
            let trace: Vec<BranchEvent> = seq
                .iter()
                .map(|&(id, taken)| BranchEvent { id: BranchId(id), taken, gap: 0 })
                .collect();
            let specs = full_zoo();
            let dirs = BranchDirs::none();
            let mut zoo = Zoo::new(&specs);
            use trace_vm::BranchSink as _;
            for ev in &trace {
                zoo.branch(ev.id, ev.taken);
            }
            prop_assert_eq!(zoo.report(), golden::replay_zoo(&specs, &dirs, &trace));
        }
    }
}
