//! Property tests for the version-skew remap over generated programs:
//!
//! 1. With identical old/new fingerprints (no edit), `combine_skewed` is
//!    byte-identical to `combine_checked` — skew tolerance costs nothing
//!    on the common path.
//! 2. A rename-only edit salvages 100% of surviving sites: nothing is
//!    orphaned, nothing degrades.
//! 3. Deleting a never-called function salvages 100% of the survivors:
//!    every counted site of a surviving function keeps its counts
//!    (matched or salvaged by fingerprint across the id shift), and only
//!    the deleted function's own sites orphan.
//!
//! Programs are generated with one structurally distinct comparison
//! constant per function, so fingerprints are unique by construction and
//! salvage is deterministic.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ifprob::{combine_checked, combine_skewed, CombineRule};
use mfstale::{edit, remap_counts, site_fingerprints, SiteFp};
use trace_ir::BranchId;
use trace_vm::BranchCounts;

/// A helper function whose branch shapes embed `c`, keeping its
/// fingerprints distinct from every other generated function's.
fn helper_src(i: usize, c: i64) -> String {
    format!(
        "fn h{i}(x: int) -> int {{\n\
         \x20 var s: int = 0;\n\
         \x20 for (var k: int = 0; k < x; k = k + 1) {{\n\
         \x20   if (k < {c}) {{ emit(k); s = s + 1; }} else {{ s = s + k; }}\n\
         \x20 }}\n\
         \x20 return s;\n\
         }}\n"
    )
}

/// A never-called function with its own distinct constant.
fn dead_src(c: i64) -> String {
    format!(
        "fn never_called(z: int) -> int {{\n\
         \x20 if (z > {c}) {{ emit(z); return 1; }}\n\
         \x20 return 0;\n\
         }}\n"
    )
}

/// A whole program: optionally a dead function first (so deleting it
/// shifts every later branch id), `helpers` helper functions, and a main
/// that calls them all under its own branch.
fn program_src(with_dead: bool, helpers: usize) -> String {
    let mut src = String::new();
    if with_dead {
        src.push_str(&dead_src(1000));
    }
    for i in 0..helpers {
        src.push_str(&helper_src(i, 100 + i as i64));
    }
    let calls: Vec<String> = (0..helpers).map(|i| format!("h{i}(j)")).collect();
    src.push_str(&format!(
        "fn main(n: int) {{\n\
         \x20 var t: int = 0;\n\
         \x20 for (var j: int = 0; j < n; j = j + 1) {{\n\
         \x20   if (j < 5) {{ t = t + {}; }} else {{ emit(j); }}\n\
         \x20 }}\n\
         \x20 emit(t);\n\
         }}\n",
        if calls.is_empty() {
            "1".to_string()
        } else {
            calls.join(" + ")
        }
    ));
    src
}

/// Synthetic well-formed counts over `sites`: one `(executed, taken)`
/// pair per site with `taken <= executed`, driven by the generated seed.
fn counts_for(sites: &[BranchId], seed: u64, allow_zero: bool) -> BranchCounts {
    let mut s = seed | 1;
    sites
        .iter()
        .map(|&id| {
            s = s
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x1405_7B7E_F767_814F);
            let executed = if allow_zero { s % 40 } else { 1 + s % 40 };
            let taken = if executed == 0 {
                0
            } else {
                (s >> 32) % (executed + 1)
            };
            (id, executed, taken)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity skew: same fingerprints on both sides, any mix of
    /// datasets — `combine_skewed` must agree with `combine_checked`
    /// byte for byte, and classify everything as matched.
    #[test]
    fn identity_remap_matches_combine_checked(
        helpers in 1usize..4,
        datasets in 1usize..4,
        seed in 0u64..1_000_000,
        rule in 0usize..3,
    ) {
        let src = program_src(false, helpers);
        let program = mflang::compile(&src).expect("generated source compiles");
        let fps = site_fingerprints(&program);
        let sites: Vec<BranchId> = fps.keys().copied().collect();
        prop_assert!(!sites.is_empty());
        let rule = [
            CombineRule::Scaled,
            CombineRule::Unscaled,
            CombineRule::Polling,
        ][rule];

        let profiles: Vec<BranchCounts> = (0..datasets)
            .map(|d| counts_for(&sites, seed.wrapping_add(d as u64), false))
            .collect();
        let refs: Vec<&BranchCounts> = profiles.iter().collect();

        let checked = combine_checked(&refs, rule).expect("well-formed");
        let skewed = combine_skewed(&refs, &fps, &fps, rule).expect("well-formed");
        prop_assert_eq!(&skewed.counts, &checked, "identity skew must cost nothing");
        prop_assert!(skewed.report.is_identity(), "{:?}", skewed.report);
        prop_assert_eq!(skewed.report.matched, sites.len() * datasets);
        prop_assert!(skewed.degraded.is_empty(), "{:?}", skewed.degraded);
    }

    /// Rename-only edits keep every site: ids are stable, fingerprints
    /// are rename-blind, so the remap is the identity.
    #[test]
    fn rename_only_edits_salvage_everything(
        helpers in 1usize..4,
        which in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let src = program_src(false, helpers);
        let renamed = edit::rename_fn(&src, &format!("h{}", which % helpers), "zz_renamed");
        prop_assert!(renamed != src, "the rename must hit a function");
        let old_p = mflang::compile(&src).expect("v1 compiles");
        let new_p = mflang::compile(&renamed).expect("v2 compiles");
        let old_fps = site_fingerprints(&old_p);
        let new_fps = site_fingerprints(&new_p);

        let sites: Vec<BranchId> = old_fps.keys().copied().collect();
        let entries: Vec<(BranchId, u64, u64)> =
            counts_for(&sites, seed, true).iter().collect();
        let out = remap_counts(&entries, &old_fps, &new_fps);
        let r = &out.report;
        prop_assert!(r.is_identity(), "rename-only must be identity: {r:?}");
        prop_assert_eq!(r.matched + r.salvaged, entries.len());
        prop_assert_eq!(r.orphaned, 0);
        prop_assert_eq!(out.degraded.len(), 0, "no site may degrade on a rename");
        prop_assert_eq!(out.counts, entries, "counts must survive byte-identical");
    }

    /// Deleting a never-called function shifts every later branch id;
    /// fingerprints must carry 100% of the survivors' counts across the
    /// shift, orphaning exactly the deleted function's own sites.
    #[test]
    fn dead_code_delete_salvages_all_survivors(
        helpers in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let src = program_src(true, helpers);
        let shrunk = edit::delete_fn(&src, "never_called").expect("dead fn exists");
        let old_p = mflang::compile(&src).expect("v1 compiles");
        let new_p = mflang::compile(&shrunk).expect("v2 compiles");
        let old_fps = site_fingerprints(&old_p);
        let new_fps = site_fingerprints(&new_p);
        prop_assert!(old_fps.len() > new_fps.len(), "deletion removes sites");

        // Which old sites belonged to the deleted function?
        let deleted: Vec<BranchId> = old_fps
            .keys()
            .copied()
            .filter(|id| {
                let f = old_p.branch_info[id.index()].func;
                old_p.functions[f.index()].name == "never_called"
            })
            .collect();
        prop_assert!(!deleted.is_empty());

        let sites: Vec<BranchId> = old_fps.keys().copied().collect();
        let entries: Vec<(BranchId, u64, u64)> =
            counts_for(&sites, seed, false).iter().collect();
        let out = remap_counts(&entries, &old_fps, &new_fps);
        let r = &out.report;
        let survivors = entries.len() - deleted.len();
        prop_assert_eq!(
            r.matched + r.salvaged,
            survivors,
            "every survivor must keep its counts: {r:?}"
        );
        prop_assert_eq!(r.orphaned, deleted.len(), "{r:?}");
        prop_assert_eq!(r.degraded, 0, "all new sites are fed: {r:?}");

        // And the carried counts are the survivors' own, re-keyed: the
        // multiset of (fingerprint, executed, taken) triples must be
        // preserved exactly.
        let tag = |fps: &BTreeMap<BranchId, SiteFp>,
                   rows: &[(BranchId, u64, u64)]| {
            let mut v: Vec<(SiteFp, u64, u64)> = rows
                .iter()
                .filter(|(id, ..)| fps.contains_key(id))
                .map(|&(id, e, t)| (fps[&id], e, t))
                .collect();
            v.sort_unstable();
            v
        };
        let old_surviving: Vec<(BranchId, u64, u64)> = entries
            .iter()
            .copied()
            .filter(|(id, ..)| !deleted.contains(id))
            .collect();
        prop_assert_eq!(
            tag(&new_fps, &out.counts),
            tag(&old_fps, &old_surviving),
            "salvage must preserve each survivor's exact counts"
        );
    }
}
