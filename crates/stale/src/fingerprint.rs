//! Structural fingerprints of functions and branch sites.
//!
//! A fingerprint must survive exactly the edits profile reuse should
//! survive: renaming a function, deleting or adding an *unrelated*
//! function (which renumbers `FuncId`s, `BranchId`s and constant-array
//! indices), and re-lowering. It must *change* whenever the branch itself
//! changes meaning — a different comparison operator, different operands,
//! a different surrounding block. So the hash covers operator shape and
//! CFG context and deliberately excludes every program-global index:
//!
//! * function names (rename salvage),
//! * `FuncId`s and `BranchId`s (renumbered by unrelated deletes),
//! * raw block indices (successors hash as reverse-post-order ordinals),
//! * constant-array indices (the interned *payload* hashes instead),
//! * global slot indices (the slot *name* hashes instead).

use std::collections::BTreeMap;

use trace_ir::{BinOp, Block, BranchId, Function, Instr, Program, Terminator};

/// A 64-bit structural site fingerprint.
pub type SiteFp = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running FNV-1a over little-endian words.
struct H(u64);

impl H {
    fn new(seed: u64) -> Self {
        let mut h = H(FNV_OFFSET);
        h.u64(seed);
        h
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.0 = (self.0 ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
        }
    }
    fn finish(self) -> u64 {
        self.0
    }
}

/// Reverse post-order ordinals for every block, entry first; unreachable
/// blocks are appended in layout order so every block has an ordinal.
fn rpo_ordinals(func: &Function) -> Vec<u32> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS from the entry, successors in declared order.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        let mut succs = Vec::new();
        func.blocks[block]
            .term
            .for_each_successor(|s| succs.push(s.index()));
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(block);
            stack.pop();
        }
    }
    let mut ordinal = vec![u32::MAX; n];
    let reachable = postorder.len() as u32;
    for (i, &b) in postorder.iter().rev().enumerate() {
        ordinal[b] = i as u32;
    }
    let mut next = reachable;
    for o in ordinal.iter_mut() {
        if *o == u32::MAX {
            *o = next;
            next += 1;
        }
    }
    ordinal
}

/// The tag of the comparison operator feeding a branch condition.
///
/// Seeded defect `stale-fingerprint-ignores-operator`: the fingerprint
/// hashes one fixed tag for every comparison, so `<` and `<=` (and any
/// other operator pair) collide — a profile recorded before an operator
/// edit silently salvages onto the changed site, merging counts that
/// describe a different predicate. The `stale-remap` fuzz oracle convicts
/// this by flipping one operator and asserting the site degrades.
fn cmp_tag(op: BinOp) -> u64 {
    #[cfg(feature = "seeded-defects")]
    if op.is_comparison() && mfdefect::active("stale-fingerprint-ignores-operator") {
        return BinOp::Eq as u64;
    }
    op as u64
}

fn instr_shape(h: &mut H, program: &Program, instr: &Instr) {
    match instr {
        Instr::Const { dst, value } => {
            h.u64(1);
            h.u64(u64::from(dst.0));
            match value {
                trace_ir::Value::Int(i) => {
                    h.u64(0);
                    h.u64(*i as u64);
                }
                trace_ir::Value::Float(f) => {
                    h.u64(1);
                    h.u64(f.to_bits());
                }
            }
        }
        Instr::Unop { dst, op, src } => {
            h.u64(2);
            h.u64(u64::from(dst.0));
            h.u64(*op as u64);
            h.u64(u64::from(src.0));
        }
        Instr::Binop { dst, op, lhs, rhs } => {
            h.u64(3);
            h.u64(u64::from(dst.0));
            h.u64(cmp_tag(*op));
            h.u64(u64::from(lhs.0));
            h.u64(u64::from(rhs.0));
        }
        Instr::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            h.u64(4);
            h.u64(u64::from(dst.0));
            h.u64(u64::from(cond.0));
            h.u64(u64::from(if_true.0));
            h.u64(u64::from(if_false.0));
        }
        Instr::Mov { dst, src } => {
            h.u64(5);
            h.u64(u64::from(dst.0));
            h.u64(u64::from(src.0));
        }
        Instr::Load { dst, arr, index } => {
            h.u64(6);
            h.u64(u64::from(dst.0));
            h.u64(u64::from(arr.0));
            h.u64(u64::from(index.0));
        }
        Instr::Store { arr, index, src } => {
            h.u64(7);
            h.u64(u64::from(arr.0));
            h.u64(u64::from(index.0));
            h.u64(u64::from(src.0));
        }
        Instr::NewIntArray { dst, len } => {
            h.u64(8);
            h.u64(u64::from(dst.0));
            h.u64(u64::from(len.0));
        }
        Instr::NewFloatArray { dst, len } => {
            h.u64(9);
            h.u64(u64::from(dst.0));
            h.u64(u64::from(len.0));
        }
        Instr::ArrayLen { dst, arr } => {
            h.u64(10);
            h.u64(u64::from(dst.0));
            h.u64(u64::from(arr.0));
        }
        Instr::ConstArray { dst, index } => {
            // Hash the interned payload, not the index: deleting an
            // unrelated function that owned earlier literals renumbers
            // indices but not content. Long payloads hash a prefix plus
            // the length — enough to tell literals apart.
            h.u64(11);
            h.u64(u64::from(dst.0));
            let payload = &program.const_arrays[*index as usize];
            h.u64(payload.len() as u64);
            for &v in payload.iter().take(64) {
                h.u64(v as u64);
            }
        }
        Instr::GlobalGet { dst, global } => {
            h.u64(12);
            h.u64(u64::from(dst.0));
            h.str(&program.globals[global.index()]);
        }
        Instr::GlobalSet { global, src } => {
            h.u64(13);
            h.str(&program.globals[global.index()]);
            h.u64(u64::from(src.0));
        }
        Instr::FuncAddr { dst, func } => {
            h.u64(14);
            h.u64(u64::from(dst.0));
            callee_shape(h, program, func.index());
        }
        Instr::Call { dst, func, args } => {
            h.u64(15);
            h.u64(dst.map_or(u64::MAX, |d| u64::from(d.0)));
            callee_shape(h, program, func.index());
            h.u64(args.len() as u64);
            for a in args {
                h.u64(u64::from(a.0));
            }
        }
        Instr::CallIndirect { dst, target, args } => {
            h.u64(16);
            h.u64(dst.map_or(u64::MAX, |d| u64::from(d.0)));
            h.u64(u64::from(target.0));
            h.u64(args.len() as u64);
            for a in args {
                h.u64(u64::from(a.0));
            }
        }
        Instr::Emit { src } => {
            h.u64(17);
            h.u64(u64::from(src.0));
        }
    }
}

/// A weak callee signature: stable under rename and id renumbering, yet
/// telling most distinct callees apart. Never recursive (a callee's own
/// call sites hash only *their* callees' sizes).
fn callee_shape(h: &mut H, program: &Program, callee: usize) {
    let f = &program.functions[callee];
    h.u64(u64::from(f.num_params));
    h.u64(f.blocks.len() as u64);
    h.u64(f.blocks.iter().map(|b| b.instrs.len() as u64).sum());
}

fn terminator_shape(h: &mut H, term: &Terminator, ordinal: &[u32]) {
    match term {
        Terminator::Jump(t) => {
            h.u64(20);
            h.u64(u64::from(ordinal[t.index()]));
        }
        Terminator::Branch {
            cond,
            taken,
            not_taken,
            ..
        } => {
            // Note: no BranchId — ids renumber under unrelated edits.
            h.u64(21);
            h.u64(u64::from(cond.0));
            h.u64(u64::from(ordinal[taken.index()]));
            h.u64(u64::from(ordinal[not_taken.index()]));
        }
        Terminator::JumpTable {
            index,
            targets,
            default,
        } => {
            h.u64(22);
            h.u64(u64::from(index.0));
            h.u64(targets.len() as u64);
            for t in targets {
                h.u64(u64::from(ordinal[t.index()]));
            }
            h.u64(u64::from(ordinal[default.index()]));
        }
        Terminator::Return { value } => {
            h.u64(23);
            h.u64(value.map_or(u64::MAX, |v| u64::from(v.0)));
        }
    }
}

fn block_shape(h: &mut H, program: &Program, block: &Block, ordinal: &[u32]) {
    h.u64(block.instrs.len() as u64);
    for instr in &block.instrs {
        instr_shape(h, program, instr);
    }
    terminator_shape(h, &block.term, ordinal);
}

/// The structural fingerprint of one function: parameter count plus every
/// block's instruction and terminator shape in reverse post-order. Two
/// functions that differ only in name (or in their position within the
/// program) fingerprint identically.
pub fn function_fingerprint(program: &Program, func: &Function) -> u64 {
    let ordinal = rpo_ordinals(func);
    let mut h = H::new(0x5354_414c_4500_0001); // "STALE",v1
    h.u64(u64::from(func.num_params));
    h.u64(func.blocks.len() as u64);
    // Blocks in RPO: layout renumbering that preserves the CFG is
    // invisible, real structural edits are not.
    let mut order: Vec<usize> = (0..func.blocks.len()).collect();
    order.sort_by_key(|&b| ordinal[b]);
    for b in order {
        block_shape(&mut h, program, &func.blocks[b], &ordinal);
    }
    h.finish()
}

/// The condition-defining instruction's shape: the last instruction in
/// the branch's own block writing the condition register (typically the
/// fused comparison). Hashing it separately makes the *operator* of the
/// branch predicate a first-class fingerprint component.
fn condition_shape(h: &mut H, program: &Program, block: &Block, cond: u32) {
    for instr in block.instrs.iter().rev() {
        if instr.dst().is_some_and(|d| d.0 == cond) {
            instr_shape(h, program, instr);
            return;
        }
    }
    h.u64(0); // condition defined upstream (parameter or earlier block)
}

fn term_tag(term: &Terminator) -> u64 {
    match term {
        Terminator::Jump(_) => 20,
        Terminator::Branch { .. } => 21,
        Terminator::JumpTable { .. } => 22,
        Terminator::Return { .. } => 23,
    }
}

/// Per-branch-site structural fingerprints for every live conditional
/// branch of `program`, keyed by [`BranchId`].
///
/// A site's fingerprint is deliberately *local*: a weak signature of the
/// enclosing function (sizes, not content), the branch kind, the
/// condition-defining instruction (operator shape), the branch's own
/// block, whether the taken edge closes a loop, and coarse summaries of
/// both successor blocks. Locality is what makes degradation *per-site*:
/// editing one predicate invalidates that site alone, while its loop
/// header two blocks away keeps its accumulated counts. Identical twin
/// sites (duplicated code) get equal fingerprints; the remapper
/// disambiguates them by id order.
pub fn site_fingerprints(program: &Program) -> BTreeMap<BranchId, SiteFp> {
    let mut map = BTreeMap::new();
    for func in &program.functions {
        let ordinal = rpo_ordinals(func);
        for (bi, block) in func.blocks.iter().enumerate() {
            let Terminator::Branch {
                cond,
                id,
                taken,
                not_taken,
            } = block.term
            else {
                continue;
            };
            let mut h = H::new(0x5354_414c_4500_0002);
            // Weak function signature: enough to keep most cross-function
            // collisions apart without inheriting every edit the function
            // ever sees.
            h.u64(u64::from(func.num_params));
            h.u64(func.blocks.len() as u64);
            h.u64(func.blocks.iter().map(|b| b.instrs.len() as u64).sum());
            h.u64(program.branch_info[id.0 as usize].kind as u64);
            condition_shape(&mut h, program, block, cond.0);
            block_shape(&mut h, program, block, &ordinal);
            // Loop-closure flag (relational, not positional) plus coarse
            // successor summaries — sizes and terminator tags only, so a
            // change *inside* a neighbouring block degrades only that
            // block's own site.
            h.u64(u64::from(ordinal[taken.index()] <= ordinal[bi]));
            for succ in [taken, not_taken] {
                let s = &func.blocks[succ.index()];
                h.u64(s.instrs.len() as u64);
                h.u64(term_tag(&s.term));
            }
            map.insert(id, h.finish());
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        mflang::compile(src).expect("test source compiles")
    }

    #[test]
    fn fingerprints_are_deterministic_and_cover_live_sites() {
        let src = "
fn f(a: int) -> int { if (a < 3) { return 1; } return 2; }
fn main(n: int) { emit(f(n)); }
";
        let p = compile(src);
        let a = site_fingerprints(&p);
        let b = site_fingerprints(&compile(src));
        assert_eq!(a, b);
        assert_eq!(a.len(), p.live_branches().len());
    }

    #[test]
    fn rename_preserves_every_fingerprint() {
        let src = "
fn f(a: int) -> int { if (a < 3) { return 1; } return 2; }
fn main(n: int) { emit(f(n)); }
";
        let renamed = crate::edit::rename_fn(src, "f", "g"); // definition + call sites
        let a: Vec<SiteFp> = site_fingerprints(&compile(src)).into_values().collect();
        let b: Vec<SiteFp> = site_fingerprints(&compile(&renamed))
            .into_values()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn operator_perturbs_the_fingerprint() {
        let a = compile("fn main(n: int) { if (n < 3) { emit(1); } else { emit(0); } }");
        let b = compile("fn main(n: int) { if (n <= 3) { emit(1); } else { emit(0); } }");
        let fa: Vec<SiteFp> = site_fingerprints(&a).into_values().collect();
        let fb: Vec<SiteFp> = site_fingerprints(&b).into_values().collect();
        assert_eq!(fa.len(), fb.len());
        assert_ne!(fa, fb, "comparison operator must be fingerprinted");
    }

    #[test]
    fn operand_perturbs_the_fingerprint() {
        let a = compile("fn main(n: int) { if (n < 3) { emit(1); } else { emit(0); } }");
        let b = compile("fn main(n: int) { if (n < 4) { emit(1); } else { emit(0); } }");
        assert_ne!(
            site_fingerprints(&a).into_values().collect::<Vec<_>>(),
            site_fingerprints(&b).into_values().collect::<Vec<_>>()
        );
    }

    #[test]
    fn function_fingerprint_ignores_name() {
        let p1 = compile("fn aaa(x: int) -> int { return x + 1; } fn main(n: int) { emit(n); }");
        let p2 = compile("fn zzz(x: int) -> int { return x + 1; } fn main(n: int) { emit(n); }");
        assert_eq!(
            function_fingerprint(&p1, &p1.functions[0]),
            function_fingerprint(&p2, &p2.functions[0])
        );
    }
}
