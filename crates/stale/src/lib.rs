#![warn(missing_docs)]

//! # mfstale
//!
//! Version-skew-tolerant profile reuse.
//!
//! The paper's central claim — profiles from previous runs keep predicting
//! later runs — is only useful in deployment if "later run" may be a *later
//! build*: the program edited, functions renamed, dead code deleted. A
//! profile keyed by raw [`BranchId`]s breaks the moment lowering renumbers
//! anything. This crate gives every conditional branch a **structural
//! fingerprint** computed from the lowered IR — operator shape and CFG
//! context, never block indices or function ids — and uses fingerprint
//! equality to carry accumulated counts across program versions:
//!
//! * **exact match** — same branch id, same fingerprint: counts reused
//!   verbatim.
//! * **salvage** — the id moved (function renamed or re-numbered) but a
//!   structurally identical site exists: counts follow the fingerprint.
//! * **degrade** — a live site with no structural ancestor: no counts are
//!   invented; the caller falls back to the static prediction tier
//!   (interval proofs → ML model → BTFN).
//! * **orphan** — recorded counts whose site no longer exists: dropped,
//!   and *counted* as dropped.
//!
//! Every remap returns a typed [`SkewReport`] so a divergence from the
//! byte-identical case is always attributed, never silent.

use std::collections::BTreeMap;

use trace_ir::{BranchId, Program};

pub mod edit;
mod fingerprint;

pub use fingerprint::{function_fingerprint, site_fingerprints, SiteFp};

/// How a fingerprint-driven remap classified every site, old and new.
///
/// The counts partition the *old* profile entries (`matched + salvaged +
/// orphaned == old entries`) and separately tally the new program's sites
/// that came up empty (`degraded`). `unverified` is the subset of
/// `matched` that carried no stored fingerprint (legacy frames): the id
/// still exists, so the counts are reused, but structural identity could
/// not be checked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkewReport {
    /// Old entries whose id is live in the new program with an equal
    /// fingerprint (or a legacy entry with no fingerprint — see
    /// `unverified`).
    pub matched: usize,
    /// Old entries whose id is gone (or structurally changed) but whose
    /// fingerprint matched an otherwise-unclaimed new site.
    pub salvaged: usize,
    /// Old entries with no structural counterpart: dropped.
    pub orphaned: usize,
    /// Live new sites with neither counts nor a structural ancestor in
    /// the old program — callers degrade these to the static prediction
    /// tier. (A never-executed site the old program also had is *not*
    /// degraded: the profile is silent about it in both versions.)
    pub degraded: usize,
    /// Matched entries that carried no stored fingerprint (legacy
    /// pre-fingerprint frames): reused by id, structurally unverified.
    pub unverified: usize,
}

impl SkewReport {
    /// Total old entries classified.
    pub fn old_entries(&self) -> usize {
        self.matched + self.salvaged + self.orphaned
    }

    /// Fraction of old entries whose counts were reused (matched or
    /// salvaged). 1.0 for an empty profile.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.old_entries();
        if total == 0 {
            1.0
        } else {
            (self.matched + self.salvaged) as f64 / total as f64
        }
    }

    /// True when the remap was a pure identity: every old entry matched
    /// exactly (fingerprint verified) and no live site degraded.
    pub fn is_identity(&self) -> bool {
        self.salvaged == 0 && self.orphaned == 0 && self.degraded == 0 && self.unverified == 0
    }

    /// Accumulates another report into this one (per-dataset reports fold
    /// into a whole-database report).
    pub fn merge(&mut self, other: &SkewReport) {
        self.matched += other.matched;
        self.salvaged += other.salvaged;
        self.orphaned += other.orphaned;
        self.degraded += other.degraded;
        self.unverified += other.unverified;
    }
}

impl std::fmt::Display for SkewReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} matched, {} salvaged, {} degraded, {} orphaned",
            self.matched, self.salvaged, self.degraded, self.orphaned
        )?;
        if self.unverified > 0 {
            write!(f, " ({} unverified legacy)", self.unverified)?;
        }
        Ok(())
    }
}

/// The result of remapping one profile onto a (possibly edited) program.
#[derive(Clone, Debug, PartialEq)]
pub struct RemapOutcome {
    /// The reusable counts, keyed by the *new* program's branch ids,
    /// sorted by id.
    pub counts: Vec<(BranchId, u64, u64)>,
    /// How every site was classified.
    pub report: SkewReport,
    /// Live new sites with no reused counts, sorted — the per-site static
    /// fallback list (interval proofs → ML → BTFN).
    pub degraded: Vec<BranchId>,
}

/// Remaps recorded `(branch, executed, taken)` entries onto the site set
/// described by `new_fps` (from [`site_fingerprints`] of the current
/// program).
///
/// `old_fps` holds the fingerprints stored alongside the counts; entries
/// absent from it are legacy records remapped by id alone (tallied as
/// `unverified`). The remap never invents counts and never merges two old
/// entries into one new site: fingerprint groups are paired in ascending
/// id order, so an unedited program remaps to itself exactly.
pub fn remap_counts(
    old_entries: &[(BranchId, u64, u64)],
    old_fps: &BTreeMap<BranchId, SiteFp>,
    new_fps: &BTreeMap<BranchId, SiteFp>,
) -> RemapOutcome {
    let mut report = SkewReport::default();
    let mut counts: BTreeMap<BranchId, (u64, u64)> = BTreeMap::new();
    let mut claimed: BTreeMap<BranchId, ()> = BTreeMap::new();
    // Pass 1: exact matches (same id, fingerprint equal or unverifiable).
    let mut leftovers: Vec<(BranchId, u64, u64, SiteFp)> = Vec::new();
    for &(id, executed, taken) in old_entries {
        match (old_fps.get(&id), new_fps.get(&id)) {
            (Some(&old_fp), Some(&new_fp)) if old_fp == new_fp => {
                report.matched += 1;
                let e = counts.entry(id).or_insert((0, 0));
                e.0 += executed;
                e.1 += taken;
                claimed.insert(id, ());
            }
            (None, Some(_)) => {
                // Legacy entry: the id is live, reuse by id but flag it.
                report.matched += 1;
                report.unverified += 1;
                let e = counts.entry(id).or_insert((0, 0));
                e.0 += executed;
                e.1 += taken;
                claimed.insert(id, ());
            }
            (Some(&old_fp), _) => leftovers.push((id, executed, taken, old_fp)),
            (None, None) => {
                report.orphaned += 1;
            }
        }
    }
    // Pass 2: salvage by fingerprint equality. Unclaimed new sites are
    // grouped by fingerprint; leftovers pair with them in ascending id
    // order on both sides, so duplicated shapes resolve deterministically.
    let mut free: BTreeMap<SiteFp, Vec<BranchId>> = BTreeMap::new();
    for (&id, &fp) in new_fps {
        if !claimed.contains_key(&id) {
            free.entry(fp).or_default().push(id);
        }
    }
    for v in free.values_mut() {
        v.sort();
        v.reverse(); // pop() yields the smallest id first
    }
    leftovers.sort_by_key(|&(id, ..)| id);
    for (_, executed, taken, fp) in leftovers {
        match free.get_mut(&fp).and_then(Vec::pop) {
            Some(new_id) => {
                report.salvaged += 1;
                let e = counts.entry(new_id).or_insert((0, 0));
                e.0 += executed;
                e.1 += taken;
                claimed.insert(new_id, ());
            }
            None => report.orphaned += 1,
        }
    }
    // Pass 3: live sites that came up empty. A site whose fingerprint the
    // old program also carried — beyond the fingerprints consumed by
    // counted entries — is a structurally known, never-executed site: the
    // profile is silent about it in both versions, so it is not degraded.
    // Only sites with no structural ancestor at all fall to the static
    // tier.
    let counted: std::collections::BTreeSet<BranchId> =
        old_entries.iter().map(|&(id, ..)| id).collect();
    let mut spare: BTreeMap<SiteFp, usize> = BTreeMap::new();
    for (id, &fp) in old_fps {
        if !counted.contains(id) {
            *spare.entry(fp).or_default() += 1;
        }
    }
    let mut degraded: Vec<BranchId> = Vec::new();
    for (&id, fp) in new_fps {
        if claimed.contains_key(&id) {
            continue;
        }
        match spare.get_mut(fp) {
            Some(n) if *n > 0 => *n -= 1,
            _ => degraded.push(id),
        }
    }
    report.degraded = degraded.len();
    RemapOutcome {
        counts: counts.into_iter().map(|(id, (e, t))| (id, e, t)).collect(),
        report,
        degraded,
    }
}

/// [`remap_counts`] against a program: computes the target fingerprints
/// and remaps in one step.
pub fn remap_onto_program(
    old_entries: &[(BranchId, u64, u64)],
    old_fps: &BTreeMap<BranchId, SiteFp>,
    program: &Program,
) -> RemapOutcome {
    remap_counts(old_entries, old_fps, &site_fingerprints(program))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        mflang::compile(src).expect("test source compiles")
    }

    const BASE: &str = "
fn helper(x: int) -> int {
    var s: int = 0;
    for (var i: int = 0; i < x; i = i + 1) {
        if (i > 3) { s = s + 2; } else { s = s + 1; }
    }
    return s;
}
fn main(n: int) {
    if (n < 10) { emit(helper(n)); } else { emit(0 - 1); }
}
";

    fn fake_counts(fps: &BTreeMap<BranchId, SiteFp>) -> Vec<(BranchId, u64, u64)> {
        fps.keys()
            .enumerate()
            .map(|(i, &id)| (id, 100 + i as u64, 40 + i as u64))
            .collect()
    }

    #[test]
    fn identity_remap_is_exact() {
        let p = compile(BASE);
        let fps = site_fingerprints(&p);
        assert!(!fps.is_empty());
        let old = fake_counts(&fps);
        let out = remap_counts(&old, &fps, &fps);
        assert!(out.report.is_identity(), "{}", out.report);
        assert_eq!(out.report.matched, old.len());
        assert_eq!(out.counts, old);
        assert!(out.degraded.is_empty());
    }

    #[test]
    fn rename_only_salvages_every_site() {
        let p = compile(BASE);
        let renamed = compile(&edit::rename_fn(BASE, "helper", "assistant"));
        let old_fps = site_fingerprints(&p);
        let new_fps = site_fingerprints(&renamed);
        let old = fake_counts(&old_fps);
        let out = remap_counts(&old, &old_fps, &new_fps);
        assert_eq!(out.report.orphaned, 0, "{}", out.report);
        assert_eq!(out.report.degraded, 0, "{}", out.report);
        assert_eq!(out.report.matched + out.report.salvaged, old.len());
        // The remapped totals are a permutation of the originals.
        let mut want: Vec<(u64, u64)> = old.iter().map(|&(_, e, t)| (e, t)).collect();
        let mut got: Vec<(u64, u64)> = out.counts.iter().map(|&(_, e, t)| (e, t)).collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
    }

    #[test]
    fn deleting_dead_code_salvages_survivors() {
        let with_dead = format!(
            "fn dead_gadget(z: int) -> int {{ if (z > 0) {{ return 1; }} return 0; }}\n{BASE}"
        );
        let p = compile(&with_dead);
        let edited = compile(&edit::delete_fn(&with_dead, "dead_gadget").expect("fn found"));
        let old_fps = site_fingerprints(&p);
        let new_fps = site_fingerprints(&edited);
        assert!(new_fps.len() < old_fps.len());
        let old = fake_counts(&old_fps);
        let out = remap_counts(&old, &old_fps, &new_fps);
        // Exactly the deleted function's sites orphan; every survivor is
        // matched or salvaged and no live site degrades.
        assert_eq!(out.report.orphaned, old_fps.len() - new_fps.len());
        assert_eq!(out.report.degraded, 0, "{}", out.report);
        assert_eq!(
            out.report.matched + out.report.salvaged,
            new_fps.len(),
            "{}",
            out.report
        );
    }

    #[test]
    fn appended_function_degrades_only_new_sites() {
        let p = compile(BASE);
        let extended = compile(&edit::append_fn(
            BASE,
            "fn extra(k: int) -> int { if (k == 7) { return 1; } return 0; }",
        ));
        let old_fps = site_fingerprints(&p);
        let new_fps = site_fingerprints(&extended);
        let added = new_fps.len() - old_fps.len();
        assert!(added >= 1);
        let old = fake_counts(&old_fps);
        let out = remap_counts(&old, &old_fps, &new_fps);
        assert_eq!(out.report.orphaned, 0, "{}", out.report);
        assert_eq!(out.report.matched + out.report.salvaged, old.len());
        assert_eq!(out.report.degraded, added, "{}", out.report);
        assert!((out.report.reuse_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn operator_change_degrades_the_site() {
        let p = compile(BASE);
        // Target a predicate that lowers to a real branch: main's `if` has
        // calls in its arms, so it cannot be converted to a select the way
        // helper's `if (i > 3)` is.
        let flipped = compile(&edit::replace_once(BASE, "(n < 10)", "(n <= 10)").expect("marker"));
        let old_fps = site_fingerprints(&p);
        let new_fps = site_fingerprints(&flipped);
        let old = fake_counts(&old_fps);
        let out = remap_counts(&old, &old_fps, &new_fps);
        // The operator-changed site must NOT inherit foreign counts: one
        // old entry orphans, one new site degrades.
        assert_eq!(out.report.orphaned, 1, "{}", out.report);
        assert_eq!(out.report.degraded, 1, "{}", out.report);
        assert_eq!(out.degraded.len(), 1);
    }

    #[test]
    fn never_executed_sites_do_not_degrade() {
        // Counts cover only some sites (the rest never executed), but the
        // stored fingerprints describe the whole old program: the
        // zero-count sites are structurally known, so an identity remap
        // stays an identity and nothing degrades.
        let p = compile(BASE);
        let fps = site_fingerprints(&p);
        assert!(fps.len() >= 2);
        let partial: Vec<(BranchId, u64, u64)> = fake_counts(&fps).into_iter().take(1).collect();
        let out = remap_counts(&partial, &fps, &fps);
        assert!(out.report.is_identity(), "{}", out.report);
        assert_eq!(out.report.matched, 1);
        assert_eq!(out.counts, partial);
        // Without the stored fingerprints (legacy database) the same
        // zero-count sites cannot be verified and do degrade.
        let legacy = remap_counts(&partial, &BTreeMap::new(), &fps);
        assert_eq!(legacy.report.degraded, fps.len() - 1, "{}", legacy.report);
    }

    #[test]
    fn legacy_entries_remap_by_id_as_unverified() {
        let p = compile(BASE);
        let fps = site_fingerprints(&p);
        let old = fake_counts(&fps);
        let out = remap_counts(&old, &BTreeMap::new(), &fps);
        assert_eq!(out.report.matched, old.len());
        assert_eq!(out.report.unverified, old.len());
        assert!(!out.report.is_identity());
        assert_eq!(out.counts, old);
    }

    #[test]
    fn skew_report_arithmetic() {
        let mut a = SkewReport {
            matched: 3,
            salvaged: 1,
            orphaned: 1,
            degraded: 2,
            unverified: 0,
        };
        assert_eq!(a.old_entries(), 5);
        assert!((a.reuse_fraction() - 0.8).abs() < 1e-12);
        let b = SkewReport {
            matched: 2,
            ..SkewReport::default()
        };
        a.merge(&b);
        assert_eq!(a.matched, 5);
        assert_eq!(SkewReport::default().reuse_fraction(), 1.0);
        assert!(SkewReport::default().is_identity());
    }
}
