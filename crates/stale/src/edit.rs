//! Deterministic source-edit scripts for skew experiments.
//!
//! The chaos battery and the proptest suite need *reproducible* program
//! edits expressed over mflang source text: rename a function, delete a
//! dead one, append a new one, tweak one expression. These are pure text
//! transforms — no parser dependency — so they stay cheap enough to run
//! thousands of times inside fuzz loops.

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replace every whole-word occurrence of identifier `from` with `to`.
/// Renames the definition *and* every call site, which is exactly the
/// "rename-only" edit the remapper must fully salvage.
pub fn rename_fn(source: &str, from: &str, to: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < bytes.len() {
        if source[i..].starts_with(from) {
            let before_ok = i == 0 || !is_ident(bytes[i - 1]);
            let end = i + from.len();
            let after_ok = end == bytes.len() || !is_ident(bytes[end]);
            if before_ok && after_ok {
                out.push_str(to);
                i = end;
                continue;
            }
        }
        // Advance one full UTF-8 scalar, not one byte.
        let ch = source[i..].chars().next().unwrap();
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

/// Delete the entire definition of `fn name(...) { ... }` by brace
/// matching. Returns `None` if no such definition exists. Call sites are
/// left untouched, so this is only a *valid* program edit when the
/// function is dead code.
pub fn delete_fn(source: &str, name: &str) -> Option<String> {
    let bytes = source.as_bytes();
    let needle = format!("fn {name}");
    let mut search = 0;
    let start = loop {
        let at = source[search..].find(&needle)? + search;
        let end = at + needle.len();
        // `fn name` must be followed by `(` (possibly after spaces) and
        // preceded by a non-identifier boundary.
        let before_ok = at == 0 || !is_ident(bytes[at.saturating_sub(1)]);
        let mut j = end;
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        if before_ok && j < bytes.len() && bytes[j] == b'(' {
            break at;
        }
        search = end;
    };
    let open = source[start..].find('{')? + start;
    let mut depth = 0usize;
    let mut close = None;
    for (off, b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + off);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let mut out = String::with_capacity(source.len());
    out.push_str(source[..start].trim_end_matches(' '));
    let rest = &source[close + 1..];
    out.push_str(rest.strip_prefix('\n').unwrap_or(rest));
    Some(out)
}

/// Append a new top-level definition to the end of the source.
pub fn append_fn(source: &str, text: &str) -> String {
    let mut out = String::with_capacity(source.len() + text.len() + 2);
    out.push_str(source);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(text);
    out.push('\n');
    out
}

/// Replace the first occurrence of `from` with `to`; `None` if absent.
pub fn replace_once(source: &str, from: &str, to: &str) -> Option<String> {
    let at = source.find(from)?;
    let mut out = String::with_capacity(source.len());
    out.push_str(&source[..at]);
    out.push_str(to);
    out.push_str(&source[at + from.len()..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_respects_word_boundaries() {
        let src = "fn f(x: int) -> int { return frob(x); } fn frob(y: int) -> int { return y; }";
        let out = rename_fn(src, "f", "g");
        assert!(out.contains("fn g(x: int)"));
        assert!(out.contains("return frob(x)"), "frob must not become grob");
        assert!(out.contains("fn frob(y: int)"));
    }

    #[test]
    fn delete_fn_removes_exactly_one_definition() {
        let src = "fn dead(x: int) -> int {\n  if (x > 0) { return 1; }\n  return 0;\n}\nfn main(n: int) { emit(n); }\n";
        let out = delete_fn(src, "dead").expect("dead exists");
        assert!(!out.contains("fn dead"));
        assert!(out.contains("fn main"));
        assert!(mflang::compile(&out).is_ok(), "result still compiles");
    }

    #[test]
    fn delete_fn_missing_is_none() {
        assert!(delete_fn("fn main(n: int) { emit(n); }", "ghost").is_none());
    }

    #[test]
    fn append_and_replace_round_trip() {
        let src = "fn main(n: int) { emit(n); }";
        let grown = append_fn(src, "fn extra(k: int) -> int { return k; }");
        assert!(grown.contains("fn extra"));
        assert!(mflang::compile(&grown).is_ok());
        let swapped = replace_once(&grown, "emit(n)", "emit(n + 1)").unwrap();
        assert!(swapped.contains("emit(n + 1)"));
        assert!(replace_once(src, "absent", "x").is_none());
    }
}
