//! Instruction and terminator definitions.
//!
//! Every [`Instr`] models one RISC-level operation of the Trace: a
//! fixed-format register operation, an explicit load or store, or a call.
//! Terminators model the control transfers the paper classifies as potential
//! *breaks in control*.

use crate::id::{BlockId, BranchId, FuncId, GlobalId, Reg};

/// An immediate constant.
///
/// The Trace's register banks held 32/64-bit integers and IEEE doubles; we
/// collapse the integer widths to `i64` (the paper's instruction counts do not
/// depend on operand width, only on operation count).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also used for booleans: 0 = false).
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Float(_) => None,
        }
    }

    /// Returns the float payload, if this is a [`Value::Float`].
    pub fn as_float(self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(f),
            Value::Int(_) => None,
        }
    }

    /// True iff the value is "truthy" under the IR's branch semantics
    /// (non-zero integer). Floats are never used as branch conditions.
    pub fn is_truthy(self) -> bool {
        matches!(self, Value::Int(i) if i != 0)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

/// Unary RISC operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Float negation.
    FNeg,
    /// Bitwise complement.
    Not,
    /// Logical not: 1 if the operand is integer zero, else 0.
    LNot,
    /// Integer to float conversion.
    IntToFloat,
    /// Float to integer conversion (truncation toward zero).
    FloatToInt,
    /// Square root (the Trace had hardware float units; transcendentals were
    /// library calls, but we count them as single operations to keep guest
    /// numeric kernels' instruction mixes from being dominated by softfloat).
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Floor, returning a float.
    Floor,
    /// Absolute value of an integer.
    Abs,
    /// Absolute value of a float.
    FAbs,
}

/// Binary RISC operations. Comparison operators produce integer 0/1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount taken mod 64).
    Shl,
    /// Arithmetic right shift (shift amount taken mod 64).
    Shr,
    /// Integer equality.
    Eq,
    /// Integer inequality.
    Ne,
    /// Integer signed less-than.
    Lt,
    /// Integer signed less-or-equal.
    Le,
    /// Integer signed greater-than.
    Gt,
    /// Integer signed greater-or-equal.
    Ge,
    /// Float equality.
    FEq,
    /// Float inequality.
    FNe,
    /// Float less-than.
    FLt,
    /// Float less-or-equal.
    FLe,
    /// Float greater-than.
    FGt,
    /// Float greater-or-equal.
    FGe,
    /// Float min (used by numeric kernels).
    FMin,
    /// Float max.
    FMax,
}

impl BinOp {
    /// True for the comparison operators, which always produce integer 0/1.
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe
        )
    }

    /// True for operators that can trap at run time (integer divide by zero).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }
}

/// A straight-line RISC-level operation.
///
/// Each executed `Instr` counts as exactly one instruction in the
/// instructions-per-break metrics, matching the paper's use of Trace
/// RISC-level operation counts.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field/variant names mirror the construct itself
pub enum Instr {
    /// `dst = value` — load an immediate.
    Const { dst: Reg, value: Value },
    /// `dst = op src`.
    Unop { dst: Reg, op: UnOp, src: Reg },
    /// `dst = lhs op rhs`.
    Binop {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
    },
    /// `dst = cond != 0 ? if_true : if_false`.
    ///
    /// The Trace front ends converted some simple `if` statements into this
    /// `select` operation; the paper notes selects were under 0.2–0.7% of
    /// executed instructions. The VM counts them so that ratio can be
    /// reported.
    Select {
        dst: Reg,
        cond: Reg,
        if_true: Reg,
        if_false: Reg,
    },
    /// `dst = src` — register move.
    Mov { dst: Reg, src: Reg },
    /// `dst = arr[index]` — explicit load. `arr` holds an array reference.
    Load { dst: Reg, arr: Reg, index: Reg },
    /// `arr[index] = src` — explicit store.
    Store { arr: Reg, index: Reg, src: Reg },
    /// `dst = new array of `len` integer zeros`.
    NewIntArray { dst: Reg, len: Reg },
    /// `dst = new array of `len` float zeros`.
    NewFloatArray { dst: Reg, len: Reg },
    /// `dst = length of the array referenced by arr`.
    ArrayLen { dst: Reg, arr: Reg },
    /// `dst = reference to interned constant array #index` (string literals).
    ///
    /// Constant arrays are allocated once at program start and are read-only;
    /// storing through such a reference is a runtime error.
    ConstArray { dst: Reg, index: u32 },
    /// `dst = value of global slot`.
    GlobalGet { dst: Reg, global: GlobalId },
    /// `global slot = src`.
    GlobalSet { global: GlobalId, src: Reg },
    /// `dst = address of function` — makes an indirect-call target value.
    FuncAddr { dst: Reg, func: FuncId },
    /// Direct call. Executing one counts a *direct call* break event, and the
    /// matching return counts a *direct return* event (Figure 1's white
    /// bars).
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Vec<Reg>,
    },
    /// Indirect call through a function value. These and their returns are
    /// the paper's *unavoidable breaks in control*.
    CallIndirect {
        dst: Option<Reg>,
        target: Reg,
        args: Vec<Reg>,
    },
    /// Append a value to the program's output stream (used to validate guest
    /// program behaviour in tests; models writing a result record).
    Emit { src: Reg },
}

impl Instr {
    /// The register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Unop { dst, .. }
            | Instr::Binop { dst, .. }
            | Instr::Select { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::NewIntArray { dst, .. }
            | Instr::NewFloatArray { dst, .. }
            | Instr::ArrayLen { dst, .. }
            | Instr::ConstArray { dst, .. }
            | Instr::GlobalGet { dst, .. }
            | Instr::FuncAddr { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } | Instr::CallIndirect { dst, .. } => *dst,
            Instr::Store { .. } | Instr::GlobalSet { .. } | Instr::Emit { .. } => None,
        }
    }

    /// Calls `f` for every register this instruction reads.
    pub fn for_each_use<F: FnMut(Reg)>(&self, mut f: F) {
        match self {
            Instr::Const { .. } | Instr::ConstArray { .. } | Instr::GlobalGet { .. } => {}
            Instr::FuncAddr { .. } => {}
            Instr::Unop { src, .. } | Instr::Mov { src, .. } => f(*src),
            Instr::Binop { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Instr::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                f(*cond);
                f(*if_true);
                f(*if_false);
            }
            Instr::Load { arr, index, .. } => {
                f(*arr);
                f(*index);
            }
            Instr::Store { arr, index, src } => {
                f(*arr);
                f(*index);
                f(*src);
            }
            Instr::NewIntArray { len, .. } | Instr::NewFloatArray { len, .. } => f(*len),
            Instr::ArrayLen { arr, .. } => f(*arr),
            Instr::GlobalSet { src, .. } => f(*src),
            Instr::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Instr::CallIndirect { target, args, .. } => {
                f(*target);
                for a in args {
                    f(*a);
                }
            }
            Instr::Emit { src } => f(*src),
        }
    }

    /// Rewrites every register (uses and destination) through `map`.
    /// Used by inlining to relocate a callee body into the caller's
    /// register space.
    pub fn map_regs<F: FnMut(Reg) -> Reg>(&mut self, mut map: F) {
        match self {
            Instr::Const { dst, .. }
            | Instr::ConstArray { dst, .. }
            | Instr::GlobalGet { dst, .. }
            | Instr::FuncAddr { dst, .. } => *dst = map(*dst),
            Instr::Unop { dst, src, .. } | Instr::Mov { dst, src } => {
                *dst = map(*dst);
                *src = map(*src);
            }
            Instr::Binop { dst, lhs, rhs, .. } => {
                *dst = map(*dst);
                *lhs = map(*lhs);
                *rhs = map(*rhs);
            }
            Instr::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                *dst = map(*dst);
                *cond = map(*cond);
                *if_true = map(*if_true);
                *if_false = map(*if_false);
            }
            Instr::Load { dst, arr, index } => {
                *dst = map(*dst);
                *arr = map(*arr);
                *index = map(*index);
            }
            Instr::Store { arr, index, src } => {
                *arr = map(*arr);
                *index = map(*index);
                *src = map(*src);
            }
            Instr::NewIntArray { dst, len } | Instr::NewFloatArray { dst, len } => {
                *dst = map(*dst);
                *len = map(*len);
            }
            Instr::ArrayLen { dst, arr } => {
                *dst = map(*dst);
                *arr = map(*arr);
            }
            Instr::GlobalSet { src, .. } => *src = map(*src),
            Instr::Call { dst, args, .. } => {
                if let Some(d) = dst {
                    *d = map(*d);
                }
                for a in args {
                    *a = map(*a);
                }
            }
            Instr::CallIndirect { dst, target, args } => {
                if let Some(d) = dst {
                    *d = map(*d);
                }
                *target = map(*target);
                for a in args {
                    *a = map(*a);
                }
            }
            Instr::Emit { src } => *src = map(*src),
        }
    }

    /// True if deleting this instruction (when its result is unused) changes
    /// observable behaviour. Loads and pure ALU operations are removable;
    /// calls, stores, global writes, allocations and emits are not.
    ///
    /// Allocations are conservatively kept because guest code frequently
    /// threads array references through globals in ways local analysis cannot
    /// see. Integer division is kept because it can trap.
    pub fn has_side_effects(&self) -> bool {
        match self {
            Instr::Store { .. }
            | Instr::GlobalSet { .. }
            | Instr::Call { .. }
            | Instr::CallIndirect { .. }
            | Instr::Emit { .. }
            | Instr::NewIntArray { .. }
            | Instr::NewFloatArray { .. } => true,
            Instr::Binop { op, .. } => op.can_trap(),
            _ => false,
        }
    }
}

/// A block terminator: the control transfers the paper's break-in-control
/// taxonomy classifies.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field/variant names mirror the construct itself
pub enum Terminator {
    /// Unconditional jump — an *avoidable* break (a good ILP compiler
    /// eliminates almost all of them by code layout, per the paper).
    Jump(BlockId),
    /// Conditional branch: to `taken` if `cond` is non-zero, else
    /// `not_taken`. Carries its stable source-level [`BranchId`].
    Branch {
        cond: Reg,
        id: BranchId,
        taken: BlockId,
        not_taken: BlockId,
    },
    /// Multi-way indirect jump through a branch-target table: to
    /// `targets[index]`, or `default` if out of range. Counted as an
    /// *indirect jump* — one of the paper's *unavoidable* breaks. The
    /// `mflang` compiler lowers `switch` to cascaded conditional branches by
    /// default (as the Multiflow compiler did for this experiment); this
    /// terminator exists for the branch-target-table ablation.
    JumpTable {
        index: Reg,
        targets: Vec<BlockId>,
        default: BlockId,
    },
    /// Function return. Whether it counts as a break depends on how the
    /// function was entered (direct vs indirect call) and on the
    /// break-accounting configuration.
    Return { value: Option<Reg> },
}

impl Terminator {
    /// Calls `f` for every successor block.
    pub fn for_each_successor<F: FnMut(BlockId)>(&self, mut f: F) {
        match self {
            Terminator::Jump(t) => f(*t),
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                f(*taken);
                f(*not_taken);
            }
            Terminator::JumpTable {
                targets, default, ..
            } => {
                for t in targets {
                    f(*t);
                }
                f(*default);
            }
            Terminator::Return { .. } => {}
        }
    }

    /// Rewrites every successor block id through `map`.
    pub fn map_successors<F: FnMut(BlockId) -> BlockId>(&mut self, mut map: F) {
        match self {
            Terminator::Jump(t) => *t = map(*t),
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                *taken = map(*taken);
                *not_taken = map(*not_taken);
            }
            Terminator::JumpTable {
                targets, default, ..
            } => {
                for t in targets.iter_mut() {
                    *t = map(*t);
                }
                *default = map(*default);
            }
            Terminator::Return { .. } => {}
        }
    }

    /// Calls `f` for every register the terminator reads.
    pub fn for_each_use<F: FnMut(Reg)>(&self, mut f: F) {
        match self {
            Terminator::Jump(_) => {}
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::JumpTable { index, .. } => f(*index),
            Terminator::Return { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
        }
    }

    /// Rewrites every register the terminator reads through `map`.
    pub fn map_regs<F: FnMut(Reg) -> Reg>(&mut self, mut map: F) {
        match self {
            Terminator::Jump(_) => {}
            Terminator::Branch { cond, .. } => *cond = map(*cond),
            Terminator::JumpTable { index, .. } => *index = map(*index),
            Terminator::Return { value } => {
                if let Some(v) = value {
                    *v = map(*v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Float(1.0).is_truthy());
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(4.0f64), Value::Float(4.0));
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::FGe.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Div.can_trap());
        assert!(!BinOp::FDiv.can_trap());
    }

    #[test]
    fn instr_dst_and_uses() {
        let i = Instr::Binop {
            dst: Reg(2),
            op: BinOp::Add,
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.dst(), Some(Reg(2)));
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(0), Reg(1)]);
        assert!(!i.has_side_effects());

        let s = Instr::Store {
            arr: Reg(0),
            index: Reg(1),
            src: Reg(2),
        };
        assert_eq!(s.dst(), None);
        assert!(s.has_side_effects());

        let d = Instr::Binop {
            dst: Reg(3),
            op: BinOp::Div,
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert!(d.has_side_effects(), "trapping div must be kept");
    }

    #[test]
    fn call_uses_include_target_and_args() {
        let c = Instr::CallIndirect {
            dst: Some(Reg(9)),
            target: Reg(4),
            args: vec![Reg(5), Reg(6)],
        };
        let mut uses = Vec::new();
        c.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(4), Reg(5), Reg(6)]);
        assert_eq!(c.dst(), Some(Reg(9)));
        assert!(c.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Reg(0),
            id: BranchId(0),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        let mut succ = Vec::new();
        t.for_each_successor(|b| succ.push(b));
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);

        let jt = Terminator::JumpTable {
            index: Reg(0),
            targets: vec![BlockId(3), BlockId(4)],
            default: BlockId(5),
        };
        let mut succ = Vec::new();
        jt.for_each_successor(|b| succ.push(b));
        assert_eq!(succ, vec![BlockId(3), BlockId(4), BlockId(5)]);
    }

    #[test]
    fn terminator_map_successors() {
        let mut t = Terminator::Jump(BlockId(1));
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(t, Terminator::Jump(BlockId(11)));
    }
}
