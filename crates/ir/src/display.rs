//! Human-readable IR dumps (`{}` on [`Program`] and [`Function`]).

use std::fmt;

use crate::instr::{Instr, Terminator};
use crate::program::{Function, Program};

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, value } => write!(f, "{dst} = const {value:?}"),
            Instr::Unop { dst, op, src } => write!(f, "{dst} = {op:?} {src}"),
            Instr::Binop { dst, op, lhs, rhs } => write!(f, "{dst} = {op:?} {lhs}, {rhs}"),
            Instr::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => write!(f, "{dst} = select {cond} ? {if_true} : {if_false}"),
            Instr::Mov { dst, src } => write!(f, "{dst} = {src}"),
            Instr::Load { dst, arr, index } => write!(f, "{dst} = load {arr}[{index}]"),
            Instr::Store { arr, index, src } => write!(f, "store {arr}[{index}] = {src}"),
            Instr::NewIntArray { dst, len } => write!(f, "{dst} = new_int_array {len}"),
            Instr::NewFloatArray { dst, len } => write!(f, "{dst} = new_float_array {len}"),
            Instr::ArrayLen { dst, arr } => write!(f, "{dst} = len {arr}"),
            Instr::ConstArray { dst, index } => write!(f, "{dst} = const_array #{index}"),
            Instr::GlobalGet { dst, global } => write!(f, "{dst} = global_get {global}"),
            Instr::GlobalSet { global, src } => write!(f, "global_set {global} = {src}"),
            Instr::FuncAddr { dst, func } => write!(f, "{dst} = addr {func}"),
            Instr::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {func}{args:?}")
                } else {
                    write!(f, "call {func}{args:?}")
                }
            }
            Instr::CallIndirect { dst, target, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call_indirect {target}{args:?}")
                } else {
                    write!(f, "call_indirect {target}{args:?}")
                }
            }
            Instr::Emit { src } => write!(f, "emit {src}"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch {
                cond,
                id,
                taken,
                not_taken,
            } => write!(f, "branch[{id}] {cond} ? {taken} : {not_taken}"),
            Terminator::JumpTable {
                index,
                targets,
                default,
            } => write!(f, "jump_table {index} {targets:?} default {default}"),
            Terminator::Return { value: Some(v) } => write!(f, "return {v}"),
            Terminator::Return { value: None } => write!(f, "return"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({} params, {} regs):",
            self.name, self.num_params, self.num_regs
        )?;
        for (id, block) in self.iter_blocks() {
            writeln!(f, "  {id}:")?;
            for instr in &block.instrs {
                writeln!(f, "    {instr}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: entry {}, {} functions, {} globals, {} branches",
            self.entry,
            self.functions.len(),
            self.globals.len(),
            self.branch_info.len()
        )?;
        for func in &self.functions {
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::program::BranchKind;

    #[test]
    fn dump_contains_expected_fragments() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0);
        let c = f.const_int(1);
        let t = f.new_block();
        let e = f.new_block();
        f.branch(c, t, e, 3, BranchKind::If);
        f.switch_to(t);
        f.emit_value(c);
        f.ret(None);
        f.switch_to(e);
        f.ret(Some(c));
        pb.add_function(f.finish());
        let p = pb.finish("main").unwrap();

        let dump = p.to_string();
        assert!(dump.contains("fn main"));
        assert!(dump.contains("branch[br0]"));
        assert!(dump.contains("emit r0"));
        assert!(dump.contains("return r0"));
        assert!(dump.contains("entry fn0"));
    }
}
