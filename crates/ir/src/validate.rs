//! Structural validation of programs.

use std::error::Error;
use std::fmt;

use crate::id::{BlockId, FuncId, Reg};
use crate::instr::{Instr, Terminator};
use crate::program::Program;

/// A structural defect found while validating a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A function was declared (or named as entry) but never defined.
    UndefinedFunction {
        /// The missing function's name.
        name: String,
    },
    /// A function has no blocks.
    EmptyFunction {
        /// The offending function.
        func: String,
    },
    /// A control transfer targets a block that does not exist.
    BadBlockTarget {
        /// The offending function.
        func: String,
        /// The block containing the transfer.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// An instruction references a register ≥ `num_regs`.
    BadRegister {
        /// The offending function.
        func: String,
        /// The block containing the instruction.
        block: BlockId,
        /// The out-of-range register.
        reg: Reg,
    },
    /// A call references a function id outside the program.
    BadFunctionRef {
        /// The offending function.
        func: String,
        /// The out-of-range callee id.
        callee: FuncId,
    },
    /// A direct call passes the wrong number of arguments.
    ArityMismatch {
        /// The calling function.
        func: String,
        /// The callee's name.
        callee: String,
        /// Arguments passed.
        got: usize,
        /// Parameters expected.
        expected: u32,
    },
    /// A `GlobalGet`/`GlobalSet` references a missing global slot.
    BadGlobalRef {
        /// The offending function.
        func: String,
        /// The out-of-range slot index.
        index: usize,
    },
    /// A `ConstArray` references a missing interned array.
    BadConstArray {
        /// The offending function.
        func: String,
        /// The out-of-range array index.
        index: u32,
    },
    /// A conditional branch carries a [`crate::BranchId`] with no
    /// `branch_info` entry.
    BadBranchId {
        /// The offending function.
        func: String,
        /// The unregistered id's raw index.
        index: usize,
    },
    /// Two live branches share one [`crate::BranchId`].
    DuplicateBranchId {
        /// The shared id's raw index.
        index: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UndefinedFunction { name } => {
                write!(f, "function `{name}` is declared but never defined")
            }
            ValidateError::EmptyFunction { func } => {
                write!(f, "function `{func}` has no blocks")
            }
            ValidateError::BadBlockTarget {
                func,
                block,
                target,
            } => write!(
                f,
                "function `{func}`: {block} transfers to nonexistent {target}"
            ),
            ValidateError::BadRegister { func, block, reg } => {
                write!(f, "function `{func}`: {block} uses unallocated {reg}")
            }
            ValidateError::BadFunctionRef { func, callee } => {
                write!(f, "function `{func}` calls nonexistent {callee}")
            }
            ValidateError::ArityMismatch {
                func,
                callee,
                got,
                expected,
            } => write!(
                f,
                "function `{func}` calls `{callee}` with {got} arguments, expected {expected}"
            ),
            ValidateError::BadGlobalRef { func, index } => {
                write!(
                    f,
                    "function `{func}` references nonexistent global slot {index}"
                )
            }
            ValidateError::BadConstArray { func, index } => {
                write!(
                    f,
                    "function `{func}` references nonexistent constant array {index}"
                )
            }
            ValidateError::BadBranchId { func, index } => {
                write!(
                    f,
                    "function `{func}` has branch with unregistered id br{index}"
                )
            }
            ValidateError::DuplicateBranchId { index } => {
                write!(
                    f,
                    "branch id br{index} appears on more than one live branch"
                )
            }
        }
    }
}

impl Error for ValidateError {}

impl Program {
    /// Checks structural invariants: every transfer targets an existing
    /// block, every register is allocated, every call target exists with
    /// matching arity, every global/constant-array/branch-id reference is in
    /// range, and live branch ids are unique.
    ///
    /// After inlining, several live branches may legitimately share one
    /// source-level id (the inlined copies of one source branch — exactly
    /// the granularity IFPROBBER counted at); use
    /// [`Program::validate_inlined`] for such programs.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        self.validate_impl(false)
    }

    /// [`Program::validate`] minus the unique-live-branch-id check, for
    /// programs where inlining has duplicated source branches.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate_inlined(&self) -> Result<(), ValidateError> {
        self.validate_impl(true)
    }

    fn validate_impl(&self, allow_shared_branch_ids: bool) -> Result<(), ValidateError> {
        let mut seen_branch = vec![false; self.branch_info.len()];
        for func in &self.functions {
            if func.blocks.is_empty() {
                return Err(ValidateError::EmptyFunction {
                    func: func.name.clone(),
                });
            }
            let check_reg = |reg: Reg, block: BlockId| -> Result<(), ValidateError> {
                if reg.0 >= func.num_regs {
                    Err(ValidateError::BadRegister {
                        func: func.name.clone(),
                        block,
                        reg,
                    })
                } else {
                    Ok(())
                }
            };
            for (bi, block) in func.iter_blocks() {
                for instr in &block.instrs {
                    let mut reg_err = None;
                    instr.for_each_use(|r| {
                        if reg_err.is_none() {
                            if let Err(e) = check_reg(r, bi) {
                                reg_err = Some(e);
                            }
                        }
                    });
                    if let Some(e) = reg_err {
                        return Err(e);
                    }
                    if let Some(d) = instr.dst() {
                        check_reg(d, bi)?;
                    }
                    match instr {
                        Instr::Call {
                            func: callee, args, ..
                        } => {
                            let Some(target) = self.functions.get(callee.index()) else {
                                return Err(ValidateError::BadFunctionRef {
                                    func: func.name.clone(),
                                    callee: *callee,
                                });
                            };
                            if args.len() != target.num_params as usize {
                                return Err(ValidateError::ArityMismatch {
                                    func: func.name.clone(),
                                    callee: target.name.clone(),
                                    got: args.len(),
                                    expected: target.num_params,
                                });
                            }
                        }
                        Instr::FuncAddr { func: callee, .. }
                            if callee.index() >= self.functions.len() =>
                        {
                            return Err(ValidateError::BadFunctionRef {
                                func: func.name.clone(),
                                callee: *callee,
                            });
                        }
                        Instr::GlobalGet { global, .. } | Instr::GlobalSet { global, .. }
                            if global.index() >= self.globals.len() =>
                        {
                            return Err(ValidateError::BadGlobalRef {
                                func: func.name.clone(),
                                index: global.index(),
                            });
                        }
                        Instr::ConstArray { index, .. }
                            if *index as usize >= self.const_arrays.len() =>
                        {
                            return Err(ValidateError::BadConstArray {
                                func: func.name.clone(),
                                index: *index,
                            });
                        }
                        _ => {}
                    }
                }
                let mut target_err = None;
                block.term.for_each_successor(|t| {
                    if target_err.is_none() && t.index() >= func.blocks.len() {
                        target_err = Some(ValidateError::BadBlockTarget {
                            func: func.name.clone(),
                            block: bi,
                            target: t,
                        });
                    }
                });
                if let Some(e) = target_err {
                    return Err(e);
                }
                let mut use_err = None;
                block.term.for_each_use(|r| {
                    if use_err.is_none() {
                        if let Err(e) = check_reg(r, bi) {
                            use_err = Some(e);
                        }
                    }
                });
                if let Some(e) = use_err {
                    return Err(e);
                }
                if let Terminator::Branch { id, .. } = block.term {
                    match seen_branch.get_mut(id.index()) {
                        None => {
                            return Err(ValidateError::BadBranchId {
                                func: func.name.clone(),
                                index: id.index(),
                            })
                        }
                        Some(seen @ false) => *seen = true,
                        Some(_) if allow_shared_branch_ids => {}
                        Some(_) => {
                            return Err(ValidateError::DuplicateBranchId { index: id.index() })
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{BranchId, GlobalId};
    use crate::instr::Value;
    use crate::program::{Block, BranchInfo, BranchKind, Function};

    fn func(name: &str, num_regs: u32, blocks: Vec<Block>) -> Function {
        Function {
            name: name.to_string(),
            num_params: 0,
            num_regs,
            blocks,
        }
    }

    fn wrap(f: Function) -> Program {
        Program {
            functions: vec![f],
            entry: FuncId(0),
            globals: Vec::new(),
            const_arrays: Vec::new(),
            branch_info: vec![BranchInfo {
                func: FuncId(0),
                line: 0,
                kind: BranchKind::Synthetic,
            }],
        }
    }

    #[test]
    fn valid_program_passes() {
        let f = func(
            "main",
            1,
            vec![Block {
                instrs: vec![Instr::Const {
                    dst: Reg(0),
                    value: Value::Int(0),
                }],
                term: Terminator::Return {
                    value: Some(Reg(0)),
                },
            }],
        );
        assert_eq!(wrap(f).validate(), Ok(()));
    }

    #[test]
    fn empty_function_rejected() {
        let p = wrap(func("main", 0, Vec::new()));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::EmptyFunction { .. })
        ));
    }

    #[test]
    fn bad_block_target_rejected() {
        let f = func("main", 0, vec![Block::new(Terminator::Jump(BlockId(5)))]);
        assert!(matches!(
            wrap(f).validate(),
            Err(ValidateError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn unallocated_register_rejected() {
        let f = func(
            "main",
            1,
            vec![Block {
                instrs: vec![Instr::Mov {
                    dst: Reg(0),
                    src: Reg(3),
                }],
                term: Terminator::Return { value: None },
            }],
        );
        assert!(matches!(
            wrap(f).validate(),
            Err(ValidateError::BadRegister { reg: Reg(3), .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let callee = Function {
            name: "callee".to_string(),
            num_params: 2,
            num_regs: 2,
            blocks: vec![Block::new(Terminator::Return { value: None })],
        };
        let caller = func(
            "main",
            1,
            vec![Block {
                instrs: vec![Instr::Call {
                    dst: None,
                    func: FuncId(0),
                    args: vec![Reg(0)],
                }],
                term: Terminator::Return { value: None },
            }],
        );
        let p = Program {
            functions: vec![callee, caller],
            entry: FuncId(1),
            globals: Vec::new(),
            const_arrays: Vec::new(),
            branch_info: Vec::new(),
        };
        assert!(matches!(
            p.validate(),
            Err(ValidateError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            })
        ));
    }

    #[test]
    fn bad_global_rejected() {
        let f = func(
            "main",
            1,
            vec![Block {
                instrs: vec![Instr::GlobalGet {
                    dst: Reg(0),
                    global: GlobalId(0),
                }],
                term: Terminator::Return { value: None },
            }],
        );
        assert!(matches!(
            wrap(f).validate(),
            Err(ValidateError::BadGlobalRef { .. })
        ));
    }

    #[test]
    fn duplicate_branch_id_rejected() {
        let mk_branch_block = || Block {
            instrs: vec![Instr::Const {
                dst: Reg(0),
                value: Value::Int(1),
            }],
            term: Terminator::Branch {
                cond: Reg(0),
                id: BranchId(0),
                taken: BlockId(2),
                not_taken: BlockId(2),
            },
        };
        let f = Function {
            name: "main".to_string(),
            num_params: 0,
            num_regs: 1,
            blocks: vec![
                mk_branch_block(),
                mk_branch_block(),
                Block::new(Terminator::Return { value: None }),
            ],
        };
        assert!(matches!(
            wrap(f).validate(),
            Err(ValidateError::DuplicateBranchId { index: 0 })
        ));
    }

    #[test]
    fn unregistered_branch_id_rejected() {
        let f = Function {
            name: "main".to_string(),
            num_params: 0,
            num_regs: 1,
            blocks: vec![
                Block {
                    instrs: vec![Instr::Const {
                        dst: Reg(0),
                        value: Value::Int(1),
                    }],
                    term: Terminator::Branch {
                        cond: Reg(0),
                        id: BranchId(7),
                        taken: BlockId(1),
                        not_taken: BlockId(1),
                    },
                },
                Block::new(Terminator::Return { value: None }),
            ],
        };
        assert!(matches!(
            wrap(f).validate(),
            Err(ValidateError::BadBranchId { index: 7, .. })
        ));
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = ValidateError::UndefinedFunction {
            name: "f".to_string(),
        };
        assert!(!e.to_string().is_empty());
    }
}
