//! Program, function and block containers.

use std::collections::HashMap;
use std::sync::Arc;

use crate::id::{BlockId, BranchId, FuncId, GlobalId, Reg};
use crate::instr::{Instr, Terminator};

/// What source construct a conditional branch came from.
///
/// The loop/non-loop distinction feeds the paper's "simple opcode heuristics"
/// baseline (predict loop back-edges taken, everything else not-taken), which
/// the authors report loses about a factor of two against profile feedback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// The exit test of a `while`/`for` loop (taken = stay in the loop).
    LoopBack,
    /// An `if`/`else` test.
    If,
    /// One arm of a `switch` lowered to cascaded conditional branches.
    SwitchArm,
    /// A short-circuit `&&`/`||` test.
    ShortCircuit,
    /// Constructed directly through the builder API.
    Synthetic,
}

/// Source-level metadata for one conditional branch, keyed by [`BranchId`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Function the branch appears in.
    pub func: FuncId,
    /// 1-based source line, or 0 for synthetic branches.
    pub line: u32,
    /// The construct the branch implements.
    pub kind: BranchKind,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Straight-line RISC operations.
    pub instrs: Vec<Instr>,
    /// The control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given terminator and no instructions.
    pub fn new(term: Terminator) -> Self {
        Block {
            instrs: Vec::new(),
            term,
        }
    }

    /// Number of RISC-level instructions this block contributes per
    /// execution: its straight-line instructions plus one for the control
    /// transfer itself (compare operations are separate `Binop`s).
    pub fn instr_cost(&self) -> u64 {
        self.instrs.len() as u64 + 1
    }
}

/// A function: an ordered list of basic blocks.
///
/// Block order is meaningful: it reflects source layout, so "backward branch"
/// (taken-target index ≤ current index) identifies loop back-edges for the
/// heuristic predictor baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Number of parameters; parameters arrive in registers `r0..rN`.
    pub num_params: u32,
    /// Total virtual registers used (≥ `num_params`).
    pub num_regs: u32,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable block lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates `(BlockId, &Block)` pairs in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Static count of conditional branches in the function.
    pub fn static_branch_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count()
    }
}

/// A whole program: functions, global slots, interned constant arrays, and
/// the branch-info table.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// All functions; indices are [`FuncId`]s.
    pub functions: Vec<Function>,
    /// The function executed first.
    pub entry: FuncId,
    /// Names of global value slots (all initialized to integer 0).
    pub globals: Vec<String>,
    /// Interned constant integer arrays (string literals etc.). Read-only at
    /// run time, and shared behind `Arc` so executors can map them into
    /// their heaps without copying the payload per run.
    pub const_arrays: Vec<Arc<Vec<i64>>>,
    /// Metadata for every conditional branch ever created, indexed by
    /// [`BranchId`]. Optimizations may delete branches from the CFG but never
    /// remove or renumber entries here.
    pub branch_info: Vec<BranchInfo>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Finds a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Finds a global slot by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g == name)
            .map(GlobalId::from_index)
    }

    /// Total static conditional-branch count across the whole program (live
    /// branches only — branches deleted by optimization are not counted).
    pub fn static_branch_count(&self) -> usize {
        self.functions
            .iter()
            .map(Function::static_branch_count)
            .sum()
    }

    /// Total static RISC-level instruction count (instructions plus one per
    /// terminator).
    pub fn static_instr_count(&self) -> u64 {
        self.functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(Block::instr_cost)
            .sum()
    }

    /// Returns, for every function, the set of live branch ids it still
    /// contains. Useful for comparing compilations.
    pub fn live_branches(&self) -> HashMap<BranchId, FuncId> {
        let mut map = HashMap::new();
        for (fi, f) in self.functions.iter().enumerate() {
            for b in &f.blocks {
                if let Terminator::Branch { id, .. } = b.term {
                    map.insert(id, FuncId::from_index(fi));
                }
            }
        }
        map
    }

    /// Classifies a conditional branch as a loop back-edge by layout: the
    /// branch is "backward" if its taken target does not come after the block
    /// it ends. This is the information the heuristic predictor uses.
    pub fn is_backward_branch(&self, func: FuncId, block: BlockId) -> bool {
        match self.functions[func.index()].blocks[block.index()].term {
            Terminator::Branch { taken, .. } => taken.index() <= block.index(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Value;

    fn tiny_program() -> Program {
        // fn main() { bb0: r0=1; br r0 ? bb0 : bb1 ; bb1: ret }
        let f = Function {
            name: "main".to_string(),
            num_params: 0,
            num_regs: 1,
            blocks: vec![
                Block {
                    instrs: vec![Instr::Const {
                        dst: Reg(0),
                        value: Value::Int(1),
                    }],
                    term: Terminator::Branch {
                        cond: Reg(0),
                        id: BranchId(0),
                        taken: BlockId(0),
                        not_taken: BlockId(1),
                    },
                },
                Block::new(Terminator::Return { value: None }),
            ],
        };
        Program {
            functions: vec![f],
            entry: FuncId(0),
            globals: vec!["g".to_string()],
            const_arrays: vec![Arc::new(vec![104, 105])],
            branch_info: vec![BranchInfo {
                func: FuncId(0),
                line: 1,
                kind: BranchKind::LoopBack,
            }],
        }
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny_program();
        let (id, f) = p.function_by_name("main").unwrap();
        assert_eq!(id, FuncId(0));
        assert_eq!(f.num_regs, 1);
        assert!(p.function_by_name("nope").is_none());
        assert_eq!(p.global_by_name("g"), Some(GlobalId(0)));
        assert_eq!(p.global_by_name("h"), None);
    }

    #[test]
    fn static_counts() {
        let p = tiny_program();
        assert_eq!(p.static_branch_count(), 1);
        // bb0: 1 instr + term, bb1: 0 instrs + term
        assert_eq!(p.static_instr_count(), 3);
    }

    #[test]
    fn live_branch_map() {
        let p = tiny_program();
        let live = p.live_branches();
        assert_eq!(live.len(), 1);
        assert_eq!(live[&BranchId(0)], FuncId(0));
    }

    #[test]
    fn backward_branch_detection() {
        let p = tiny_program();
        // bb0's taken target is bb0 itself -> backward.
        assert!(p.is_backward_branch(FuncId(0), BlockId(0)));
        assert!(!p.is_backward_branch(FuncId(0), BlockId(1)));
    }

    #[test]
    fn new_reg_allocates_sequentially() {
        let mut p = tiny_program();
        let f = &mut p.functions[0];
        assert_eq!(f.new_reg(), Reg(1));
        assert_eq!(f.new_reg(), Reg(2));
        assert_eq!(f.num_regs, 3);
    }

    #[test]
    fn block_cost_includes_terminator() {
        let p = tiny_program();
        assert_eq!(p.functions[0].blocks[0].instr_cost(), 2);
        assert_eq!(p.functions[0].blocks[1].instr_cost(), 1);
    }
}
