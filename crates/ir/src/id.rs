//! Index newtypes used throughout the IR.
//!
//! Each newtype wraps a `u32` index into the corresponding table (functions,
//! blocks, registers, globals, branch-info records). Keeping them distinct
//! types prevents the classic off-by-one-table bugs when five kinds of small
//! integers flow through the same code.

use std::fmt;

macro_rules! index_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`.
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("index exceeds u32::MAX"))
            }

            /// Returns the raw index for table lookups.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

index_newtype!(
    /// Identifies a function within a [`crate::Program`].
    FuncId,
    "fn"
);
index_newtype!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
index_newtype!(
    /// Identifies a virtual register within a [`crate::Function`].
    ///
    /// Registers are function-local and unlimited in number, mirroring the
    /// pre-register-allocation view the Multiflow compiler's IFPROBBER and
    /// Pixie tools operated on.
    Reg,
    "r"
);
index_newtype!(
    /// Identifies a global value slot within a [`crate::Program`].
    GlobalId,
    "g"
);
index_newtype!(
    /// The stable, source-level identity of a conditional branch.
    ///
    /// `BranchId`s are assigned in source order when a program is lowered and
    /// are *never renumbered* by optimization passes; a pass may delete a
    /// branch but must not reuse its id. This is the property that lets a
    /// profile gathered on one compilation of a program predict the branches
    /// of another compilation — the same property the paper's IFPROBBER had
    /// by attaching counters at the source level.
    BranchId,
    "br"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = BranchId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(BlockId(3).to_string(), "bb3");
        assert_eq!(format!("{:?}", FuncId(0)), "fn0");
        assert_eq!(BranchId(9).to_string(), "br9");
        assert_eq!(GlobalId(1).to_string(), "g1");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(BranchId(1) < BranchId(2));
        assert_eq!(BlockId::default(), BlockId(0));
    }

    #[test]
    #[should_panic(expected = "index exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = Reg::from_index(usize::MAX);
    }
}
