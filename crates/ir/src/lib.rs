#![warn(missing_docs)]

//! # trace-ir
//!
//! A RISC-level intermediate representation modeled after the operation set of
//! the Multiflow Trace 14/300, the machine used by Fisher & Freudenberger in
//! *Predicting Conditional Branch Directions From Previous Runs of a Program*
//! (ASPLOS 1992).
//!
//! The paper reports all of its results in counts of RISC-level instructions
//! ("operations" in VLIW terminology): fixed-format three-register operations
//! with memory reached only through explicit loads and stores. This crate
//! provides exactly that vocabulary:
//!
//! * [`Instr`] — straight-line operations (ALU, memory, calls, the Trace's
//!   `select`),
//! * [`Terminator`] — control transfers, each classified by the paper's
//!   taxonomy of *breaks in control* (conditional branches, unconditional
//!   jumps, jump tables standing in for indirect jumps, returns),
//! * [`Function`] / [`Block`] / [`Program`] — a conventional control-flow
//!   graph container,
//! * [`BranchId`] — the *stable, source-level identity* of each conditional
//!   branch. Profiles are keyed by `BranchId`, which mirrors how the paper's
//!   IFPROBBER tool attached counters to source branches so that profile data
//!   survives recompilation and optimization.
//!
//! Programs are usually produced by the `mflang` compiler and executed by the
//! `trace-vm` interpreter, but the [`builder`] module lets tests and examples
//! construct IR directly.
//!
//! ```
//! use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
//! use trace_ir::{BinOp, Value};
//!
//! # fn main() -> Result<(), trace_ir::ValidateError> {
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 0);
//! let one = f.const_val(Value::Int(1));
//! let two = f.const_val(Value::Int(2));
//! let sum = f.binop(BinOp::Add, one, two);
//! f.emit_value(sum);
//! f.ret(Some(sum));
//! pb.add_function(f.finish());
//! let program = pb.finish("main")?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod builder;
mod display;
mod id;
mod instr;
mod program;
mod validate;

pub use id::{BlockId, BranchId, FuncId, GlobalId, Reg};
pub use instr::{BinOp, Instr, Terminator, UnOp, Value};
pub use program::{Block, BranchInfo, BranchKind, Function, Program};
pub use validate::ValidateError;
