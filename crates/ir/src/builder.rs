//! Convenience builders for constructing IR by hand.
//!
//! The `mflang` compiler lowers source through these builders, and tests and
//! examples use them directly. [`ProgramBuilder`] owns program-wide state
//! (function table, globals, interned constant arrays, branch-id allocation);
//! [`FunctionBuilder`] builds one function's CFG.
//!
//! Branch ids inside a [`FunctionBuilder`] are function-local; they are
//! renumbered into the program-wide [`BranchId`] space, in the order functions
//! are added, by [`ProgramBuilder::add_function`]. Renumbering only ever
//! happens here, at construction time, before any profile exists.

use crate::id::{BlockId, BranchId, FuncId, GlobalId, Reg};
use crate::instr::{BinOp, Instr, Terminator, UnOp, Value};
use crate::program::{Block, BranchInfo, BranchKind, Function, Program};
use crate::validate::ValidateError;

/// A finished function plus the source metadata of its branches, awaiting
/// program-wide branch-id assignment.
#[derive(Clone, Debug)]
pub struct FunctionDraft {
    function: Function,
    branch_meta: Vec<(u32, BranchKind)>,
}

/// Builds one [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    num_params: u32,
    num_regs: u32,
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
    current: BlockId,
    branch_meta: Vec<(u32, BranchKind)>,
}

impl FunctionBuilder {
    /// Starts a function with `num_params` parameters (arriving in registers
    /// `r0..rN`). The entry block is created and selected.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        FunctionBuilder {
            name: name.into(),
            num_params,
            num_regs: num_params,
            blocks: vec![(Vec::new(), None)],
            current: BlockId(0),
            branch_meta: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a parameter index.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.num_params, "parameter index out of range");
        Reg(i)
    }

    /// Creates a new, unselected block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push((Vec::new(), None));
        id
    }

    /// Selects the block subsequent instructions are appended to.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.blocks[block.index()].1.is_none(),
            "cannot switch to terminated block {block}"
        );
        self.current = block;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// True if the current block already has a terminator.
    pub fn current_terminated(&self) -> bool {
        self.blocks[self.current.index()].1.is_some()
    }

    /// Appends an instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn push(&mut self, instr: Instr) {
        let (instrs, term) = &mut self.blocks[self.current.index()];
        assert!(term.is_none(), "instruction after terminator");
        instrs.push(instr);
    }

    /// `dst = value`; returns `dst`.
    pub fn const_val(&mut self, value: Value) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Const { dst, value });
        dst
    }

    /// Convenience: integer constant.
    pub fn const_int(&mut self, v: i64) -> Reg {
        self.const_val(Value::Int(v))
    }

    /// Convenience: float constant.
    pub fn const_float(&mut self, v: f64) -> Reg {
        self.const_val(Value::Float(v))
    }

    /// `dst = lhs op rhs`; returns `dst`.
    pub fn binop(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Binop { dst, op, lhs, rhs });
        dst
    }

    /// `dst = op src`; returns `dst`.
    pub fn unop(&mut self, op: UnOp, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Unop { dst, op, src });
        dst
    }

    /// `dst = cond ? a : b`; returns `dst`.
    pub fn select(&mut self, cond: Reg, a: Reg, b: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Select {
            dst,
            cond,
            if_true: a,
            if_false: b,
        });
        dst
    }

    /// `dst = src` into a fresh register; returns `dst`.
    pub fn mov(&mut self, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Mov { dst, src });
        dst
    }

    /// Copies `src` into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: Reg) {
        self.push(Instr::Mov { dst, src });
    }

    /// `dst = arr[index]`; returns `dst`.
    pub fn load(&mut self, arr: Reg, index: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Load { dst, arr, index });
        dst
    }

    /// `arr[index] = src`.
    pub fn store(&mut self, arr: Reg, index: Reg, src: Reg) {
        self.push(Instr::Store { arr, index, src });
    }

    /// Allocates a zeroed integer array of length `len`; returns its ref.
    pub fn new_int_array(&mut self, len: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::NewIntArray { dst, len });
        dst
    }

    /// Allocates a zeroed float array of length `len`; returns its ref.
    pub fn new_float_array(&mut self, len: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::NewFloatArray { dst, len });
        dst
    }

    /// `dst = len(arr)`; returns `dst`.
    pub fn array_len(&mut self, arr: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::ArrayLen { dst, arr });
        dst
    }

    /// Reference to interned constant array `index`; returns the ref.
    pub fn const_array(&mut self, index: u32) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::ConstArray { dst, index });
        dst
    }

    /// Reads a global slot; returns the value register.
    pub fn global_get(&mut self, global: GlobalId) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::GlobalGet { dst, global });
        dst
    }

    /// Writes a global slot.
    pub fn global_set(&mut self, global: GlobalId, src: Reg) {
        self.push(Instr::GlobalSet { global, src });
    }

    /// `dst = &func`; returns `dst`.
    pub fn func_addr(&mut self, func: FuncId) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::FuncAddr { dst, func });
        dst
    }

    /// Direct call returning a value.
    pub fn call(&mut self, func: FuncId, args: Vec<Reg>) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::Call {
            dst: Some(dst),
            func,
            args,
        });
        dst
    }

    /// Direct call discarding any return value.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Reg>) {
        self.push(Instr::Call {
            dst: None,
            func,
            args,
        });
    }

    /// Indirect call through `target`, returning a value.
    pub fn call_indirect(&mut self, target: Reg, args: Vec<Reg>) -> Reg {
        let dst = self.new_reg();
        self.push(Instr::CallIndirect {
            dst: Some(dst),
            target,
            args,
        });
        dst
    }

    /// Appends `src` to the program output stream.
    pub fn emit_value(&mut self, src: Reg) {
        self.push(Instr::Emit { src });
    }

    fn terminate(&mut self, term: Terminator) {
        let (_, slot) = &mut self.blocks[self.current.index()];
        assert!(slot.is_none(), "block terminated twice");
        *slot = Some(term);
    }

    /// Ends the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Ends the current block with a conditional branch carrying source
    /// metadata `(line, kind)` for its future [`BranchId`].
    pub fn branch(
        &mut self,
        cond: Reg,
        taken: BlockId,
        not_taken: BlockId,
        line: u32,
        kind: BranchKind,
    ) {
        let local = BranchId::from_index(self.branch_meta.len());
        self.branch_meta.push((line, kind));
        self.terminate(Terminator::Branch {
            cond,
            id: local,
            taken,
            not_taken,
        });
    }

    /// Ends the current block with a jump-table transfer.
    pub fn jump_table(&mut self, index: Reg, targets: Vec<BlockId>, default: BlockId) {
        self.terminate(Terminator::JumpTable {
            index,
            targets,
            default,
        });
    }

    /// Ends the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.terminate(Terminator::Return { value });
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(self) -> FunctionDraft {
        let blocks: Vec<Block> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, (instrs, term))| Block {
                instrs,
                term: term.unwrap_or_else(|| panic!("block bb{i} has no terminator")),
            })
            .collect();
        FunctionDraft {
            function: Function {
                name: self.name,
                num_params: self.num_params,
                num_regs: self.num_regs,
                blocks,
            },
            branch_meta: self.branch_meta,
        }
    }
}

/// Builds a [`Program`], owning program-wide tables.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Option<Function>>,
    names: Vec<String>,
    globals: Vec<String>,
    const_arrays: Vec<std::sync::Arc<Vec<i64>>>,
    branch_info: Vec<BranchInfo>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Pre-declares a function so its [`FuncId`] can be referenced by calls
    /// before its body exists. The body must be supplied later with
    /// [`ProgramBuilder::define_function`].
    pub fn declare_function(&mut self, name: impl Into<String>) -> FuncId {
        let id = FuncId::from_index(self.functions.len());
        self.functions.push(None);
        self.names.push(name.into());
        id
    }

    /// Declares and defines a function in one step; returns its id.
    pub fn add_function(&mut self, draft: FunctionDraft) -> FuncId {
        let id = self.declare_function(draft.function.name.clone());
        self.define_function(id, draft);
        id
    }

    /// Supplies the body for a pre-declared function, assigning program-wide
    /// branch ids to its branches.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already defined or the draft's name differs from
    /// the declared name.
    pub fn define_function(&mut self, id: FuncId, draft: FunctionDraft) {
        assert!(
            self.functions[id.index()].is_none(),
            "function {id} defined twice"
        );
        assert_eq!(
            self.names[id.index()],
            draft.function.name,
            "draft name does not match declaration"
        );
        let base = self.branch_info.len() as u32;
        let mut function = draft.function;
        for block in &mut function.blocks {
            if let Terminator::Branch { id: local, .. } = &mut block.term {
                *local = BranchId(base + local.0);
            }
        }
        for (line, kind) in draft.branch_meta {
            self.branch_info.push(BranchInfo {
                func: id,
                line,
                kind,
            });
        }
        self.functions[id.index()] = Some(function);
    }

    /// Adds a global slot; returns its id.
    pub fn add_global(&mut self, name: impl Into<String>) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(name.into());
        id
    }

    /// Interns a constant integer array (e.g. a string literal); returns its
    /// index for [`FunctionBuilder::const_array`].
    pub fn intern_array(&mut self, data: Vec<i64>) -> u32 {
        // Deduplicate identical literals, as a string table would.
        if let Some(i) = self.const_arrays.iter().position(|a| **a == data) {
            return i as u32;
        }
        let i = self.const_arrays.len() as u32;
        self.const_arrays.push(std::sync::Arc::new(data));
        i
    }

    /// Interns a string literal as its byte values.
    pub fn intern_str(&mut self, s: &str) -> u32 {
        self.intern_array(s.bytes().map(i64::from).collect())
    }

    /// Assembles and validates the program, with `entry` as the function run
    /// first.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if any function is declared but undefined,
    /// the entry is missing, or the assembled program fails validation.
    pub fn finish(self, entry: &str) -> Result<Program, ValidateError> {
        let mut functions = Vec::with_capacity(self.functions.len());
        for (i, f) in self.functions.into_iter().enumerate() {
            match f {
                Some(f) => functions.push(f),
                None => {
                    return Err(ValidateError::UndefinedFunction {
                        name: self.names[i].clone(),
                    })
                }
            }
        }
        let program = Program {
            entry: FuncId(0),
            functions,
            globals: self.globals,
            const_arrays: self.const_arrays,
            branch_info: self.branch_info,
        };
        let (entry_id, _) =
            program
                .function_by_name(entry)
                .ok_or_else(|| ValidateError::UndefinedFunction {
                    name: entry.to_string(),
                })?;
        let program = Program {
            entry: entry_id,
            ..program
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_function_program() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_function("inc");

        let mut f = FunctionBuilder::new("inc", 1);
        let one = f.const_int(1);
        let sum = f.binop(BinOp::Add, f.param(0), one);
        f.ret(Some(sum));
        pb.define_function(callee, f.finish());

        let mut m = FunctionBuilder::new("main", 0);
        let x = m.const_int(41);
        let y = m.call(callee, vec![x]);
        m.emit_value(y);
        m.ret(Some(y));
        pb.add_function(m.finish());

        let p = pb.finish("main").unwrap();
        assert_eq!(p.entry, FuncId(1));
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn branch_ids_are_program_wide() {
        let mut pb = ProgramBuilder::new();

        for name in ["a", "b"] {
            let mut f = FunctionBuilder::new(name, 0);
            let c = f.const_int(1);
            let t = f.new_block();
            let e = f.new_block();
            f.branch(c, t, e, 10, BranchKind::If);
            f.switch_to(t);
            f.ret(None);
            f.switch_to(e);
            f.ret(None);
            pb.add_function(f.finish());
        }
        let mut m = FunctionBuilder::new("main", 0);
        m.ret(None);
        pb.add_function(m.finish());

        let p = pb.finish("main").unwrap();
        assert_eq!(p.branch_info.len(), 2);
        let live = p.live_branches();
        assert_eq!(live[&BranchId(0)], FuncId(0));
        assert_eq!(live[&BranchId(1)], FuncId(1));
    }

    #[test]
    fn intern_deduplicates() {
        let mut pb = ProgramBuilder::new();
        let a = pb.intern_str("hello");
        let b = pb.intern_str("hello");
        let c = pb.intern_str("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn finish_rejects_missing_entry() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        pb.add_function(f.finish());
        let err = pb.finish("main").unwrap_err();
        assert!(matches!(err, ValidateError::UndefinedFunction { .. }));
    }

    #[test]
    fn finish_rejects_undefined_function() {
        let mut pb = ProgramBuilder::new();
        pb.declare_function("ghost");
        let mut f = FunctionBuilder::new("main", 0);
        f.ret(None);
        pb.add_function(f.finish());
        let err = pb.finish("main").unwrap_err();
        assert!(matches!(err, ValidateError::UndefinedFunction { name } if name == "ghost"));
    }

    #[test]
    #[should_panic(expected = "instruction after terminator")]
    fn push_after_terminator_panics() {
        let mut f = FunctionBuilder::new("f", 0);
        f.ret(None);
        f.const_int(0);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn finish_unterminated_panics() {
        let mut f = FunctionBuilder::new("f", 0);
        f.new_block();
        f.ret(None);
        let _ = f.finish();
    }
}
