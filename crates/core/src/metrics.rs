//! The instructions-per-break metrics.

use trace_vm::RunStats;

use crate::breaks::BreakConfig;
use crate::predictor::{Direction, Predictor};

/// The measured outcome of applying one break-accounting convention (and
/// possibly a predictor) to one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Total RISC-level instructions the run executed.
    pub instrs: u64,
    /// Breaks in control under the chosen convention.
    pub breaks: u64,
    /// Dynamic conditional-branch executions.
    pub branch_execs: u64,
    /// Mispredicted conditional-branch executions (equals `branch_execs`
    /// when the convention counts every branch as a break).
    pub mispredicted: u64,
    /// Unavoidable breaks (indirect jumps/calls and their returns).
    pub unavoidable: u64,
    /// The paper's headline measure: instructions per break in control.
    pub instrs_per_break: f64,
}

impl Metrics {
    /// Fraction of dynamic branch executions predicted correctly — the
    /// traditional measure the paper argues is *wrong* for ILP purposes, but
    /// reports for comparability (fpppp 83% vs li 85%).
    pub fn correct_fraction(&self) -> f64 {
        if self.branch_execs == 0 {
            1.0
        } else {
            1.0 - self.mispredicted as f64 / self.branch_execs as f64
        }
    }
}

fn finish(stats: &RunStats, config: BreakConfig, mispredicted: u64) -> Metrics {
    let events = &stats.events;
    let mut breaks = mispredicted + events.unavoidable();
    if config.direct_calls {
        breaks += events.call_return_traffic();
    }
    if config.jumps {
        breaks += events.jumps;
    }
    let instrs = stats.total_instrs;
    Metrics {
        instrs,
        breaks,
        branch_execs: stats.branches.total_executed(),
        mispredicted,
        unavoidable: events.unavoidable(),
        instrs_per_break: if breaks == 0 {
            instrs as f64
        } else {
            instrs as f64 / breaks as f64
        },
    }
}

/// Evaluates a run with conditional branches predicted by `predictor`.
///
/// Misprediction counting is analytic: a static predictor fixes one
/// direction per branch, so the mispredictions on a recorded run are
/// `taken` or `executed − taken` per branch — no re-execution is needed.
/// When `config.predict` is false the predictor is ignored and every branch
/// execution breaks.
pub fn evaluate(stats: &RunStats, predictor: &Predictor, config: BreakConfig) -> Metrics {
    let mispredicted = if config.predict {
        stats
            .branches
            .iter()
            .map(|(id, e, t)| match predictor.predict(id) {
                Direction::Taken => e - t,
                Direction::NotTaken => t,
            })
            .sum()
    } else {
        stats.branches.total_executed()
    };
    finish(stats, config, mispredicted)
}

/// Evaluates a run with no prediction at all (Figure 1): every conditional
/// branch execution is a break.
pub fn evaluate_unpredicted(stats: &RunStats, config: BreakConfig) -> Metrics {
    finish(
        stats,
        BreakConfig {
            predict: false,
            ..config
        },
        stats.branches.total_executed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::BranchId;
    use trace_vm::{BranchCounts, BreakEvents};

    fn stats(instrs: u64, branches: &[(u32, u64, u64)], events: BreakEvents) -> RunStats {
        RunStats {
            total_instrs: instrs,
            branches: branches
                .iter()
                .map(|&(id, e, t)| (BranchId(id), e, t))
                .collect::<BranchCounts>(),
            events,
            pixie: Default::default(),
        }
    }

    #[test]
    fn unpredicted_counts_every_branch() {
        let s = stats(1000, &[(0, 40, 10)], BreakEvents::default());
        let m = evaluate_unpredicted(&s, BreakConfig::fig1());
        assert_eq!(m.breaks, 40);
        assert_eq!(m.instrs_per_break, 25.0);
    }

    #[test]
    fn perfect_prediction_counts_minority_side() {
        let s = stats(1000, &[(0, 40, 10)], BreakEvents::default());
        let self_pred = Predictor::from_counts(&s.branches, Direction::NotTaken);
        let m = evaluate(&s, &self_pred, BreakConfig::fig2());
        // Majority is not-taken (10/40): mispredicts = 10.
        assert_eq!(m.mispredicted, 10);
        assert_eq!(m.instrs_per_break, 100.0);
        assert_eq!(m.correct_fraction(), 0.75);
    }

    #[test]
    fn wrong_direction_predictor() {
        let s = stats(1000, &[(0, 40, 10)], BreakEvents::default());
        let wrong = Predictor::always(Direction::Taken);
        let m = evaluate(&s, &wrong, BreakConfig::fig2());
        assert_eq!(m.mispredicted, 30);
    }

    #[test]
    fn unavoidable_breaks_always_count() {
        let events = BreakEvents {
            indirect_jumps: 3,
            indirect_calls: 2,
            indirect_returns: 2,
            direct_calls: 10,
            direct_returns: 10,
            jumps: 100,
            selects: 0,
        };
        let s = stats(1000, &[], events);
        let m = evaluate(&s, &Predictor::default(), BreakConfig::fig2());
        assert_eq!(m.breaks, 7);
        assert_eq!(m.unavoidable, 7);
        let m = evaluate(&s, &Predictor::default(), BreakConfig::fig2_with_calls());
        assert_eq!(m.breaks, 27);
        let m = evaluate(
            &s,
            &Predictor::default(),
            BreakConfig {
                jumps: true,
                ..BreakConfig::fig2()
            },
        );
        assert_eq!(m.breaks, 107);
    }

    #[test]
    fn zero_breaks_yields_instrs() {
        let s = stats(500, &[], BreakEvents::default());
        let m = evaluate(&s, &Predictor::default(), BreakConfig::fig2());
        assert_eq!(m.breaks, 0);
        assert_eq!(m.instrs_per_break, 500.0);
        assert_eq!(m.correct_fraction(), 1.0);
    }

    #[test]
    fn predict_false_ignores_predictor() {
        let s = stats(1000, &[(0, 40, 40)], BreakEvents::default());
        let perfect = Predictor::from_counts(&s.branches, Direction::NotTaken);
        let m = evaluate(&s, &perfect, BreakConfig::fig1());
        assert_eq!(m.mispredicted, 40, "fig1 counts all branches");
    }
}
