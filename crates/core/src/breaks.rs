//! Break-in-control accounting conventions.

/// Which control-transfer events count as breaks in control.
///
/// The paper's taxonomy (§2, "Other Breaks in Control"):
///
/// * **Unavoidable** breaks — indirect calls, their returns, and indirect
///   jumps — always count; no compiler trick moves ILP past them.
/// * **Conditional branches** count either all (no prediction, Figure 1) or
///   only when mispredicted (Figure 2 and Table 3).
/// * **Direct calls and returns** are avoidable via inlining; Figure 1 shows
///   both conventions (black vs white bars).
/// * **Unconditional jumps** are avoidable via code layout; the paper
///   assumes a good ILP compiler eliminates them and never counts them. The
///   flag exists for the ablation measuring what that assumption is worth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakConfig {
    /// When true, only mispredicted conditional branches break; when false,
    /// every conditional branch execution breaks.
    pub predict: bool,
    /// Count direct calls and their returns as breaks.
    pub direct_calls: bool,
    /// Count unconditional jumps as breaks.
    pub jumps: bool,
}

impl BreakConfig {
    /// Figure 1, black bars: no prediction; all conditional branches plus
    /// unavoidable breaks.
    pub fn fig1() -> Self {
        BreakConfig {
            predict: false,
            direct_calls: false,
            jumps: false,
        }
    }

    /// Figure 1, white bars: additionally count direct subroutine calls and
    /// returns.
    pub fn fig1_with_calls() -> Self {
        BreakConfig {
            direct_calls: true,
            ..BreakConfig::fig1()
        }
    }

    /// Figures 2–3 and Table 3: branches predicted; mispredictions plus
    /// unavoidable breaks count.
    pub fn fig2() -> Self {
        BreakConfig {
            predict: true,
            direct_calls: false,
            jumps: false,
        }
    }

    /// [`BreakConfig::fig2`] but with direct call/return traffic included —
    /// the "inlining didn't happen" variant the paper discusses when noting
    /// the loss from not inlining is small.
    pub fn fig2_with_calls() -> Self {
        BreakConfig {
            direct_calls: true,
            ..BreakConfig::fig2()
        }
    }
}

impl Default for BreakConfig {
    fn default() -> Self {
        BreakConfig::fig2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!BreakConfig::fig1().predict);
        assert!(!BreakConfig::fig1().direct_calls);
        assert!(BreakConfig::fig1_with_calls().direct_calls);
        assert!(BreakConfig::fig2().predict);
        assert!(BreakConfig::fig2_with_calls().direct_calls);
        assert_eq!(BreakConfig::default(), BreakConfig::fig2());
        assert!(!BreakConfig::fig2().jumps, "the paper never counts jumps");
    }
}
