//! Dynamic branch prediction simulation — the hardware side of the paper's
//! static/dynamic comparison.
//!
//! The paper positions static profile feedback against the "1 or 2 bits
//! attached to each branch" dynamic schemes of the hardware literature
//! ([Smith 81], [Lee and Smith 84]) and cites their accuracy: 80–90% on
//! systems codes, 95–100% on scientific FORTRAN. This module simulates
//! those schemes over the VM's recorded branch traces so the comparison can
//! be made on the same programs with the same metrics. It is an extension
//! beyond the paper's own measurements (they report only the literature
//! numbers), using the infrastructure the paper implies.

use std::collections::HashMap;

use trace_ir::BranchId;
use trace_vm::BranchEvent;

use crate::predictor::{Direction, Predictor};

/// A per-branch dynamic prediction scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynamicScheme {
    /// One bit per branch: predict the direction the branch last went.
    OneBit,
    /// A two-bit saturating counter per branch (the classic Smith
    /// predictor): predict taken when the counter is in its upper half.
    TwoBit,
}

/// The outcome of simulating a scheme over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynamicResult {
    /// Branch executions simulated.
    pub executed: u64,
    /// Mispredictions incurred (including each branch's cold-start misses).
    pub mispredicted: u64,
}

impl DynamicResult {
    /// Fraction predicted correctly.
    pub fn correct_fraction(&self) -> f64 {
        if self.executed == 0 {
            1.0
        } else {
            1.0 - self.mispredicted as f64 / self.executed as f64
        }
    }
}

fn initial_counter(scheme: DynamicScheme, dir: Direction) -> u8 {
    match (scheme, dir) {
        // 1-bit state: 0 = not taken, 1 = taken.
        (DynamicScheme::OneBit, Direction::NotTaken) => 0,
        (DynamicScheme::OneBit, Direction::Taken) => 1,
        // 2-bit state: 0,1 = predict not taken; 2,3 = predict taken.
        // Weak states so the first disagreement can flip.
        (DynamicScheme::TwoBit, Direction::NotTaken) => 1,
        (DynamicScheme::TwoBit, Direction::Taken) => 2,
    }
}

/// Simulates `scheme` over an ordered branch trace; every branch's state
/// starts at the weak form of `cold_start`.
pub fn simulate(
    trace: &[BranchEvent],
    scheme: DynamicScheme,
    cold_start: Direction,
) -> DynamicResult {
    simulate_seeded(trace, scheme, &Predictor::always(cold_start))
}

/// Simulates `scheme` with each branch's initial state seeded from a
/// *static* predictor — the natural hybrid the paper's discussion suggests
/// (compile-time feedback sets the starting state, hardware adapts from
/// there).
pub fn simulate_seeded(
    trace: &[BranchEvent],
    scheme: DynamicScheme,
    seed: &Predictor,
) -> DynamicResult {
    let mut state: HashMap<BranchId, u8> = HashMap::new();
    let mut result = DynamicResult::default();
    for &BranchEvent { id, taken, .. } in trace {
        let counter = state
            .entry(id)
            .or_insert_with(|| initial_counter(scheme, seed.predict(id)));
        let predicted_taken = match scheme {
            DynamicScheme::OneBit => *counter == 1,
            DynamicScheme::TwoBit => *counter >= 2,
        };
        result.executed += 1;
        if predicted_taken != taken {
            result.mispredicted += 1;
        }
        *counter = match scheme {
            DynamicScheme::OneBit => u8::from(taken),
            DynamicScheme::TwoBit => {
                if taken {
                    (*counter + 1).min(3)
                } else {
                    counter.saturating_sub(1)
                }
            }
        };
    }
    result
}

/// The distribution of instruction run lengths between breaks.
///
/// The paper: "for ILP purposes, the actual distribution of branches is
/// significant … far more ILP will be available if one has 80 instructions
/// followed by two mispredicted branches than if one has 40 instructions,
/// a mispredicted branch, 40 instructions, a mispredicted branch. Branches
/// in real programs are not evenly spaced." This quantifies that.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GapDistribution {
    /// Number of runs (mispredict-terminated segments).
    pub count: usize,
    /// Mean run length in instructions.
    pub mean: f64,
    /// 10th percentile run length.
    pub p10: u64,
    /// Median run length.
    pub p50: u64,
    /// 90th percentile run length.
    pub p90: u64,
    /// Longest run observed.
    pub max: u64,
}

/// Computes the distribution of instruction run lengths between
/// *mispredicted* branches under a static `predictor`, from a recorded
/// branch trace. Correctly predicted branches extend the current run; each
/// misprediction terminates one.
pub fn mispredict_gaps(trace: &[BranchEvent], predictor: &Predictor) -> GapDistribution {
    let mut runs: Vec<u64> = Vec::new();
    let mut current = 0u64;
    for ev in trace {
        current += ev.gap;
        let predicted_taken = predictor.predict(ev.id) == Direction::Taken;
        if predicted_taken != ev.taken {
            runs.push(current);
            current = 0;
        }
    }
    if runs.is_empty() {
        return GapDistribution::default();
    }
    runs.sort_unstable();
    let pct = |p: usize| runs[(runs.len() - 1) * p / 100];
    GapDistribution {
        count: runs.len(),
        mean: runs.iter().sum::<u64>() as f64 / runs.len() as f64,
        p10: pct(10),
        p50: pct(50),
        p90: pct(90),
        max: *runs.last().expect("nonempty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(pattern: &[bool]) -> Vec<BranchEvent> {
        pattern
            .iter()
            .map(|&t| BranchEvent {
                id: BranchId(0),
                taken: t,
                gap: 10,
            })
            .collect()
    }

    #[test]
    fn one_bit_tracks_last_direction() {
        // T T T N T: misses on the cold start (predict N), on the N, and on
        // the T after the N.
        let r = simulate(
            &trace(&[true, true, true, false, true]),
            DynamicScheme::OneBit,
            Direction::NotTaken,
        );
        assert_eq!(r.executed, 5);
        assert_eq!(r.mispredicted, 3);
    }

    #[test]
    fn one_bit_thrashes_on_alternation() {
        let pattern: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let r = simulate(&trace(&pattern), DynamicScheme::OneBit, Direction::NotTaken);
        // Predicts the previous outcome, which always differs — except the
        // very first (cold NotTaken vs actual Taken also misses here).
        assert_eq!(r.mispredicted, 100);
    }

    #[test]
    fn two_bit_resists_loop_exits() {
        // A loop branch: taken 9 times, not-taken once, repeated. The
        // two-bit counter eats one miss per exit and one on re-entry at
        // most; the one-bit scheme eats two per cycle plus churn.
        let mut pattern = Vec::new();
        for _ in 0..10 {
            pattern.extend(std::iter::repeat_n(true, 9));
            pattern.push(false);
        }
        let two = simulate(&trace(&pattern), DynamicScheme::TwoBit, Direction::Taken);
        let one = simulate(&trace(&pattern), DynamicScheme::OneBit, Direction::Taken);
        assert_eq!(two.mispredicted, 10, "one miss per loop exit");
        // Exit + re-entry miss per cycle, except no re-entry after the
        // final exit: 10 + 9.
        assert_eq!(one.mispredicted, 19);
        assert!(two.correct_fraction() > one.correct_fraction());
    }

    #[test]
    fn two_bit_saturates() {
        // After long taken runs, a single not-taken flips nothing.
        let mut pattern = vec![true; 50];
        pattern.push(false);
        pattern.push(true);
        let r = simulate(&trace(&pattern), DynamicScheme::TwoBit, Direction::NotTaken);
        // Misses: cold start (weak NT) and the single false. The trailing
        // true is still predicted taken (counter 3 -> 2).
        assert_eq!(r.mispredicted, 2);
    }

    #[test]
    fn seeding_removes_cold_start_misses() {
        let pattern = vec![true; 20];
        let cold = simulate(&trace(&pattern), DynamicScheme::TwoBit, Direction::NotTaken);
        let mut counts = trace_vm::BranchCounts::new();
        counts.add(BranchId(0), 20, 20);
        let seed = Predictor::from_counts(&counts, Direction::NotTaken);
        let warm = simulate_seeded(&trace(&pattern), DynamicScheme::TwoBit, &seed);
        assert!(warm.mispredicted < cold.mispredicted);
        assert_eq!(warm.mispredicted, 0);
    }

    #[test]
    fn interleaved_branches_have_independent_state() {
        let t: Vec<BranchEvent> = (0..40)
            .map(|i| BranchEvent {
                id: BranchId(i % 2),
                taken: i % 2 == 0,
                gap: 5,
            })
            .collect();
        let r = simulate(&t, DynamicScheme::TwoBit, Direction::NotTaken);
        // Branch 0 misses only while warming up; branch 1 never misses.
        assert!(r.mispredicted <= 2, "misses = {}", r.mispredicted);
    }

    #[test]
    fn gap_distribution_basic() {
        // All branches taken, predictor says not-taken: every branch is a
        // mispredict, so every run is exactly one gap (10).
        let t = trace(&[true; 8]);
        let d = mispredict_gaps(&t, &Predictor::always(Direction::NotTaken));
        assert_eq!(d.count, 8);
        assert_eq!(d.mean, 10.0);
        assert_eq!((d.p10, d.p50, d.p90, d.max), (10, 10, 10, 10));

        // Perfect prediction: no runs terminate.
        let d = mispredict_gaps(&t, &Predictor::always(Direction::Taken));
        assert_eq!(d.count, 0);
    }

    #[test]
    fn gap_distribution_uneven_runs() {
        // Mispredict every 4th branch: runs of 4 gaps = 40 instructions.
        let pattern: Vec<bool> = (0..16).map(|i| i % 4 != 3).collect();
        let t = trace(&pattern);
        let d = mispredict_gaps(&t, &Predictor::always(Direction::Taken));
        assert_eq!(d.count, 4);
        assert_eq!(d.p50, 40);
        assert_eq!(d.mean, 40.0);
    }

    #[test]
    fn empty_trace() {
        let r = simulate(&[], DynamicScheme::OneBit, Direction::NotTaken);
        assert_eq!(r.executed, 0);
        assert_eq!(r.correct_fraction(), 1.0);
    }
}
