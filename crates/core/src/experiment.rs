//! The cross-dataset evaluation matrix (Figures 2 & 3, Table 3).
//!
//! The paper's methodology: run a program over several datasets, collect
//! branch counts per dataset, then for every *target* dataset measure
//! instructions per break when its branches are predicted by
//!
//! * itself (the best any static predictor can do — each branch goes its
//!   majority direction),
//! * the scaled sum of all the *other* datasets (the realistic feedback
//!   scenario, Figure 2's white bars),
//! * each other dataset alone, reporting the best and worst as a percentage
//!   of self-prediction (Figure 3).
//!
//! Because each run's per-branch counts fully determine any static
//! predictor's mispredictions on it, each program×dataset pair is executed
//! exactly once; the entire matrix is then computed analytically.

use ifprob::{combine, CombineRule};
use trace_vm::{BranchCounts, RunStats};

use crate::breaks::BreakConfig;
use crate::metrics::{evaluate, Metrics};
use crate::predictor::{Direction, Predictor};

/// One profiled run of a program on one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetRun {
    /// The dataset's name.
    pub dataset: String,
    /// Everything the VM measured.
    pub stats: RunStats,
}

impl DatasetRun {
    /// Creates a run record.
    pub fn new(dataset: impl Into<String>, stats: RunStats) -> Self {
        DatasetRun {
            dataset: dataset.into(),
            stats,
        }
    }

    /// Dynamic fraction of this run's branches that were taken (the
    /// "program constant" of the paper's informal observations).
    pub fn percent_taken(&self) -> Option<f64> {
        self.stats.branches.percent_taken()
    }
}

/// Self-prediction: the target dataset predicts itself — the upper bound,
/// since every branch is predicted in what turns out to be its majority
/// direction (Figure 2's black bars).
pub fn self_metrics(run: &DatasetRun, config: BreakConfig) -> Metrics {
    let p = Predictor::from_counts(&run.stats.branches, Direction::NotTaken);
    evaluate(&run.stats, &p, config)
}

/// Cross-prediction: `predictor_profile` (another dataset, or an accumulated
/// database entry) predicts the target run.
pub fn cross_metrics(
    target: &DatasetRun,
    predictor_profile: &BranchCounts,
    config: BreakConfig,
) -> Metrics {
    let p = Predictor::from_counts(predictor_profile, Direction::NotTaken);
    evaluate(&target.stats, &p, config)
}

/// The leave-one-out predictor: all runs except `target_index`, combined
/// under `rule`.
pub fn loo_predictor(runs: &[DatasetRun], target_index: usize, rule: CombineRule) -> Predictor {
    let others: Vec<&BranchCounts> = runs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != target_index)
        .map(|(_, r)| &r.stats.branches)
        .collect();
    Predictor::from_weighted(&combine(&others, rule), Direction::NotTaken)
}

/// Figure 2's white bars: the target predicted by the scaled (or other
/// rule) sum of all other datasets.
pub fn loo_metrics(
    runs: &[DatasetRun],
    target_index: usize,
    rule: CombineRule,
    config: BreakConfig,
) -> Metrics {
    let p = loo_predictor(runs, target_index, rule);
    evaluate(&runs[target_index].stats, &p, config)
}

/// Figure 3's result for one target: the best and worst single other
/// dataset, each expressed as a fraction of the self-prediction
/// instructions-per-break (self = 1.0).
#[derive(Clone, Debug, PartialEq)]
pub struct BestWorst {
    /// `(dataset name, fraction of self-prediction)` for the best single
    /// predictor.
    pub best: (String, f64),
    /// Same for the worst single predictor.
    pub worst: (String, f64),
    /// The self-prediction instructions per break the fractions are
    /// relative to.
    pub self_ipb: f64,
}

/// Computes Figure 3's best/worst single-dataset prediction ratios for one
/// target. Returns `None` when fewer than two datasets exist.
pub fn best_worst(
    runs: &[DatasetRun],
    target_index: usize,
    config: BreakConfig,
) -> Option<BestWorst> {
    if runs.len() < 2 {
        return None;
    }
    let target = &runs[target_index];
    let self_ipb = self_metrics(target, config).instrs_per_break;
    let mut best: Option<(String, f64)> = None;
    let mut worst: Option<(String, f64)> = None;
    for (i, other) in runs.iter().enumerate() {
        if i == target_index {
            continue;
        }
        let ipb = cross_metrics(target, &other.stats.branches, config).instrs_per_break;
        let ratio = if self_ipb > 0.0 { ipb / self_ipb } else { 0.0 };
        let entry = (other.dataset.clone(), ratio);
        if best.as_ref().is_none_or(|(_, b)| ratio > *b) {
            best = Some(entry.clone());
        }
        if worst.as_ref().is_none_or(|(_, w)| ratio < *w) {
            worst = Some(entry);
        }
    }
    Some(BestWorst {
        best: best.expect("at least one other dataset"),
        worst: worst.expect("at least one other dataset"),
        self_ipb,
    })
}

/// The spread of percent-taken across a program's datasets:
/// `(min, max)` over runs that executed at least one branch. The paper found
/// max−min ≤ 9% for every program except spice2g6 (21%–76%).
pub fn percent_taken_spread(runs: &[DatasetRun]) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in runs {
        if let Some(p) = r.percent_taken() {
            lo = lo.min(p);
            hi = hi.max(p);
        }
    }
    (lo.is_finite() && hi.is_finite()).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_ir::BranchId;
    use trace_vm::BranchCounts;

    fn run(name: &str, instrs: u64, branches: &[(u32, u64, u64)]) -> DatasetRun {
        DatasetRun::new(
            name,
            RunStats {
                total_instrs: instrs,
                branches: branches
                    .iter()
                    .map(|&(id, e, t)| (BranchId(id), e, t))
                    .collect::<BranchCounts>(),
                events: Default::default(),
                pixie: Default::default(),
            },
        )
    }

    #[test]
    fn self_prediction_is_upper_bound() {
        let runs = [
            run("a", 10_000, &[(0, 100, 90), (1, 50, 5)]),
            run("b", 10_000, &[(0, 100, 10), (1, 50, 45)]), // opposite directions
            run("c", 10_000, &[(0, 100, 95), (1, 50, 2)]),  // agrees with a
        ];
        let cfg = BreakConfig::fig2();
        for i in 0..runs.len() {
            let s = self_metrics(&runs[i], cfg).instrs_per_break;
            for j in 0..runs.len() {
                let c = cross_metrics(&runs[i], &runs[j].stats.branches, cfg).instrs_per_break;
                assert!(
                    c <= s + 1e-9,
                    "cross prediction beat self prediction: {c} > {s}"
                );
            }
        }
    }

    #[test]
    fn best_worst_identifies_datasets() {
        let runs = vec![
            run("target", 10_000, &[(0, 100, 90)]),
            run("agrees", 10_000, &[(0, 10, 9)]),
            run("flipped", 10_000, &[(0, 10, 0)]),
        ];
        let bw = best_worst(&runs, 0, BreakConfig::fig2()).unwrap();
        assert_eq!(bw.best.0, "agrees");
        assert_eq!(bw.worst.0, "flipped");
        assert!(bw.best.1 > bw.worst.1);
        assert!((bw.best.1 - 1.0).abs() < 1e-12, "perfect agreement = 100%");
    }

    #[test]
    fn best_worst_requires_two_datasets() {
        let runs = vec![run("only", 100, &[(0, 10, 5)])];
        assert!(best_worst(&runs, 0, BreakConfig::fig2()).is_none());
    }

    #[test]
    fn loo_scaled_outvotes_large_biased_dataset() {
        // Two small datasets agree (not taken), one huge one disagrees.
        let runs = vec![
            run("target", 1000, &[(0, 100, 0)]),
            run("small1", 1000, &[(0, 10, 0)]),
            run("small2", 1000, &[(0, 10, 0)]),
            run("huge", 1000, &[(0, 1_000_000, 1_000_000)]),
        ];
        let scaled = loo_predictor(&runs, 0, CombineRule::Scaled);
        assert_eq!(scaled.predict(BranchId(0)), Direction::NotTaken);
        let unscaled = loo_predictor(&runs, 0, CombineRule::Unscaled);
        assert_eq!(unscaled.predict(BranchId(0)), Direction::Taken);
    }

    #[test]
    fn percent_taken_spread_works() {
        let runs = vec![
            run("a", 100, &[(0, 100, 21)]),
            run("b", 100, &[(0, 100, 76)]),
        ];
        let (lo, hi) = percent_taken_spread(&runs).unwrap();
        assert!((lo - 0.21).abs() < 1e-12);
        assert!((hi - 0.76).abs() < 1e-12);
        assert!(percent_taken_spread(&[]).is_none());
    }

    #[test]
    fn loo_metrics_runs() {
        let runs = vec![
            run("a", 10_000, &[(0, 100, 90)]),
            run("b", 10_000, &[(0, 100, 85)]),
            run("c", 10_000, &[(0, 100, 80)]),
        ];
        let m = loo_metrics(&runs, 0, CombineRule::Scaled, BreakConfig::fig2());
        // Others agree with target's majority: only the 10 minority
        // executions mispredict.
        assert_eq!(m.mispredicted, 10);
    }
}
