#![warn(missing_docs)]

//! # bpredict
//!
//! Profile-guided static branch prediction and the measurement methodology
//! of Fisher & Freudenberger, *Predicting Conditional Branch Directions From
//! Previous Runs of a Program* (ASPLOS 1992) — the paper's primary
//! contribution, built on the `trace-vm` machine and `ifprob` profile
//! substrate.
//!
//! The paper's central points, all implemented here:
//!
//! 1. **Static prediction from previous runs.** A [`Predictor`] attaches one
//!    direction to every conditional branch at compile time, built from the
//!    branch statistics of earlier runs ([`Predictor::from_counts`]), from
//!    combined multi-dataset profiles ([`Predictor::from_weighted`]), or
//!    from the naive loop heuristic the paper uses as a baseline
//!    ([`Predictor::heuristic`]).
//! 2. **Instructions per mispredicted branch** (more generally *per break in
//!    control*) as the right measure — percent-correct ignores branch
//!    density (the paper's fpppp-vs-li anecdote). [`evaluate`] computes it
//!    for a run under any [`BreakConfig`] accounting convention.
//! 3. **The evaluation matrix**: each dataset predicted by itself (the upper
//!    bound), by every other single dataset, and by the scaled sum of all
//!    others — [`experiment`] drives Figures 1–3 and Table 3.
//!
//! ```
//! use bpredict::{evaluate, BreakConfig, Predictor};
//! use mflang::compile;
//! use trace_vm::{Input, Vm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile(
//!     "fn main(n: int) {
//!         var s: int = 0;
//!         for (var i: int = 0; i < n; i = i + 1) {
//!             if (i % 8 == 0) { s = s + 1; }
//!         }
//!         emit(s);
//!     }",
//! )?;
//! // Profile a training run, predict a different run.
//! let train = Vm::new(&program).run(&[Input::Int(500)])?;
//! let test = Vm::new(&program).run(&[Input::Int(3000)])?;
//! let predictor = Predictor::from_counts(&train.stats.branches, Default::default());
//! let m = evaluate(&test.stats, &predictor, BreakConfig::fig2());
//! assert!(m.instrs_per_break > 10.0);
//! assert!(m.correct_fraction() > 0.8);
//! # Ok(())
//! # }
//! ```

mod breaks;
pub mod dynamic;
pub mod experiment;
mod metrics;
mod predictor;

pub use breaks::BreakConfig;
pub use metrics::{evaluate, evaluate_unpredicted, Metrics};
pub use predictor::{Direction, Predictor};
