//! Static branch predictors.

use std::collections::BTreeMap;

use ifprob::WeightedCounts;
use trace_ir::{BranchId, BranchKind, Program, Terminator};
use trace_vm::BranchCounts;

/// A predicted branch direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Predict the branch condition true.
    Taken,
    /// Predict the branch condition false (the default for branches no
    /// training run ever executed — fall-through is the cheap guess).
    #[default]
    NotTaken,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Taken => Direction::NotTaken,
            Direction::NotTaken => Direction::Taken,
        }
    }
}

/// A static branch predictor: one direction per conditional branch, fixed
/// before the program runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Predictor {
    map: BTreeMap<BranchId, Direction>,
    default: Direction,
}

impl Predictor {
    /// Majority-direction predictor from raw counts (one previous run, an
    /// accumulated database entry, or the target itself for the
    /// self-prediction upper bound). Ties predict taken. Branches the counts
    /// never saw fall back to `default`.
    pub fn from_counts(counts: &BranchCounts, default: Direction) -> Self {
        let map = counts
            .iter()
            .filter(|(_, e, _)| *e > 0)
            .map(|(id, e, t)| {
                let dir = if t * 2 >= e {
                    Direction::Taken
                } else {
                    Direction::NotTaken
                };
                (id, dir)
            })
            .collect();
        Predictor { map, default }
    }

    /// Majority-direction predictor from combined (weighted) multi-dataset
    /// counts.
    pub fn from_weighted(counts: &WeightedCounts, default: Direction) -> Self {
        let map = counts
            .iter()
            .filter(|&(_id, e, _t)| e > 0.0)
            .map(|(id, e, t)| {
                let dir = if t / e >= 0.5 {
                    Direction::Taken
                } else {
                    Direction::NotTaken
                };
                (id, dir)
            })
            .collect();
        Predictor { map, default }
    }

    /// The paper's "simple opcode heuristics" baseline: loop back-edges
    /// predicted taken, everything else not-taken. Uses code layout
    /// (backward-taken branches are loop branches), the information a
    /// compiler has with no profile at all. The paper reports this gives up
    /// about a factor of two in instructions per break.
    pub fn heuristic(program: &Program) -> Self {
        let mut map = BTreeMap::new();
        for func in &program.functions {
            for (bi, block) in func.iter_blocks() {
                if let Terminator::Branch { id, taken, .. } = block.term {
                    let dir = if taken.index() <= bi.index() {
                        Direction::Taken
                    } else {
                        Direction::NotTaken
                    };
                    map.insert(id, dir);
                }
            }
        }
        Predictor {
            map,
            default: Direction::NotTaken,
        }
    }

    /// A source-level variant of the heuristic keyed on what construct each
    /// branch implements (`while`/`for` back-edge ⇒ taken). Equivalent to
    /// [`Predictor::heuristic`] on `mflang` output; exists so the
    /// equivalence is testable.
    pub fn heuristic_by_kind(program: &Program) -> Self {
        let map = program
            .branch_info
            .iter()
            .enumerate()
            .map(|(i, info)| {
                let dir = if info.kind == BranchKind::LoopBack {
                    Direction::Taken
                } else {
                    Direction::NotTaken
                };
                (BranchId::from_index(i), dir)
            })
            .collect();
        Predictor {
            map,
            default: Direction::NotTaken,
        }
    }

    /// "Backward taken, forward not taken" decided *structurally*: a
    /// branch whose taken edge is a dominance-certified back edge (the
    /// taken target dominates the branching block) is predicted taken,
    /// everything else not-taken.
    ///
    /// Unlike [`Predictor::heuristic`], which trusts block layout, this
    /// consults the loop forest, so it keeps identifying loop branches
    /// after transformations that disturb layout order (jump threading,
    /// unreachable-block renumbering, hand-built IR). In irreducible
    /// regions no natural-loop back edge exists and the branch falls back
    /// to not-taken — the conservative choice.
    pub fn static_heuristic(program: &Program) -> Self {
        let mut map = BTreeMap::new();
        for func in &program.functions {
            let cfg = mfcheck::Cfg::new(func);
            let dom = mfcheck::DomTree::compute(&cfg);
            let loops = mfcheck::LoopForest::compute(&cfg, &dom);
            for (bi, block) in func.iter_blocks() {
                if let Terminator::Branch { id, taken, .. } = block.term {
                    let dir = if loops.is_back_edge(bi, taken) {
                        Direction::Taken
                    } else {
                        Direction::NotTaken
                    };
                    map.insert(id, dir);
                }
            }
        }
        Predictor {
            map,
            default: Direction::NotTaken,
        }
    }

    /// Predicts every branch in one fixed direction.
    pub fn always(direction: Direction) -> Self {
        Predictor {
            map: BTreeMap::new(),
            default: direction,
        }
    }

    /// Builds a predictor from explicit per-site directions (static
    /// analyses — interval proofs, the ML model — produce these rather
    /// than counts). Later duplicates win.
    pub fn from_directions(
        directions: impl IntoIterator<Item = (BranchId, Direction)>,
        default: Direction,
    ) -> Self {
        Predictor {
            map: directions.into_iter().collect(),
            default,
        }
    }

    /// The predicted direction for a branch.
    pub fn predict(&self, id: BranchId) -> Direction {
        self.map.get(&id).copied().unwrap_or(self.default)
    }

    /// Number of branches with explicit predictions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no branch has an explicit prediction.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates explicit `(id, direction)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, Direction)> + '_ {
        self.map.iter().map(|(&id, &d)| (id, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifprob::{combine, CombineRule};

    fn counts(entries: &[(u32, u64, u64)]) -> BranchCounts {
        entries
            .iter()
            .map(|&(id, e, t)| (BranchId(id), e, t))
            .collect()
    }

    #[test]
    fn majority_and_tie() {
        let p = Predictor::from_counts(
            &counts(&[(0, 10, 9), (1, 10, 1), (2, 4, 2)]),
            Direction::NotTaken,
        );
        assert_eq!(p.predict(BranchId(0)), Direction::Taken);
        assert_eq!(p.predict(BranchId(1)), Direction::NotTaken);
        assert_eq!(p.predict(BranchId(2)), Direction::Taken, "tie -> taken");
        assert_eq!(p.predict(BranchId(99)), Direction::NotTaken, "default");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn default_applies_only_to_unseen() {
        let p = Predictor::from_counts(&counts(&[(0, 10, 1)]), Direction::Taken);
        assert_eq!(p.predict(BranchId(0)), Direction::NotTaken);
        assert_eq!(p.predict(BranchId(5)), Direction::Taken);
    }

    #[test]
    fn from_weighted_matches_from_counts_on_single_profile() {
        let c = counts(&[(0, 10, 9), (1, 10, 1)]);
        let w = combine(&[&c], CombineRule::Unscaled);
        let a = Predictor::from_counts(&c, Direction::NotTaken);
        let b = Predictor::from_weighted(&w, Direction::NotTaken);
        assert_eq!(a, b);
    }

    #[test]
    fn always_predictors() {
        let t = Predictor::always(Direction::Taken);
        assert!(t.is_empty());
        assert_eq!(t.predict(BranchId(7)), Direction::Taken);
        assert_eq!(Direction::Taken.flip(), Direction::NotTaken);
    }

    #[test]
    fn static_heuristic_agrees_with_source_kinds_on_compiled_code() {
        let program = mflang::compile(
            r#"
            fn main(n: int) {
                var s: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
                }
                while (s > 50) { s = s - 7; }
                emit(s);
            }
            "#,
        )
        .unwrap();
        let btfn = Predictor::static_heuristic(&program);
        let by_kind = Predictor::heuristic_by_kind(&program);
        for (id, dir) in btfn.iter() {
            assert_eq!(
                dir,
                by_kind.predict(id),
                "BTFN and source-kind heuristics disagree on {id:?}"
            );
        }
    }

    #[test]
    fn static_heuristic_survives_layout_that_fools_the_layout_heuristic() {
        use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
        use trace_ir::BranchKind as Bk;

        // Layout is deliberately scrambled: the loop header (bb2) comes
        // *after* its latch (bb1) in block order, and a plain if-branch
        // targets an earlier-index block. The layout heuristic
        // misclassifies both; dominance does not.
        let mut f = FunctionBuilder::new("main", 1);
        let latch = f.new_block(); // bb1
        let header = f.new_block(); // bb2
        let exit = f.new_block(); // bb3
        let early_arm = f.new_block(); // bb4
        let fork = f.new_block(); // bb5
        let join = f.new_block(); // bb6
        f.jump(header);
        f.switch_to(header);
        f.jump(latch);
        f.switch_to(latch);
        // Loop branch: taken target (bb2) has a HIGHER index than this
        // block (bb1), so layout calls it forward/not-taken — but bb2
        // dominates bb1, making it a true back edge.
        f.branch(f.param(0), header, exit, 1, Bk::Synthetic);
        f.switch_to(exit);
        f.jump(fork);
        f.switch_to(fork);
        // If-branch: taken target (bb4) has a LOWER index than this block
        // (bb5), so layout calls it backward/taken — but bb4 does not
        // dominate bb5; it is an ordinary forward diamond arm.
        f.branch(f.param(0), early_arm, join, 2, Bk::Synthetic);
        f.switch_to(early_arm);
        f.jump(join);
        f.switch_to(join);
        f.ret(None);
        let mut pb = ProgramBuilder::new();
        pb.add_function(f.finish());
        let program = pb.finish("main").unwrap();

        let layout = Predictor::heuristic(&program);
        let btfn = Predictor::static_heuristic(&program);
        let loop_branch = BranchId(0);
        let if_branch = BranchId(1);

        assert_eq!(btfn.predict(loop_branch), Direction::Taken);
        assert_eq!(btfn.predict(if_branch), Direction::NotTaken);
        // And the layout heuristic gets both wrong here — the reason the
        // structural variant exists.
        assert_eq!(layout.predict(loop_branch), Direction::NotTaken);
        assert_eq!(layout.predict(if_branch), Direction::Taken);
    }

    #[test]
    fn heuristics_agree_on_compiled_code() {
        let program = mflang::compile(
            r#"
            fn main(n: int) {
                var s: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + 1; }
                    while (s > 100) { s = s - 10; }
                }
                emit(s);
            }
            "#,
        )
        .unwrap();
        let layout = Predictor::heuristic(&program);
        let by_kind = Predictor::heuristic_by_kind(&program);
        for (id, _) in layout.iter() {
            assert_eq!(
                layout.predict(id),
                by_kind.predict(id),
                "layout and source heuristics disagree on {id:?}"
            );
        }
        // The loop back-edges must be predicted taken.
        let back_edges: Vec<_> = layout
            .iter()
            .filter(|(_, d)| *d == Direction::Taken)
            .collect();
        assert_eq!(back_edges.len(), 2, "for + while back-edges");
    }
}
