//! Run-time errors.

use std::error::Error;
use std::fmt;

/// An error raised while interpreting a program.
///
/// The VM is defensive: hand-built or miscompiled IR produces one of these
/// instead of silently corrupting counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// The configured instruction budget was exhausted.
    OutOfFuel {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// The call stack exceeded the configured depth.
    StackOverflow {
        /// The depth limit.
        limit: usize,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// An array access was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array's length.
        len: usize,
    },
    /// A store targeted a read-only (interned constant) array.
    ReadOnlyStore,
    /// An operand had the wrong dynamic type.
    TypeMismatch {
        /// What the instruction needed.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// An indirect call's target was not a function value.
    BadIndirectTarget {
        /// The value's type tag.
        found: &'static str,
    },
    /// An indirect call passed the wrong number of arguments.
    IndirectArityMismatch {
        /// The callee's name.
        callee: String,
        /// Arguments passed.
        got: usize,
        /// Parameters expected.
        expected: u32,
    },
    /// `NewIntArray`/`NewFloatArray` was given a negative or oversized
    /// length.
    BadArrayLength {
        /// The requested length.
        len: i64,
    },
    /// The entry function was called with the wrong number of inputs.
    BadEntryArity {
        /// Inputs supplied.
        got: usize,
        /// Parameters expected.
        expected: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfFuel { limit } => {
                write!(f, "instruction budget of {limit} exhausted")
            }
            RuntimeError::StackOverflow { limit } => {
                write!(f, "call stack exceeded {limit} frames")
            }
            RuntimeError::DivideByZero => write!(f, "integer division by zero"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            RuntimeError::ReadOnlyStore => write!(f, "store to read-only constant array"),
            RuntimeError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RuntimeError::BadIndirectTarget { found } => {
                write!(
                    f,
                    "indirect call through non-function value of type {found}"
                )
            }
            RuntimeError::IndirectArityMismatch {
                callee,
                got,
                expected,
            } => write!(
                f,
                "indirect call to `{callee}` passed {got} arguments, expected {expected}"
            ),
            RuntimeError::BadArrayLength { len } => {
                write!(f, "invalid array length {len}")
            }
            RuntimeError::BadEntryArity { got, expected } => {
                write!(f, "entry function expects {expected} inputs, got {got}")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors = [
            RuntimeError::OutOfFuel { limit: 10 },
            RuntimeError::StackOverflow { limit: 2 },
            RuntimeError::DivideByZero,
            RuntimeError::IndexOutOfBounds { index: -1, len: 0 },
            RuntimeError::ReadOnlyStore,
            RuntimeError::TypeMismatch {
                expected: "int",
                found: "array",
            },
            RuntimeError::BadIndirectTarget { found: "int" },
            RuntimeError::IndirectArityMismatch {
                callee: "f".to_string(),
                got: 1,
                expected: 2,
            },
            RuntimeError::BadArrayLength { len: -3 },
            RuntimeError::BadEntryArity {
                got: 0,
                expected: 1,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
