//! The interpreter itself.

use trace_ir::{BinOp, FuncId, Instr, Program, Reg, Terminator, UnOp, Value};

use crate::counters::{PixieCounts, RunStats};
use crate::error::RuntimeError;
use crate::value::{ArrayData, GuestValue, HeapObject, Input};

/// Resource limits for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Maximum RISC-level instructions to execute before aborting.
    pub fuel: u64,
    /// Maximum call-stack depth.
    pub max_stack: usize,
    /// Maximum elements in one array allocation.
    pub max_alloc: i64,
    /// Record the full ordered branch outcome trace in
    /// [`Run::branch_trace`]. Off by default: traces cost 24 bytes per
    /// dynamic branch, and only the trace-order analyses (dynamic-scheme
    /// simulation, mispredict-gap distribution) need the ordering —
    /// aggregate counts always suffice for static prediction.
    pub record_branch_trace: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            fuel: 20_000_000_000,
            max_stack: 1 << 16,
            max_alloc: 1 << 26,
            record_branch_trace: false,
        }
    }
}

/// The result of a successful run: the guest's output stream, the entry
/// function's return value, and everything that was measured.
#[derive(Clone, Debug, PartialEq)]
pub struct Run {
    /// Values the guest `emit`ted, in order.
    pub output: Vec<GuestValue>,
    /// The entry function's return value, if any.
    pub result: Option<GuestValue>,
    /// All counters (IFPROBBER, MFPixie, break events, total instructions).
    pub stats: RunStats,
    /// The ordered branch outcome trace — empty unless
    /// [`VmConfig::record_branch_trace`] was set.
    pub branch_trace: Vec<BranchEvent>,
}

/// Receives one callback per control-flow edge the interpreter traverses —
/// the lightweight coverage hook the fuzzer's feedback loop attaches via
/// [`Vm::run_observed`]. Ordinary runs carry no sink and pay only a
/// per-block-entry `Option` test.
pub trait CoverageSink {
    /// Control entered `to` in `func`, coming from block `from` of the same
    /// function — or from [`ENTRY_EDGE_FROM`] when `func` was just entered
    /// (program start or a call).
    fn edge(&mut self, func: FuncId, from: u32, to: u32);
}

/// The `from` pseudo-block [`CoverageSink::edge`] reports for function
/// entry edges.
pub const ENTRY_EDGE_FROM: u32 = u32::MAX;

/// One entry of the recorded branch trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchEvent {
    /// The source-level branch that executed.
    pub id: trace_ir::BranchId,
    /// Whether it was taken.
    pub taken: bool,
    /// RISC-level instructions executed since the previous conditional
    /// branch (inclusive of this branch's own transfer) — the run length
    /// the paper notes matters for ILP ("far more ILP will be available if
    /// one has 80 instructions followed by two mispredicted branches than
    /// 40, a mispredicted branch, 40, a mispredicted branch").
    pub gap: u64,
}

impl Run {
    /// The output stream as integers.
    ///
    /// # Panics
    ///
    /// Panics if any emitted value is not an integer.
    pub fn output_ints(&self) -> Vec<i64> {
        self.output
            .iter()
            .map(|v| v.as_int().expect("non-integer value in output"))
            .collect()
    }

    /// The output stream as floats (integers are not coerced).
    ///
    /// # Panics
    ///
    /// Panics if any emitted value is not a float or zero.
    pub fn output_floats(&self) -> Vec<f64> {
        self.output
            .iter()
            .map(|v| v.as_float().expect("non-float value in output"))
            .collect()
    }
}

struct Frame {
    func: FuncId,
    block: usize,
    ip: usize,
    regs: Vec<GuestValue>,
    ret_dst: Option<Reg>,
    indirect: bool,
    is_entry: bool,
}

/// An interpreter bound to one program.
///
/// `Vm` borrows the program; construct one per run or reuse it — runs do not
/// share state.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
}

impl<'p> Vm<'p> {
    /// Creates a VM with default limits.
    pub fn new(program: &'p Program) -> Self {
        Vm {
            program,
            config: VmConfig::default(),
        }
    }

    /// Creates a VM with explicit limits.
    pub fn with_config(program: &'p Program, config: VmConfig) -> Self {
        Vm { program, config }
    }

    /// Runs the program's entry function on `inputs`.
    ///
    /// Array inputs are placed on the heap before execution and passed by
    /// reference; the guest is charged no instructions for them.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault (bad types, bounds,
    /// division by zero, fuel/stack exhaustion, entry arity mismatch).
    pub fn run(&self, inputs: &[Input]) -> Result<Run, RuntimeError> {
        Interp::new(self.program, self.config).run(inputs)
    }

    /// [`Vm::run`], with every traversed control-flow edge reported to
    /// `sink`. Identical semantics and counters; only observation is added.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as
    /// [`Vm::run`] does.
    pub fn run_observed(
        &self,
        inputs: &[Input],
        sink: &mut dyn CoverageSink,
    ) -> Result<Run, RuntimeError> {
        let mut interp = Interp::new(self.program, self.config);
        interp.observer = Some(sink);
        interp.run(inputs)
    }
}

/// Runs `program`'s entry function on `inputs` under `config` — the
/// one-shot entry point parallel schedulers use. Everything involved
/// (`Program`, the inputs, the resulting [`Run`]) is `Send + Sync`, so a
/// shared program can be executed from many worker threads at once; each
/// call gets its own interpreter state.
///
/// # Errors
///
/// Returns a [`RuntimeError`] on any dynamic fault, exactly as
/// [`Vm::run`] does.
pub fn run_program(
    program: &Program,
    config: VmConfig,
    inputs: &[Input],
) -> Result<Run, RuntimeError> {
    Vm::with_config(program, config).run(inputs)
}

// The thread-safety contract run_program advertises, checked at compile
// time: a regression (say, an Rc sneaking into the heap or stats) fails
// the build here rather than in a downstream crate's scheduler.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<VmConfig>();
    assert_send_sync::<Input>();
    assert_send_sync::<Run>();
    assert_send_sync::<RunStats>();
    assert_send_sync::<RuntimeError>();
};

struct Interp<'p, 'o> {
    program: &'p Program,
    config: VmConfig,
    heap: Vec<HeapObject>,
    globals: Vec<GuestValue>,
    frames: Vec<Frame>,
    output: Vec<GuestValue>,
    stats: RunStats,
    fuel_used: u64,
    branch_trace: Vec<BranchEvent>,
    last_branch_fuel: u64,
    observer: Option<&'o mut dyn CoverageSink>,
}

impl<'p, 'o> Interp<'p, 'o> {
    fn new(program: &'p Program, config: VmConfig) -> Self {
        let heap = program
            .const_arrays
            .iter()
            .map(|a| HeapObject {
                data: ArrayData::Ints(a.clone()),
                read_only: true,
            })
            .collect();
        Interp {
            program,
            config,
            heap,
            globals: vec![GuestValue::Zero; program.globals.len()],
            frames: Vec::new(),
            output: Vec::new(),
            stats: RunStats {
                pixie: PixieCounts::for_program(program),
                ..RunStats::default()
            },
            fuel_used: 0,
            branch_trace: Vec::new(),
            last_branch_fuel: 0,
            observer: None,
        }
    }

    fn observe_edge(&mut self, func: FuncId, from: u32, to: u32) {
        if let Some(obs) = self.observer.as_mut() {
            obs.edge(func, from, to);
        }
    }

    fn run(mut self, inputs: &[Input]) -> Result<Run, RuntimeError> {
        let entry = self.program.entry;
        let entry_fn = self.program.function(entry);
        if inputs.len() != entry_fn.num_params as usize {
            return Err(RuntimeError::BadEntryArity {
                got: inputs.len(),
                expected: entry_fn.num_params,
            });
        }
        let mut regs = vec![GuestValue::Zero; entry_fn.num_regs as usize];
        for (i, input) in inputs.iter().enumerate() {
            regs[i] = match input {
                Input::Int(v) => GuestValue::Int(*v),
                Input::Float(v) => GuestValue::Float(*v),
                Input::Ints(v) => self.alloc(ArrayData::Ints(v.clone())),
                Input::Floats(v) => self.alloc(ArrayData::Floats(v.clone())),
            };
        }
        self.frames.push(Frame {
            func: entry,
            block: 0,
            ip: 0,
            regs,
            ret_dst: None,
            indirect: false,
            is_entry: true,
        });
        self.stats.pixie.blocks[entry.index()][0] += 1;
        self.observe_edge(entry, ENTRY_EDGE_FROM, 0);

        // `program` is a plain reborrow of the &'p Program, so instruction
        // references below do not conflict with `&mut self` calls.
        let program = self.program;
        let result = loop {
            let frame = self
                .frames
                .last_mut()
                .expect("frame stack never empty here");
            let (fi, bi, ip) = (frame.func, frame.block, frame.ip);
            let block = &program.functions[fi.index()].blocks[bi];
            self.spend_fuel()?;
            if ip < block.instrs.len() {
                // Advance before executing so calls resume at the next
                // instruction when their frame is re-entered.
                self.frames.last_mut().expect("active frame").ip += 1;
                self.exec_instr(&block.instrs[ip])?;
            } else if let Some(result) = self.exec_terminator(&block.term)? {
                break result;
            }
        };

        self.stats.total_instrs = self.fuel_used;
        Ok(Run {
            output: self.output,
            result,
            stats: self.stats,
            branch_trace: self.branch_trace,
        })
    }

    fn spend_fuel(&mut self) -> Result<(), RuntimeError> {
        self.fuel_used += 1;
        if self.fuel_used > self.config.fuel {
            Err(RuntimeError::OutOfFuel {
                limit: self.config.fuel,
            })
        } else {
            Ok(())
        }
    }

    fn alloc(&mut self, data: ArrayData) -> GuestValue {
        let idx = self.heap.len() as u32;
        self.heap.push(HeapObject {
            data,
            read_only: false,
        });
        GuestValue::Ref(idx)
    }

    fn reg(&self, r: Reg) -> GuestValue {
        self.frames.last().expect("active frame")[r]
    }

    fn set_reg(&mut self, r: Reg, v: GuestValue) {
        let frame = self.frames.last_mut().expect("active frame");
        frame.regs[r.index()] = v;
    }

    fn int(&self, r: Reg) -> Result<i64, RuntimeError> {
        let v = self.reg(r);
        v.as_int().ok_or(RuntimeError::TypeMismatch {
            expected: "int",
            found: v.type_name(),
        })
    }

    fn float(&self, r: Reg) -> Result<f64, RuntimeError> {
        let v = self.reg(r);
        v.as_float().ok_or(RuntimeError::TypeMismatch {
            expected: "float",
            found: v.type_name(),
        })
    }

    fn array_ref(&self, r: Reg) -> Result<u32, RuntimeError> {
        match self.reg(r) {
            GuestValue::Ref(h) => Ok(h),
            v => Err(RuntimeError::TypeMismatch {
                expected: "array",
                found: v.type_name(),
            }),
        }
    }

    fn check_index(index: i64, len: usize) -> Result<usize, RuntimeError> {
        if index < 0 || index as usize >= len {
            Err(RuntimeError::IndexOutOfBounds { index, len })
        } else {
            Ok(index as usize)
        }
    }

    fn exec_instr(&mut self, instr: &Instr) -> Result<(), RuntimeError> {
        match instr {
            Instr::Const { dst, value } => {
                let v = match *value {
                    Value::Int(i) => GuestValue::Int(i),
                    Value::Float(f) => GuestValue::Float(f),
                };
                self.set_reg(*dst, v);
            }
            Instr::Mov { dst, src } => {
                let v = self.reg(*src);
                self.set_reg(*dst, v);
            }
            Instr::Unop { dst, op, src } => {
                let v = self.exec_unop(*op, *src)?;
                self.set_reg(*dst, v);
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let v = self.exec_binop(*op, *lhs, *rhs)?;
                self.set_reg(*dst, v);
            }
            Instr::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                self.stats.events.selects += 1;
                let c = self.int(*cond)?;
                let v = if c != 0 {
                    self.reg(*if_true)
                } else {
                    self.reg(*if_false)
                };
                self.set_reg(*dst, v);
            }
            Instr::Load { dst, arr, index } => {
                let h = self.array_ref(*arr)?;
                let i = self.int(*index)?;
                let obj = &self.heap[h as usize];
                let v = match &obj.data {
                    ArrayData::Ints(v) => GuestValue::Int(v[Self::check_index(i, v.len())?]),
                    ArrayData::Floats(v) => GuestValue::Float(v[Self::check_index(i, v.len())?]),
                };
                self.set_reg(*dst, v);
            }
            Instr::Store { arr, index, src } => {
                let h = self.array_ref(*arr)?;
                let i = self.int(*index)?;
                let v = self.reg(*src);
                let obj = &mut self.heap[h as usize];
                if obj.read_only {
                    return Err(RuntimeError::ReadOnlyStore);
                }
                match &mut obj.data {
                    ArrayData::Ints(data) => {
                        let idx = Self::check_index(i, data.len())?;
                        data[idx] = v.as_int().ok_or(RuntimeError::TypeMismatch {
                            expected: "int",
                            found: v.type_name(),
                        })?;
                    }
                    ArrayData::Floats(data) => {
                        let idx = Self::check_index(i, data.len())?;
                        data[idx] = v.as_float().ok_or(RuntimeError::TypeMismatch {
                            expected: "float",
                            found: v.type_name(),
                        })?;
                    }
                }
            }
            Instr::NewIntArray { dst, len } => {
                let n = self.check_alloc_len(*len)?;
                let v = self.alloc(ArrayData::Ints(vec![0; n]));
                self.set_reg(*dst, v);
            }
            Instr::NewFloatArray { dst, len } => {
                let n = self.check_alloc_len(*len)?;
                let v = self.alloc(ArrayData::Floats(vec![0.0; n]));
                self.set_reg(*dst, v);
            }
            Instr::ArrayLen { dst, arr } => {
                let h = self.array_ref(*arr)?;
                let len = self.heap[h as usize].data.len() as i64;
                self.set_reg(*dst, GuestValue::Int(len));
            }
            Instr::ConstArray { dst, index } => {
                // Interned arrays occupy heap slots 0..const_arrays.len().
                self.set_reg(*dst, GuestValue::Ref(*index));
            }
            Instr::GlobalGet { dst, global } => {
                let v = self.globals[global.index()];
                self.set_reg(*dst, v);
            }
            Instr::GlobalSet { global, src } => {
                self.globals[global.index()] = self.reg(*src);
            }
            Instr::FuncAddr { dst, func } => {
                self.set_reg(*dst, GuestValue::Func(*func));
            }
            Instr::Call { dst, func, args } => {
                self.stats.events.direct_calls += 1;
                self.push_call(*func, args, *dst, false)?;
            }
            Instr::CallIndirect { dst, target, args } => {
                let callee = match self.reg(*target) {
                    GuestValue::Func(id) => id,
                    v => {
                        return Err(RuntimeError::BadIndirectTarget {
                            found: v.type_name(),
                        })
                    }
                };
                let callee_fn = &self.program.functions[callee.index()];
                if args.len() != callee_fn.num_params as usize {
                    return Err(RuntimeError::IndirectArityMismatch {
                        callee: callee_fn.name.clone(),
                        got: args.len(),
                        expected: callee_fn.num_params,
                    });
                }
                self.stats.events.indirect_calls += 1;
                self.push_call(callee, args, *dst, true)?;
            }
            Instr::Emit { src } => {
                let v = self.reg(*src);
                self.output.push(v);
            }
        }
        Ok(())
    }

    fn check_alloc_len(&self, len: Reg) -> Result<usize, RuntimeError> {
        let n = self.int(len)?;
        if n < 0 || n > self.config.max_alloc {
            Err(RuntimeError::BadArrayLength { len: n })
        } else {
            Ok(n as usize)
        }
    }

    fn push_call(
        &mut self,
        callee: FuncId,
        args: &[Reg],
        ret_dst: Option<Reg>,
        indirect: bool,
    ) -> Result<(), RuntimeError> {
        if self.frames.len() >= self.config.max_stack {
            return Err(RuntimeError::StackOverflow {
                limit: self.config.max_stack,
            });
        }
        let callee_fn = &self.program.functions[callee.index()];
        let mut regs = vec![GuestValue::Zero; callee_fn.num_regs as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = self.reg(*a);
        }
        self.frames.push(Frame {
            func: callee,
            block: 0,
            ip: 0,
            regs,
            ret_dst,
            indirect,
            is_entry: false,
        });
        self.stats.pixie.blocks[callee.index()][0] += 1;
        self.observe_edge(callee, ENTRY_EDGE_FROM, 0);
        Ok(())
    }

    /// Executes a terminator. Returns `Some(result)` when the entry frame
    /// returns (ending the run).
    fn exec_terminator(
        &mut self,
        term: &Terminator,
    ) -> Result<Option<Option<GuestValue>>, RuntimeError> {
        match term {
            Terminator::Jump(target) => {
                self.stats.events.jumps += 1;
                self.enter_block(target.index());
            }
            Terminator::Branch {
                cond,
                id,
                taken,
                not_taken,
            } => {
                let c = self.int(*cond)?;
                let is_taken = c != 0;
                // Seeded-defect hooks perturb only the aggregate counters;
                // control flow and the recorded trace stay correct, so the
                // trace-replay oracle can convict them.
                #[cfg(feature = "seeded-defects")]
                let recorded = if mfdefect::active("vm-branch-count-polarity") {
                    Some(!is_taken)
                } else if mfdefect::active("vm-profile-drop-increment") && !is_taken {
                    None
                } else {
                    Some(is_taken)
                };
                #[cfg(not(feature = "seeded-defects"))]
                let recorded = Some(is_taken);
                if let Some(direction) = recorded {
                    self.stats.branches.record(*id, direction);
                }
                if self.config.record_branch_trace {
                    self.branch_trace.push(BranchEvent {
                        id: *id,
                        taken: is_taken,
                        gap: self.fuel_used - self.last_branch_fuel,
                    });
                    self.last_branch_fuel = self.fuel_used;
                }
                let target = if is_taken { taken } else { not_taken };
                self.enter_block(target.index());
            }
            Terminator::JumpTable {
                index,
                targets,
                default,
            } => {
                self.stats.events.indirect_jumps += 1;
                let i = self.int(*index)?;
                let target = if i >= 0 && (i as usize) < targets.len() {
                    targets[i as usize]
                } else {
                    *default
                };
                self.enter_block(target.index());
            }
            Terminator::Return { value } => {
                let v = value.map(|r| self.reg(r));
                let frame = self.frames.pop().expect("active frame");
                if frame.is_entry {
                    return Ok(Some(v));
                }
                if frame.indirect {
                    self.stats.events.indirect_returns += 1;
                } else {
                    self.stats.events.direct_returns += 1;
                }
                if let Some(dst) = frame.ret_dst {
                    let caller = self.frames.last_mut().expect("caller frame");
                    caller.regs[dst.index()] = v.unwrap_or(GuestValue::Zero);
                }
            }
        }
        Ok(None)
    }

    fn enter_block(&mut self, block: usize) {
        let frame = self.frames.last_mut().expect("active frame");
        let func = frame.func;
        let from = frame.block as u32;
        frame.block = block;
        frame.ip = 0;
        self.stats.pixie.blocks[func.index()][block] += 1;
        self.observe_edge(func, from, block as u32);
    }

    fn exec_unop(&mut self, op: UnOp, src: Reg) -> Result<GuestValue, RuntimeError> {
        Ok(match op {
            UnOp::Neg => GuestValue::Int(self.int(src)?.wrapping_neg()),
            UnOp::FNeg => GuestValue::Float(-self.float(src)?),
            UnOp::Not => GuestValue::Int(!self.int(src)?),
            UnOp::LNot => GuestValue::Int(i64::from(self.int(src)? == 0)),
            UnOp::IntToFloat => GuestValue::Float(self.int(src)? as f64),
            UnOp::FloatToInt => GuestValue::Int(self.float(src)? as i64),
            UnOp::Sqrt => GuestValue::Float(self.float(src)?.sqrt()),
            UnOp::Sin => GuestValue::Float(self.float(src)?.sin()),
            UnOp::Cos => GuestValue::Float(self.float(src)?.cos()),
            UnOp::Exp => GuestValue::Float(self.float(src)?.exp()),
            UnOp::Log => GuestValue::Float(self.float(src)?.ln()),
            UnOp::Floor => GuestValue::Float(self.float(src)?.floor()),
            UnOp::Abs => GuestValue::Int(self.int(src)?.wrapping_abs()),
            UnOp::FAbs => GuestValue::Float(self.float(src)?.abs()),
        })
    }

    fn exec_binop(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Result<GuestValue, RuntimeError> {
        use BinOp::*;
        Ok(match op {
            Add => GuestValue::Int(self.int(lhs)?.wrapping_add(self.int(rhs)?)),
            Sub => GuestValue::Int(self.int(lhs)?.wrapping_sub(self.int(rhs)?)),
            Mul => GuestValue::Int(self.int(lhs)?.wrapping_mul(self.int(rhs)?)),
            Div => {
                let d = self.int(rhs)?;
                if d == 0 {
                    return Err(RuntimeError::DivideByZero);
                }
                GuestValue::Int(self.int(lhs)?.wrapping_div(d))
            }
            Rem => {
                let d = self.int(rhs)?;
                if d == 0 {
                    return Err(RuntimeError::DivideByZero);
                }
                GuestValue::Int(self.int(lhs)?.wrapping_rem(d))
            }
            FAdd => GuestValue::Float(self.float(lhs)? + self.float(rhs)?),
            FSub => GuestValue::Float(self.float(lhs)? - self.float(rhs)?),
            FMul => GuestValue::Float(self.float(lhs)? * self.float(rhs)?),
            FDiv => GuestValue::Float(self.float(lhs)? / self.float(rhs)?),
            And => GuestValue::Int(self.int(lhs)? & self.int(rhs)?),
            Or => GuestValue::Int(self.int(lhs)? | self.int(rhs)?),
            Xor => GuestValue::Int(self.int(lhs)? ^ self.int(rhs)?),
            Shl => GuestValue::Int(self.int(lhs)?.wrapping_shl(self.int(rhs)? as u32 & 63)),
            Shr => GuestValue::Int(self.int(lhs)?.wrapping_shr(self.int(rhs)? as u32 & 63)),
            Eq => GuestValue::Int(i64::from(self.int(lhs)? == self.int(rhs)?)),
            Ne => GuestValue::Int(i64::from(self.int(lhs)? != self.int(rhs)?)),
            Lt => GuestValue::Int(i64::from(self.int(lhs)? < self.int(rhs)?)),
            Le => GuestValue::Int(i64::from(self.int(lhs)? <= self.int(rhs)?)),
            Gt => GuestValue::Int(i64::from(self.int(lhs)? > self.int(rhs)?)),
            Ge => GuestValue::Int(i64::from(self.int(lhs)? >= self.int(rhs)?)),
            FEq => GuestValue::Int(i64::from(self.float(lhs)? == self.float(rhs)?)),
            FNe => GuestValue::Int(i64::from(self.float(lhs)? != self.float(rhs)?)),
            FLt => GuestValue::Int(i64::from(self.float(lhs)? < self.float(rhs)?)),
            FLe => GuestValue::Int(i64::from(self.float(lhs)? <= self.float(rhs)?)),
            FGt => GuestValue::Int(i64::from(self.float(lhs)? > self.float(rhs)?)),
            FGe => GuestValue::Int(i64::from(self.float(lhs)? >= self.float(rhs)?)),
            FMin => GuestValue::Float(self.float(lhs)?.min(self.float(rhs)?)),
            FMax => GuestValue::Float(self.float(lhs)?.max(self.float(rhs)?)),
        })
    }
}

impl std::ops::Index<Reg> for Frame {
    type Output = GuestValue;
    fn index(&self, r: Reg) -> &GuestValue {
        &self.regs[r.index()]
    }
}
