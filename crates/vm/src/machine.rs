//! The interpreter itself.

use trace_ir::{BinOp, FuncId, Instr, Program, Reg, Terminator, UnOp, Value};

use crate::counters::{PixieCounts, RunStats};
use crate::error::RuntimeError;
use crate::value::{ArrayData, GuestValue, HeapObject, Input};

/// Which execution engine runs the program.
///
/// Both backends are observably identical — same [`Run`] (output, result,
/// stats, branch trace), same coverage edges, same [`RuntimeError`]s at the
/// same fault points — so the choice is purely a throughput/diagnosability
/// trade-off. The equivalence is enforced by the fuzzer's flat-vs-reference
/// differential oracle and by test batteries over the corpus and workloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The tree-walking interpreter over the structured IR: simple, easy to
    /// audit, and the semantic baseline every other engine is diffed
    /// against.
    #[default]
    Reference,
    /// The pre-compiled flat bytecode interpreter ([`crate::FlatProgram`]):
    /// linearized code, fused compare-and-branch superinstructions,
    /// block-level fuel accounting, and a contiguous register stack. See
    /// DESIGN.md §9.
    Flat,
}

impl Backend {
    /// The CLI/config spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Flat => "flat",
        }
    }

    /// All backends, in the canonical (reference first) order.
    pub const ALL: [Backend; 2] = [Backend::Reference, Backend::Flat];
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(Backend::Reference),
            "flat" => Ok(Backend::Flat),
            other => Err(format!(
                "unknown backend '{other}' (expected 'reference' or 'flat')"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource limits for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Maximum RISC-level instructions to execute before aborting.
    pub fuel: u64,
    /// Maximum call-stack depth.
    pub max_stack: usize,
    /// Maximum elements in one array allocation.
    pub max_alloc: i64,
    /// Record the full ordered branch outcome trace in
    /// [`Run::branch_trace`]. Off by default: traces cost 24 bytes per
    /// dynamic branch, and only the trace-order analyses (dynamic-scheme
    /// simulation, mispredict-gap distribution) need the ordering —
    /// aggregate counts always suffice for static prediction.
    pub record_branch_trace: bool,
    /// The execution engine. Semantically irrelevant (both backends are
    /// observably identical), but part of the harness run key so cached
    /// results record which engine produced them.
    pub backend: Backend,
    /// Trace-formation configuration for [`Backend::Flat`] compilation.
    /// Semantically irrelevant (trace selection never changes observable
    /// behavior), but part of the harness run key.
    pub trace: crate::TraceConfig,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            fuel: 20_000_000_000,
            max_stack: 1 << 16,
            max_alloc: 1 << 26,
            record_branch_trace: false,
            backend: Backend::Reference,
            trace: crate::TraceConfig::default(),
        }
    }
}

/// The result of a successful run: the guest's output stream, the entry
/// function's return value, and everything that was measured.
#[derive(Clone, Debug, PartialEq)]
pub struct Run {
    /// Values the guest `emit`ted, in order.
    pub output: Vec<GuestValue>,
    /// The entry function's return value, if any.
    pub result: Option<GuestValue>,
    /// All counters (IFPROBBER, MFPixie, break events, total instructions).
    pub stats: RunStats,
    /// The ordered branch outcome trace — empty unless
    /// [`VmConfig::record_branch_trace`] was set.
    pub branch_trace: Vec<BranchEvent>,
}

/// Receives one callback per control-flow edge the interpreter traverses —
/// the lightweight coverage hook the fuzzer's feedback loop attaches via
/// [`Vm::run_observed`]. Ordinary runs carry no sink and pay only a
/// per-block-entry `Option` test.
pub trait CoverageSink {
    /// Control entered `to` in `func`, coming from block `from` of the same
    /// function — or from [`ENTRY_EDGE_FROM`] when `func` was just entered
    /// (program start or a call).
    fn edge(&mut self, func: FuncId, from: u32, to: u32);
}

/// The `from` pseudo-block [`CoverageSink::edge`] reports for function
/// entry edges.
pub const ENTRY_EDGE_FROM: u32 = u32::MAX;

/// Receives one callback per executed conditional branch, in program
/// order, with the *actual* outcome — the event stream online dynamic
/// predictors (`mfdyn`) consume via [`Vm::run_branches`]. Mirrors
/// [`CoverageSink`]: ordinary runs carry no sink and pay only an `Option`
/// test per branch, and attaching one changes nothing the run observes
/// (output, stats, trace). The callback always reports the true direction
/// control flow follows, even when a seeded defect perturbs the aggregate
/// counters, so an online predictor and a golden replay of the recorded
/// trace must agree on a clean build.
pub trait BranchSink {
    /// Branch `id` executed and went `taken`.
    fn branch(&mut self, id: trace_ir::BranchId, taken: bool);
}

/// One entry of the recorded branch trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchEvent {
    /// The source-level branch that executed.
    pub id: trace_ir::BranchId,
    /// Whether it was taken.
    pub taken: bool,
    /// RISC-level instructions executed since the previous conditional
    /// branch (inclusive of this branch's own transfer) — the run length
    /// the paper notes matters for ILP ("far more ILP will be available if
    /// one has 80 instructions followed by two mispredicted branches than
    /// 40, a mispredicted branch, 40, a mispredicted branch").
    pub gap: u64,
}

impl Run {
    /// The output stream as integers.
    ///
    /// # Panics
    ///
    /// Panics if any emitted value is not an integer.
    pub fn output_ints(&self) -> Vec<i64> {
        self.output
            .iter()
            .map(|v| v.as_int().expect("non-integer value in output"))
            .collect()
    }

    /// The output stream as floats (integers are not coerced).
    ///
    /// # Panics
    ///
    /// Panics if any emitted value is not a float or zero.
    pub fn output_floats(&self) -> Vec<f64> {
        self.output
            .iter()
            .map(|v| v.as_float().expect("non-float value in output"))
            .collect()
    }
}

struct Frame {
    func: FuncId,
    block: usize,
    ip: usize,
    regs: Vec<GuestValue>,
    ret_dst: Option<Reg>,
    indirect: bool,
    is_entry: bool,
}

/// An interpreter bound to one program.
///
/// `Vm` borrows the program; construct one per run or reuse it — runs do not
/// share state. Under [`Backend::Flat`] the flattened bytecode is compiled
/// on first use and cached for the `Vm`'s lifetime, so reusing one `Vm`
/// across runs amortizes the compilation.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    flat: std::sync::OnceLock<crate::flat::FlatProgram>,
}

impl<'p> Vm<'p> {
    /// Creates a VM with default limits.
    pub fn new(program: &'p Program) -> Self {
        Vm::with_config(program, VmConfig::default())
    }

    /// Creates a VM with explicit limits.
    pub fn with_config(program: &'p Program, config: VmConfig) -> Self {
        Vm {
            program,
            config,
            flat: std::sync::OnceLock::new(),
        }
    }

    fn flat(&self) -> &crate::flat::FlatProgram {
        self.flat.get_or_init(|| {
            crate::flat::FlatProgram::compile_with(self.program, None, self.config.trace)
        })
    }

    /// Runs the program's entry function on `inputs`.
    ///
    /// Array inputs are placed on the heap before execution and passed by
    /// reference; the guest is charged no instructions for them.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault (bad types, bounds,
    /// division by zero, fuel/stack exhaustion, entry arity mismatch).
    pub fn run(&self, inputs: &[Input]) -> Result<Run, RuntimeError> {
        match self.config.backend {
            Backend::Reference => Interp::new(self.program, self.config).run(inputs),
            Backend::Flat => self.flat().run(self.config, inputs),
        }
    }

    /// [`Vm::run`], with every traversed control-flow edge reported to
    /// `sink`. Identical semantics and counters; only observation is added.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as
    /// [`Vm::run`] does.
    pub fn run_observed(
        &self,
        inputs: &[Input],
        sink: &mut dyn CoverageSink,
    ) -> Result<Run, RuntimeError> {
        match self.config.backend {
            Backend::Reference => {
                let mut interp = Interp::new(self.program, self.config);
                interp.observer = Some(sink);
                interp.run(inputs)
            }
            Backend::Flat => self.flat().run_observed(self.config, inputs, sink),
        }
    }

    /// [`Vm::run`], with every conditional branch outcome streamed to
    /// `sink` as it executes. Identical semantics and counters; only
    /// observation is added.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as
    /// [`Vm::run`] does.
    pub fn run_branches(
        &self,
        inputs: &[Input],
        sink: &mut dyn BranchSink,
    ) -> Result<Run, RuntimeError> {
        match self.config.backend {
            Backend::Reference => {
                let mut interp = Interp::new(self.program, self.config);
                interp.branch_sink = Some(sink);
                interp.run(inputs)
            }
            Backend::Flat => self.flat().run_branches(self.config, inputs, sink),
        }
    }
}

/// Runs `program`'s entry function on `inputs` under `config` — the
/// one-shot entry point parallel schedulers use. Everything involved
/// (`Program`, the inputs, the resulting [`Run`]) is `Send + Sync`, so a
/// shared program can be executed from many worker threads at once; each
/// call gets its own interpreter state.
///
/// # Errors
///
/// Returns a [`RuntimeError`] on any dynamic fault, exactly as
/// [`Vm::run`] does.
pub fn run_program(
    program: &Program,
    config: VmConfig,
    inputs: &[Input],
) -> Result<Run, RuntimeError> {
    Vm::with_config(program, config).run(inputs)
}

// The thread-safety contract run_program advertises, checked at compile
// time: a regression (say, an Rc sneaking into the heap or stats) fails
// the build here rather than in a downstream crate's scheduler.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<VmConfig>();
    assert_send_sync::<Input>();
    assert_send_sync::<Run>();
    assert_send_sync::<RunStats>();
    assert_send_sync::<RuntimeError>();
};

struct Interp<'p, 'o> {
    program: &'p Program,
    config: VmConfig,
    heap: Vec<HeapObject>,
    globals: Vec<GuestValue>,
    frames: Vec<Frame>,
    output: Vec<GuestValue>,
    stats: RunStats,
    fuel_used: u64,
    branch_trace: Vec<BranchEvent>,
    last_branch_fuel: u64,
    observer: Option<&'o mut dyn CoverageSink>,
    branch_sink: Option<&'o mut dyn BranchSink>,
}

impl<'p, 'o> Interp<'p, 'o> {
    fn new(program: &'p Program, config: VmConfig) -> Self {
        // Interned constant arrays are mapped into the heap by reference:
        // `Arc::clone` per array, never a payload copy (they are read-only,
        // so the copy-on-write in `Store` can never trigger for them).
        let heap = program
            .const_arrays
            .iter()
            .map(|a| HeapObject {
                data: ArrayData::Ints(std::sync::Arc::clone(a)),
                read_only: true,
            })
            .collect();
        Interp {
            program,
            config,
            heap,
            globals: vec![GuestValue::Zero; program.globals.len()],
            frames: Vec::new(),
            output: Vec::new(),
            stats: RunStats {
                pixie: PixieCounts::for_program(program),
                ..RunStats::default()
            },
            fuel_used: 0,
            branch_trace: Vec::new(),
            last_branch_fuel: 0,
            observer: None,
            branch_sink: None,
        }
    }

    fn observe_edge(&mut self, func: FuncId, from: u32, to: u32) {
        if let Some(obs) = self.observer.as_mut() {
            obs.edge(func, from, to);
        }
    }

    fn run(mut self, inputs: &[Input]) -> Result<Run, RuntimeError> {
        let entry = self.program.entry;
        let entry_fn = self.program.function(entry);
        if inputs.len() != entry_fn.num_params as usize {
            return Err(RuntimeError::BadEntryArity {
                got: inputs.len(),
                expected: entry_fn.num_params,
            });
        }
        let mut regs = vec![GuestValue::Zero; entry_fn.num_regs as usize];
        for (i, input) in inputs.iter().enumerate() {
            regs[i] = match input {
                Input::Int(v) => GuestValue::Int(*v),
                Input::Float(v) => GuestValue::Float(*v),
                Input::Ints(v) => self.alloc(ArrayData::ints(v.clone())),
                Input::Floats(v) => self.alloc(ArrayData::floats(v.clone())),
            };
        }
        self.frames.push(Frame {
            func: entry,
            block: 0,
            ip: 0,
            regs,
            ret_dst: None,
            indirect: false,
            is_entry: true,
        });
        self.stats.pixie.blocks[entry.index()][0] += 1;
        self.observe_edge(entry, ENTRY_EDGE_FROM, 0);

        // `program` is a plain reborrow of the &'p Program, so instruction
        // references below do not conflict with `&mut self` calls.
        let program = self.program;
        let result = loop {
            let frame = self
                .frames
                .last_mut()
                .expect("frame stack never empty here");
            let (fi, bi, ip) = (frame.func, frame.block, frame.ip);
            let block = &program.functions[fi.index()].blocks[bi];
            let has_instr = ip < block.instrs.len();
            if has_instr {
                // Advance before executing so calls resume at the next
                // instruction when their frame is re-entered. (Advancing
                // before the fuel check is unobservable: a fuel fault
                // aborts the run, so the stale ip is never read.)
                frame.ip += 1;
            }
            self.spend_fuel()?;
            if has_instr {
                self.exec_instr(&block.instrs[ip])?;
            } else if let Some(result) = self.exec_terminator(&block.term)? {
                break result;
            }
        };

        self.stats.total_instrs = self.fuel_used;
        Ok(Run {
            output: self.output,
            result,
            stats: self.stats,
            branch_trace: self.branch_trace,
        })
    }

    fn spend_fuel(&mut self) -> Result<(), RuntimeError> {
        self.fuel_used += 1;
        if self.fuel_used > self.config.fuel {
            Err(RuntimeError::OutOfFuel {
                limit: self.config.fuel,
            })
        } else {
            Ok(())
        }
    }

    fn alloc(&mut self, data: ArrayData) -> GuestValue {
        let idx = self.heap.len() as u32;
        self.heap.push(HeapObject {
            data,
            read_only: false,
        });
        GuestValue::Ref(idx)
    }

    fn reg(&self, r: Reg) -> GuestValue {
        self.frames.last().expect("active frame")[r]
    }

    fn set_reg(&mut self, r: Reg, v: GuestValue) {
        let frame = self.frames.last_mut().expect("active frame");
        frame.regs[r.index()] = v;
    }

    fn int(&self, r: Reg) -> Result<i64, RuntimeError> {
        let v = self.reg(r);
        v.as_int().ok_or(RuntimeError::TypeMismatch {
            expected: "int",
            found: v.type_name(),
        })
    }

    fn array_ref(&self, r: Reg) -> Result<u32, RuntimeError> {
        match self.reg(r) {
            GuestValue::Ref(h) => Ok(h),
            v => Err(RuntimeError::TypeMismatch {
                expected: "array",
                found: v.type_name(),
            }),
        }
    }

    fn check_index(index: i64, len: usize) -> Result<usize, RuntimeError> {
        if index < 0 || index as usize >= len {
            Err(RuntimeError::IndexOutOfBounds { index, len })
        } else {
            Ok(index as usize)
        }
    }

    fn exec_instr(&mut self, instr: &Instr) -> Result<(), RuntimeError> {
        match instr {
            Instr::Const { dst, value } => {
                let v = match *value {
                    Value::Int(i) => GuestValue::Int(i),
                    Value::Float(f) => GuestValue::Float(f),
                };
                self.set_reg(*dst, v);
            }
            Instr::Mov { dst, src } => {
                let v = self.reg(*src);
                self.set_reg(*dst, v);
            }
            Instr::Unop { dst, op, src } => {
                let v = self.exec_unop(*op, *src)?;
                self.set_reg(*dst, v);
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let v = self.exec_binop(*op, *lhs, *rhs)?;
                self.set_reg(*dst, v);
            }
            Instr::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                self.stats.events.selects += 1;
                let c = self.int(*cond)?;
                let v = if c != 0 {
                    self.reg(*if_true)
                } else {
                    self.reg(*if_false)
                };
                self.set_reg(*dst, v);
            }
            Instr::Load { dst, arr, index } => {
                let h = self.array_ref(*arr)?;
                let i = self.int(*index)?;
                let obj = &self.heap[h as usize];
                let v = match &obj.data {
                    ArrayData::Ints(v) => GuestValue::Int(v[Self::check_index(i, v.len())?]),
                    ArrayData::Floats(v) => GuestValue::Float(v[Self::check_index(i, v.len())?]),
                };
                self.set_reg(*dst, v);
            }
            Instr::Store { arr, index, src } => {
                let h = self.array_ref(*arr)?;
                let i = self.int(*index)?;
                let v = self.reg(*src);
                let obj = &mut self.heap[h as usize];
                if obj.read_only {
                    return Err(RuntimeError::ReadOnlyStore);
                }
                // `make_mut` is the copy-on-write point; mutable arrays are
                // uniquely owned (only interned constants share payloads,
                // and those were rejected above), so it never copies.
                match &mut obj.data {
                    ArrayData::Ints(data) => {
                        let idx = Self::check_index(i, data.len())?;
                        std::sync::Arc::make_mut(data)[idx] =
                            v.as_int().ok_or(RuntimeError::TypeMismatch {
                                expected: "int",
                                found: v.type_name(),
                            })?;
                    }
                    ArrayData::Floats(data) => {
                        let idx = Self::check_index(i, data.len())?;
                        std::sync::Arc::make_mut(data)[idx] =
                            v.as_float().ok_or(RuntimeError::TypeMismatch {
                                expected: "float",
                                found: v.type_name(),
                            })?;
                    }
                }
            }
            Instr::NewIntArray { dst, len } => {
                let n = self.check_alloc_len(*len)?;
                let v = self.alloc(ArrayData::ints(vec![0; n]));
                self.set_reg(*dst, v);
            }
            Instr::NewFloatArray { dst, len } => {
                let n = self.check_alloc_len(*len)?;
                let v = self.alloc(ArrayData::floats(vec![0.0; n]));
                self.set_reg(*dst, v);
            }
            Instr::ArrayLen { dst, arr } => {
                let h = self.array_ref(*arr)?;
                let len = self.heap[h as usize].data.len() as i64;
                self.set_reg(*dst, GuestValue::Int(len));
            }
            Instr::ConstArray { dst, index } => {
                // Interned arrays occupy heap slots 0..const_arrays.len().
                self.set_reg(*dst, GuestValue::Ref(*index));
            }
            Instr::GlobalGet { dst, global } => {
                let v = self.globals[global.index()];
                self.set_reg(*dst, v);
            }
            Instr::GlobalSet { global, src } => {
                self.globals[global.index()] = self.reg(*src);
            }
            Instr::FuncAddr { dst, func } => {
                self.set_reg(*dst, GuestValue::Func(*func));
            }
            Instr::Call { dst, func, args } => {
                self.stats.events.direct_calls += 1;
                self.push_call(*func, args, *dst, false)?;
            }
            Instr::CallIndirect { dst, target, args } => {
                let callee = match self.reg(*target) {
                    GuestValue::Func(id) => id,
                    v => {
                        return Err(RuntimeError::BadIndirectTarget {
                            found: v.type_name(),
                        })
                    }
                };
                let callee_fn = &self.program.functions[callee.index()];
                if args.len() != callee_fn.num_params as usize {
                    return Err(RuntimeError::IndirectArityMismatch {
                        callee: callee_fn.name.clone(),
                        got: args.len(),
                        expected: callee_fn.num_params,
                    });
                }
                self.stats.events.indirect_calls += 1;
                self.push_call(callee, args, *dst, true)?;
            }
            Instr::Emit { src } => {
                let v = self.reg(*src);
                self.output.push(v);
            }
        }
        Ok(())
    }

    fn check_alloc_len(&self, len: Reg) -> Result<usize, RuntimeError> {
        let n = self.int(len)?;
        if n < 0 || n > self.config.max_alloc {
            Err(RuntimeError::BadArrayLength { len: n })
        } else {
            Ok(n as usize)
        }
    }

    fn push_call(
        &mut self,
        callee: FuncId,
        args: &[Reg],
        ret_dst: Option<Reg>,
        indirect: bool,
    ) -> Result<(), RuntimeError> {
        if self.frames.len() >= self.config.max_stack {
            return Err(RuntimeError::StackOverflow {
                limit: self.config.max_stack,
            });
        }
        let callee_fn = &self.program.functions[callee.index()];
        let mut regs = vec![GuestValue::Zero; callee_fn.num_regs as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = self.reg(*a);
        }
        self.frames.push(Frame {
            func: callee,
            block: 0,
            ip: 0,
            regs,
            ret_dst,
            indirect,
            is_entry: false,
        });
        self.stats.pixie.blocks[callee.index()][0] += 1;
        self.observe_edge(callee, ENTRY_EDGE_FROM, 0);
        Ok(())
    }

    /// Executes a terminator. Returns `Some(result)` when the entry frame
    /// returns (ending the run).
    fn exec_terminator(
        &mut self,
        term: &Terminator,
    ) -> Result<Option<Option<GuestValue>>, RuntimeError> {
        match term {
            Terminator::Jump(target) => {
                self.stats.events.jumps += 1;
                self.enter_block(target.index());
            }
            Terminator::Branch {
                cond,
                id,
                taken,
                not_taken,
            } => {
                let c = self.int(*cond)?;
                let is_taken = c != 0;
                if let Some(sink) = self.branch_sink.as_mut() {
                    sink.branch(*id, is_taken);
                }
                // Seeded-defect hooks perturb only the aggregate counters;
                // control flow and the recorded trace stay correct, so the
                // trace-replay oracle can convict them.
                #[cfg(feature = "seeded-defects")]
                let recorded = if mfdefect::active("vm-branch-count-polarity") {
                    Some(!is_taken)
                } else if mfdefect::active("vm-profile-drop-increment") && !is_taken {
                    None
                } else {
                    Some(is_taken)
                };
                #[cfg(not(feature = "seeded-defects"))]
                let recorded = Some(is_taken);
                if let Some(direction) = recorded {
                    self.stats.branches.record(*id, direction);
                }
                if self.config.record_branch_trace {
                    self.branch_trace.push(BranchEvent {
                        id: *id,
                        taken: is_taken,
                        gap: self.fuel_used - self.last_branch_fuel,
                    });
                    self.last_branch_fuel = self.fuel_used;
                }
                let target = if is_taken { taken } else { not_taken };
                self.enter_block(target.index());
            }
            Terminator::JumpTable {
                index,
                targets,
                default,
            } => {
                self.stats.events.indirect_jumps += 1;
                let i = self.int(*index)?;
                let target = if i >= 0 && (i as usize) < targets.len() {
                    targets[i as usize]
                } else {
                    *default
                };
                self.enter_block(target.index());
            }
            Terminator::Return { value } => {
                let v = value.map(|r| self.reg(r));
                let frame = self.frames.pop().expect("active frame");
                if frame.is_entry {
                    return Ok(Some(v));
                }
                if frame.indirect {
                    self.stats.events.indirect_returns += 1;
                } else {
                    self.stats.events.direct_returns += 1;
                }
                if let Some(dst) = frame.ret_dst {
                    let caller = self.frames.last_mut().expect("caller frame");
                    caller.regs[dst.index()] = v.unwrap_or(GuestValue::Zero);
                }
            }
        }
        Ok(None)
    }

    fn enter_block(&mut self, block: usize) {
        let frame = self.frames.last_mut().expect("active frame");
        let func = frame.func;
        let from = frame.block as u32;
        frame.block = block;
        frame.ip = 0;
        self.stats.pixie.blocks[func.index()][block] += 1;
        self.observe_edge(func, from, block as u32);
    }

    fn exec_unop(&mut self, op: UnOp, src: Reg) -> Result<GuestValue, RuntimeError> {
        eval_unop(op, self.reg(src))
    }

    fn exec_binop(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Result<GuestValue, RuntimeError> {
        eval_binop(op, self.reg(lhs), self.reg(rhs))
    }
}

pub(crate) fn want_int(v: GuestValue) -> Result<i64, RuntimeError> {
    v.as_int().ok_or(RuntimeError::TypeMismatch {
        expected: "int",
        found: v.type_name(),
    })
}

pub(crate) fn want_float(v: GuestValue) -> Result<f64, RuntimeError> {
    v.as_float().ok_or(RuntimeError::TypeMismatch {
        expected: "float",
        found: v.type_name(),
    })
}

/// Evaluates one unary operation. Shared by both backends so their value
/// semantics cannot drift.
pub(crate) fn eval_unop(op: UnOp, v: GuestValue) -> Result<GuestValue, RuntimeError> {
    Ok(match op {
        UnOp::Neg => GuestValue::Int(want_int(v)?.wrapping_neg()),
        UnOp::FNeg => GuestValue::Float(-want_float(v)?),
        UnOp::Not => GuestValue::Int(!want_int(v)?),
        UnOp::LNot => GuestValue::Int(i64::from(want_int(v)? == 0)),
        UnOp::IntToFloat => GuestValue::Float(want_int(v)? as f64),
        UnOp::FloatToInt => GuestValue::Int(want_float(v)? as i64),
        UnOp::Sqrt => GuestValue::Float(want_float(v)?.sqrt()),
        UnOp::Sin => GuestValue::Float(want_float(v)?.sin()),
        UnOp::Cos => GuestValue::Float(want_float(v)?.cos()),
        UnOp::Exp => GuestValue::Float(want_float(v)?.exp()),
        UnOp::Log => GuestValue::Float(want_float(v)?.ln()),
        UnOp::Floor => GuestValue::Float(want_float(v)?.floor()),
        UnOp::Abs => GuestValue::Int(want_int(v)?.wrapping_abs()),
        UnOp::FAbs => GuestValue::Float(want_float(v)?.abs()),
    })
}

/// Evaluates one binary operation on already-fetched operands. Shared by
/// both backends; the operand *type-check* order matches the historical
/// reference interpreter (left first, except `Div`/`Rem`, which inspect the
/// divisor first so `DivideByZero` outranks a left-operand type error).
pub(crate) fn eval_binop(
    op: BinOp,
    l: GuestValue,
    r: GuestValue,
) -> Result<GuestValue, RuntimeError> {
    use BinOp::*;
    Ok(match op {
        Add => GuestValue::Int(want_int(l)?.wrapping_add(want_int(r)?)),
        Sub => GuestValue::Int(want_int(l)?.wrapping_sub(want_int(r)?)),
        Mul => GuestValue::Int(want_int(l)?.wrapping_mul(want_int(r)?)),
        Div => {
            let d = want_int(r)?;
            if d == 0 {
                return Err(RuntimeError::DivideByZero);
            }
            GuestValue::Int(want_int(l)?.wrapping_div(d))
        }
        Rem => {
            let d = want_int(r)?;
            if d == 0 {
                return Err(RuntimeError::DivideByZero);
            }
            GuestValue::Int(want_int(l)?.wrapping_rem(d))
        }
        FAdd => GuestValue::Float(want_float(l)? + want_float(r)?),
        FSub => GuestValue::Float(want_float(l)? - want_float(r)?),
        FMul => GuestValue::Float(want_float(l)? * want_float(r)?),
        FDiv => GuestValue::Float(want_float(l)? / want_float(r)?),
        And => GuestValue::Int(want_int(l)? & want_int(r)?),
        Or => GuestValue::Int(want_int(l)? | want_int(r)?),
        Xor => GuestValue::Int(want_int(l)? ^ want_int(r)?),
        Shl => GuestValue::Int(want_int(l)?.wrapping_shl(want_int(r)? as u32 & 63)),
        Shr => GuestValue::Int(want_int(l)?.wrapping_shr(want_int(r)? as u32 & 63)),
        Eq => GuestValue::Int(i64::from(want_int(l)? == want_int(r)?)),
        Ne => GuestValue::Int(i64::from(want_int(l)? != want_int(r)?)),
        Lt => GuestValue::Int(i64::from(want_int(l)? < want_int(r)?)),
        Le => GuestValue::Int(i64::from(want_int(l)? <= want_int(r)?)),
        Gt => GuestValue::Int(i64::from(want_int(l)? > want_int(r)?)),
        Ge => GuestValue::Int(i64::from(want_int(l)? >= want_int(r)?)),
        FEq => GuestValue::Int(i64::from(want_float(l)? == want_float(r)?)),
        FNe => GuestValue::Int(i64::from(want_float(l)? != want_float(r)?)),
        FLt => GuestValue::Int(i64::from(want_float(l)? < want_float(r)?)),
        FLe => GuestValue::Int(i64::from(want_float(l)? <= want_float(r)?)),
        FGt => GuestValue::Int(i64::from(want_float(l)? > want_float(r)?)),
        FGe => GuestValue::Int(i64::from(want_float(l)? >= want_float(r)?)),
        FMin => GuestValue::Float(want_float(l)?.min(want_float(r)?)),
        FMax => GuestValue::Float(want_float(l)?.max(want_float(r)?)),
    })
}

impl std::ops::Index<Reg> for Frame {
    type Output = GuestValue;
    fn index(&self, r: Reg) -> &GuestValue {
        &self.regs[r.index()]
    }
}
