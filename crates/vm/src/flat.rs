//! The flat bytecode backend: a validated [`Program`] is linearized into one
//! contiguous op stream and executed by a direct-dispatch interpreter.
//!
//! The reference interpreter in [`crate::machine`] walks the structured IR:
//! every step re-resolves `functions[f].blocks[b].instrs[ip]`, charges fuel,
//! and allocates a fresh register `Vec` per call. This backend pre-compiles
//! the program once ([`FlatProgram::compile`]) and removes all of that from
//! the hot loop:
//!
//! * **Linear code.** Blocks become runs of u32-operand [`FlatOp`]s in one
//!   `Vec`; jump/branch targets are absolute code offsets, so dispatch is
//!   `code[pc]` with no pointer chasing.
//! * **Fused superinstructions.** The dominant paper-relevant pattern — a
//!   comparison `Binop` feeding the block's conditional branch — becomes one
//!   `CmpBranch` op, and `Const` + `Binop` (the constant on the right-hand
//!   side) becomes one `ConstBinop`. Fusion is transparent: fused ops still
//!   write their intermediate destination registers and decompose back into
//!   their components for fuel accounting.
//! * **Block-level fuel.** Fuel is charged in bulk at each block entry (and
//!   after each call returns) from pre-computed segment costs instead of
//!   once per instruction; see "Fuel accounting" below.
//! * **Register windows.** All frames live in one contiguous register stack;
//!   a call reserves a window at the top and a return truncates it — no
//!   per-call allocation.
//! * **Layout.** Blocks are emitted in a greedy fall-through chain:
//!   branch-taken arms are placed after the branch only when an `ifprob`
//!   profile says they are the likelier arm (`2·taken > executed`),
//!   otherwise the not-taken arm falls through (the classic
//!   backward-taken/forward-not-taken default). Layout affects only code
//!   locality, never semantics.
//!
//! # Fuel accounting
//!
//! The reference interpreter charges 1 fuel before each instruction and each
//! terminator, and a branch's recorded `gap` reads the fuel counter at the
//! branch. To be observably identical while charging in bulk, each block's
//! instruction list is split into *segments* that end after every call (the
//! call included) with the terminator closing the last segment. A
//! [`FlatOp::BlockHead`] charges the first segment; a [`FlatOp::Resume`]
//! placed after each call op charges the next segment when the callee
//! returns. Control only leaves a segment at its final component (a call or
//! the terminator), so at every control transfer — in particular at every
//! conditional branch, including inside callees — the bulk-charged fuel
//! equals the reference's per-instruction count exactly.
//!
//! When a bulk charge overshoots the limit, the charge is rolled back and
//! the segment is re-executed charging per component
//! ([`FlatInterp::finish_precise`]), reproducing the reference's exact fault
//! point and error — including cases where a `DivideByZero` or
//! `TypeMismatch` preempts `OutOfFuel` mid-segment.

use std::collections::HashMap;
use std::sync::Arc;

use trace_ir::{BinOp, Block, BranchId, FuncId, Function, Instr, Program, Terminator, UnOp, Value};

use crate::counters::{BranchCounts, PixieCounts, RunStats};
use crate::error::RuntimeError;
use crate::machine::{
    eval_binop, eval_unop, want_float, want_int, BranchEvent, CoverageSink, Run, VmConfig,
    ENTRY_EDGE_FROM,
};
use crate::value::{ArrayData, GuestValue, HeapObject, Input};

/// Sentinel operand meaning "absent" (no return register / no return value).
const NONE: u32 = u32::MAX;

/// One op of the flat code stream. All operands are `u32`: register numbers
/// are frame-window offsets, control targets are absolute code offsets
/// (after per-function patching), and pool references index the shared
/// constant/argument/table pools.
#[derive(Clone, Copy, Debug)]
enum FlatOp {
    /// Start of a basic block: bumps the Pixie counter (dense `slot`),
    /// reports the coverage edge, then bulk-charges the block's first fuel
    /// segment.
    BlockHead {
        slot: u32,
        func: u32,
        block: u32,
        cost: u32,
    },
    /// Placed immediately after a call op: bulk-charges the segment that
    /// resumes when the callee returns.
    Resume {
        cost: u32,
    },
    LoadConst {
        dst: u32,
        cidx: u32,
    },
    Mov {
        dst: u32,
        src: u32,
    },
    Unop {
        op: UnOp,
        dst: u32,
        src: u32,
    },
    Binop {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Constant-op specializations of [`FlatOp::Binop`] for the dynamically
    /// hot operators. Each arm calls the exact shared helper the generic
    /// form uses, passing the operator as a literal so the compiler folds
    /// `eval_binop`'s operator dispatch away; [`generalize`] maps every
    /// specialized op back to its generic form for the cold replay paths.
    BinopAdd {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopSub {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopMul {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopDiv {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopRem {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopAnd {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopOr {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopXor {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopShl {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopShr {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFAdd {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFSub {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFMul {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFDiv {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Fused `Const cdst, #cidx` + `Binop dst, lhs, cdst`. The constant
    /// write happens first (still architecturally visible in `cdst`),
    /// matching the unfused execution order even when `lhs == cdst`.
    ConstBinop {
        op: BinOp,
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    /// Constant-op specializations of [`FlatOp::ConstBinop`] (see
    /// [`FlatOp::BinopAdd`] for the scheme).
    ConstBinopAdd {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopSub {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopMul {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopDiv {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopRem {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopAnd {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopOr {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopXor {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopShl {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopShr {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFAdd {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFSub {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFMul {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFDiv {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    Select {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
    },
    Load {
        dst: u32,
        arr: u32,
        index: u32,
    },
    Store {
        arr: u32,
        index: u32,
        src: u32,
    },
    NewIntArray {
        dst: u32,
        len: u32,
    },
    NewFloatArray {
        dst: u32,
        len: u32,
    },
    ArrayLen {
        dst: u32,
        arr: u32,
    },
    ConstArrayRef {
        dst: u32,
        index: u32,
    },
    GlobalGet {
        dst: u32,
        global: u32,
    },
    GlobalSet {
        global: u32,
        src: u32,
    },
    FuncAddr {
        dst: u32,
        func: u32,
    },
    Emit {
        src: u32,
    },
    Call {
        func: u32,
        args: u32,
        nargs: u32,
        ret: u32,
    },
    CallIndirect {
        target: u32,
        args: u32,
        nargs: u32,
        ret: u32,
    },
    Jump {
        target: u32,
    },
    /// `slot` indexes the dense per-run branch counters; the source-level
    /// [`BranchId`] is recovered through [`FlatProgram::branch_ids`].
    Branch {
        cond: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    /// Fused comparison + conditional branch. Writes the comparison result
    /// to `dst` (visible to later blocks), then branches on it.
    CmpBranch {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    /// Constant-op specializations of [`FlatOp::CmpBranch`] for every
    /// comparison operator (see [`FlatOp::BinopAdd`] for the scheme).
    CmpBranchEq {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchNe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchLt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchLe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchGt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchGe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchFEq {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchFNe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchFLt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchFLe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchFGt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    CmpBranchFGe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        taken: u32,
        not_taken: u32,
    },
    JumpTable {
        index: u32,
        table: u32,
    },
    Return {
        src: u32,
    },
}

/// Emits the constant-op specialization of a `Binop` when one exists for
/// `op`, the generic form otherwise. Inverse of [`generalize`].
fn specialize_binop(op: BinOp, dst: u32, lhs: u32, rhs: u32) -> FlatOp {
    match op {
        BinOp::Add => FlatOp::BinopAdd { dst, lhs, rhs },
        BinOp::Sub => FlatOp::BinopSub { dst, lhs, rhs },
        BinOp::Mul => FlatOp::BinopMul { dst, lhs, rhs },
        BinOp::Div => FlatOp::BinopDiv { dst, lhs, rhs },
        BinOp::Rem => FlatOp::BinopRem { dst, lhs, rhs },
        BinOp::And => FlatOp::BinopAnd { dst, lhs, rhs },
        BinOp::Or => FlatOp::BinopOr { dst, lhs, rhs },
        BinOp::Xor => FlatOp::BinopXor { dst, lhs, rhs },
        BinOp::Shl => FlatOp::BinopShl { dst, lhs, rhs },
        BinOp::Shr => FlatOp::BinopShr { dst, lhs, rhs },
        BinOp::FAdd => FlatOp::BinopFAdd { dst, lhs, rhs },
        BinOp::FSub => FlatOp::BinopFSub { dst, lhs, rhs },
        BinOp::FMul => FlatOp::BinopFMul { dst, lhs, rhs },
        BinOp::FDiv => FlatOp::BinopFDiv { dst, lhs, rhs },
        _ => FlatOp::Binop { op, dst, lhs, rhs },
    }
}

/// Emits the constant-op specialization of a `ConstBinop` when one exists
/// for `op`, the generic form otherwise. Inverse of [`generalize`].
fn specialize_const_binop(op: BinOp, dst: u32, lhs: u32, cdst: u32, cidx: u32) -> FlatOp {
    match op {
        BinOp::Add => FlatOp::ConstBinopAdd {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Sub => FlatOp::ConstBinopSub {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Mul => FlatOp::ConstBinopMul {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Div => FlatOp::ConstBinopDiv {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Rem => FlatOp::ConstBinopRem {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::And => FlatOp::ConstBinopAnd {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Or => FlatOp::ConstBinopOr {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Xor => FlatOp::ConstBinopXor {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Shl => FlatOp::ConstBinopShl {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::Shr => FlatOp::ConstBinopShr {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::FAdd => FlatOp::ConstBinopFAdd {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::FSub => FlatOp::ConstBinopFSub {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::FMul => FlatOp::ConstBinopFMul {
            dst,
            lhs,
            cdst,
            cidx,
        },
        BinOp::FDiv => FlatOp::ConstBinopFDiv {
            dst,
            lhs,
            cdst,
            cidx,
        },
        _ => FlatOp::ConstBinop {
            op,
            dst,
            lhs,
            cdst,
            cidx,
        },
    }
}

/// Emits the constant-op specialization of a `CmpBranch`; every comparison
/// operator has one, so the generic form only carries non-comparison ops
/// (which the flattener never fuses). Inverse of [`generalize`].
fn specialize_cmp_branch(op: BinOp, regs: (u32, u32, u32), ctl: (u32, u32, u32)) -> FlatOp {
    let (dst, lhs, rhs) = regs;
    let (slot, taken, not_taken) = ctl;
    match op {
        BinOp::Eq => FlatOp::CmpBranchEq {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::Ne => FlatOp::CmpBranchNe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::Lt => FlatOp::CmpBranchLt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::Le => FlatOp::CmpBranchLe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::Gt => FlatOp::CmpBranchGt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::Ge => FlatOp::CmpBranchGe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::FEq => FlatOp::CmpBranchFEq {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::FNe => FlatOp::CmpBranchFNe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::FLt => FlatOp::CmpBranchFLt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::FLe => FlatOp::CmpBranchFLe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::FGt => FlatOp::CmpBranchFGt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        BinOp::FGe => FlatOp::CmpBranchFGe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        _ => FlatOp::CmpBranch {
            op,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
    }
}

/// Maps every constant-op specialization back to its generic form (identity
/// on everything else). The cold fuel-replay path matches on generic forms
/// only, so it cannot drift from the hot loop's specialized arms, which
/// call the same helpers.
fn generalize(op: FlatOp) -> FlatOp {
    use FlatOp::*;
    match op {
        BinopAdd { dst, lhs, rhs } => Binop {
            op: BinOp::Add,
            dst,
            lhs,
            rhs,
        },
        BinopSub { dst, lhs, rhs } => Binop {
            op: BinOp::Sub,
            dst,
            lhs,
            rhs,
        },
        BinopMul { dst, lhs, rhs } => Binop {
            op: BinOp::Mul,
            dst,
            lhs,
            rhs,
        },
        BinopDiv { dst, lhs, rhs } => Binop {
            op: BinOp::Div,
            dst,
            lhs,
            rhs,
        },
        BinopRem { dst, lhs, rhs } => Binop {
            op: BinOp::Rem,
            dst,
            lhs,
            rhs,
        },
        BinopAnd { dst, lhs, rhs } => Binop {
            op: BinOp::And,
            dst,
            lhs,
            rhs,
        },
        BinopOr { dst, lhs, rhs } => Binop {
            op: BinOp::Or,
            dst,
            lhs,
            rhs,
        },
        BinopXor { dst, lhs, rhs } => Binop {
            op: BinOp::Xor,
            dst,
            lhs,
            rhs,
        },
        BinopShl { dst, lhs, rhs } => Binop {
            op: BinOp::Shl,
            dst,
            lhs,
            rhs,
        },
        BinopShr { dst, lhs, rhs } => Binop {
            op: BinOp::Shr,
            dst,
            lhs,
            rhs,
        },
        BinopFAdd { dst, lhs, rhs } => Binop {
            op: BinOp::FAdd,
            dst,
            lhs,
            rhs,
        },
        BinopFSub { dst, lhs, rhs } => Binop {
            op: BinOp::FSub,
            dst,
            lhs,
            rhs,
        },
        BinopFMul { dst, lhs, rhs } => Binop {
            op: BinOp::FMul,
            dst,
            lhs,
            rhs,
        },
        BinopFDiv { dst, lhs, rhs } => Binop {
            op: BinOp::FDiv,
            dst,
            lhs,
            rhs,
        },
        ConstBinopAdd {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Add,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopSub {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Sub,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopMul {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Mul,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopDiv {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Div,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopRem {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Rem,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopAnd {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::And,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopOr {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Or,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopXor {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Xor,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopShl {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Shl,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopShr {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::Shr,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopFAdd {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::FAdd,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopFSub {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::FSub,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopFMul {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::FMul,
            dst,
            lhs,
            cdst,
            cidx,
        },
        ConstBinopFDiv {
            dst,
            lhs,
            cdst,
            cidx,
        } => ConstBinop {
            op: BinOp::FDiv,
            dst,
            lhs,
            cdst,
            cidx,
        },
        CmpBranchEq {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::Eq,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchNe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::Ne,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchLt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::Lt,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchLe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::Le,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchGt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::Gt,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchGe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::Ge,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchFEq {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::FEq,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchFNe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::FNe,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchFLt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::FLt,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchFLe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::FLe,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchFGt {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::FGt,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        CmpBranchFGe {
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        } => CmpBranch {
            op: BinOp::FGe,
            dst,
            lhs,
            rhs,
            slot,
            taken,
            not_taken,
        },
        other => other,
    }
}

/// One jump table: block targets resolved to absolute code offsets.
#[derive(Debug)]
struct TableData {
    targets: Vec<u32>,
    default: u32,
}

/// Per-function metadata of the flattened program.
#[derive(Debug)]
struct FlatFunc {
    entry_pc: u32,
    num_regs: u32,
    num_params: u32,
    name: String,
}

/// A [`Program`] pre-compiled for the flat backend.
///
/// The compiled form is self-contained (code, pools, per-function metadata,
/// shared constant-array payloads), so running it never touches the source
/// `Program`. Compile once, run many times; [`crate::Vm`] does exactly that,
/// caching the `FlatProgram` for its lifetime.
///
/// Execution is observably identical to the reference backend: same
/// [`Run`] (output, result, stats, branch trace), same coverage edges, and
/// same [`RuntimeError`]s at the same fault points. See the module docs for
/// how fuel accounting preserves this while charging per block segment.
#[derive(Debug)]
pub struct FlatProgram {
    code: Vec<FlatOp>,
    consts: Vec<GuestValue>,
    args: Vec<u32>,
    tables: Vec<TableData>,
    funcs: Vec<FlatFunc>,
    entry: u32,
    globals: usize,
    const_arrays: Vec<Arc<Vec<i64>>>,
    /// Blocks per function — the shape of a fresh [`PixieCounts`].
    block_shape: Vec<usize>,
    /// Dense branch-counter slot → source-level branch id. The hot loop
    /// bumps flat per-slot counters; they fold back into the keyed
    /// [`BranchCounts`] once, when the run finishes.
    branch_ids: Vec<BranchId>,
}

impl FlatProgram {
    /// Compiles `program` with the default (BTFN) block layout.
    pub fn compile(program: &Program) -> Self {
        Flattener::new(program, None).build()
    }

    /// Compiles `program` laying blocks out along the profile's likelier
    /// branch arms: a branch falls through to its taken arm when
    /// `2·taken > executed` in `profile`, to its not-taken arm otherwise.
    /// Layout never changes observable behavior.
    pub fn compile_with_profile(program: &Program, profile: &BranchCounts) -> Self {
        Flattener::new(program, Some(profile)).build()
    }

    /// Number of ops in the compiled code stream (diagnostics and benchmark
    /// metadata; fused patterns make this smaller than the IR op count).
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Runs the program's entry function on `inputs` — the flat-backend
    /// equivalent of [`crate::Vm::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as the
    /// reference backend does.
    pub fn run(&self, config: VmConfig, inputs: &[Input]) -> Result<Run, RuntimeError> {
        FlatInterp::new(self, config).run(inputs)
    }

    /// [`FlatProgram::run`], reporting every traversed control-flow edge to
    /// `sink` — the flat-backend equivalent of [`crate::Vm::run_observed`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as the
    /// reference backend does.
    pub fn run_observed(
        &self,
        config: VmConfig,
        inputs: &[Input],
        sink: &mut dyn CoverageSink,
    ) -> Result<Run, RuntimeError> {
        let mut interp = FlatInterp::new(self, config);
        interp.observer = Some(sink);
        interp.run(inputs)
    }

    /// [`FlatProgram::run`], streaming every conditional branch outcome to
    /// `sink` — the flat-backend equivalent of [`crate::Vm::run_branches`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on any dynamic fault, exactly as the
    /// reference backend does.
    pub fn run_branches(
        &self,
        config: VmConfig,
        inputs: &[Input],
        sink: &mut dyn crate::BranchSink,
    ) -> Result<Run, RuntimeError> {
        let mut interp = FlatInterp::new(self, config);
        interp.branch_sink = Some(sink);
        interp.run(inputs)
    }
}

/// Fuel cost of the segment of `instrs` starting at `from`: instructions up
/// to and including the next call, or all remaining instructions plus 1 for
/// the terminator when no call follows.
fn seg_cost(instrs: &[Instr], from: usize) -> u32 {
    for (k, ins) in instrs[from..].iter().enumerate() {
        if matches!(ins, Instr::Call { .. } | Instr::CallIndirect { .. }) {
            return (k + 1) as u32;
        }
    }
    (instrs.len() - from + 1) as u32
}

struct Flattener<'p> {
    program: &'p Program,
    profile: Option<&'p BranchCounts>,
    code: Vec<FlatOp>,
    consts: Vec<GuestValue>,
    const_map: HashMap<(u8, u64), u32>,
    args: Vec<u32>,
    tables: Vec<TableData>,
    funcs: Vec<FlatFunc>,
    branch_ids: Vec<BranchId>,
    branch_slots: HashMap<u32, u32>,
}

impl<'p> Flattener<'p> {
    fn new(program: &'p Program, profile: Option<&'p BranchCounts>) -> Self {
        Flattener {
            program,
            profile,
            code: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            args: Vec::new(),
            tables: Vec::new(),
            funcs: Vec::new(),
            branch_ids: Vec::new(),
            branch_slots: HashMap::new(),
        }
    }

    fn build(mut self) -> FlatProgram {
        let mut pixie_base = 0u32;
        for (fi, func) in self.program.functions.iter().enumerate() {
            self.flatten_function(fi, func, pixie_base);
            pixie_base += func.blocks.len() as u32;
        }
        FlatProgram {
            code: self.code,
            consts: self.consts,
            args: self.args,
            tables: self.tables,
            funcs: self.funcs,
            entry: self.program.entry.0,
            globals: self.program.globals.len(),
            const_arrays: self.program.const_arrays.iter().map(Arc::clone).collect(),
            block_shape: self
                .program
                .functions
                .iter()
                .map(|f| f.blocks.len())
                .collect(),
            branch_ids: self.branch_ids,
        }
    }

    /// Dense counter slot for a source-level branch id. Distinct lowered
    /// branches can share one [`BranchId`] (pass-duplicated code), so the
    /// mapping is memoized, not positional.
    fn branch_slot(&mut self, id: BranchId) -> u32 {
        if let Some(&slot) = self.branch_slots.get(&id.0) {
            return slot;
        }
        let slot = self.branch_ids.len() as u32;
        self.branch_ids.push(id);
        self.branch_slots.insert(id.0, slot);
        slot
    }

    fn flatten_function(&mut self, fi: usize, func: &Function, pixie_base: u32) {
        let order = self.layout_order(func);
        let func_start = self.code.len();
        let table_start = self.tables.len();
        let mut block_pc = vec![0u32; func.blocks.len()];
        for &b in &order {
            block_pc[b] = self.code.len() as u32;
            self.emit_block(fi, b, pixie_base, &func.blocks[b]);
        }
        // Control targets were emitted as block ids; resolve them to code
        // offsets now that every block of this function has a position.
        for op in &mut self.code[func_start..] {
            match op {
                FlatOp::Jump { target } => *target = block_pc[*target as usize],
                FlatOp::Branch {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranch {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchEq {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchNe {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchLt {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchLe {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchGt {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchGe {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchFEq {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchFNe {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchFLt {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchFLe {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchFGt {
                    taken, not_taken, ..
                }
                | FlatOp::CmpBranchFGe {
                    taken, not_taken, ..
                } => {
                    *taken = block_pc[*taken as usize];
                    *not_taken = block_pc[*not_taken as usize];
                }
                _ => {}
            }
        }
        for t in &mut self.tables[table_start..] {
            for x in &mut t.targets {
                *x = block_pc[*x as usize];
            }
            t.default = block_pc[t.default as usize];
        }
        self.funcs.push(FlatFunc {
            entry_pc: block_pc[0],
            num_regs: func.num_regs,
            num_params: func.num_params,
            name: func.name.clone(),
        });
    }

    /// Greedy fall-through chaining from the entry block: each block is
    /// followed by its preferred successor when still unplaced; exhausted
    /// chains restart at the lowest-index unplaced block.
    fn layout_order(&self, func: &Function) -> Vec<usize> {
        let n = func.blocks.len();
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0usize;
        let mut chain = Some(0usize);
        while order.len() < n {
            let b = match chain.filter(|&b| !placed[b]) {
                Some(b) => b,
                None => {
                    while placed[cursor] {
                        cursor += 1;
                    }
                    cursor
                }
            };
            placed[b] = true;
            order.push(b);
            chain = self.fallthrough_successor(&func.blocks[b], &placed);
        }
        order
    }

    fn fallthrough_successor(&self, block: &Block, placed: &[bool]) -> Option<usize> {
        match &block.term {
            Terminator::Jump(t) => Some(t.index()).filter(|&b| !placed[b]),
            Terminator::Branch {
                id,
                taken,
                not_taken,
                ..
            } => {
                // With a profile: fall through to the likelier arm. Without:
                // fall through to not-taken (backward-taken/forward-not-taken).
                let prefer_taken = self.profile.is_some_and(|p| {
                    let (e, t) = p.get(*id);
                    e > 0 && 2 * t > e
                });
                let (first, second) = if prefer_taken {
                    (taken.index(), not_taken.index())
                } else {
                    (not_taken.index(), taken.index())
                };
                if !placed[first] {
                    Some(first)
                } else if !placed[second] {
                    Some(second)
                } else {
                    None
                }
            }
            Terminator::JumpTable {
                targets, default, ..
            } => {
                if !placed[default.index()] {
                    Some(default.index())
                } else {
                    targets.iter().map(|t| t.index()).find(|&b| !placed[b])
                }
            }
            Terminator::Return { .. } => None,
        }
    }

    fn intern(&mut self, value: Value) -> u32 {
        let key = match value {
            Value::Int(i) => (0u8, i as u64),
            Value::Float(f) => (1u8, f.to_bits()),
        };
        if let Some(&idx) = self.const_map.get(&key) {
            return idx;
        }
        let idx = self.consts.len() as u32;
        self.consts.push(match value {
            Value::Int(i) => GuestValue::Int(i),
            Value::Float(f) => GuestValue::Float(f),
        });
        self.const_map.insert(key, idx);
        idx
    }

    fn emit_block(&mut self, fi: usize, bi: usize, pixie_base: u32, block: &Block) {
        let instrs = &block.instrs;
        self.code.push(FlatOp::BlockHead {
            slot: pixie_base + bi as u32,
            func: fi as u32,
            block: bi as u32,
            cost: seg_cost(instrs, 0),
        });
        // Fusion pattern A: a comparison Binop whose result feeds the
        // block's own conditional branch is folded into the terminator.
        let fused_last = match (&block.term, instrs.last()) {
            (Terminator::Branch { cond, .. }, Some(Instr::Binop { dst, op, .. }))
                if op.is_comparison() && dst == cond =>
            {
                Some(instrs.len() - 1)
            }
            _ => None,
        };
        let mut i = 0;
        while i < instrs.len() {
            if Some(i) == fused_last {
                i += 1;
                continue;
            }
            match &instrs[i] {
                Instr::Const { dst, value } => {
                    let cidx = self.intern(*value);
                    // Fusion pattern B: a Const consumed as the right-hand
                    // side of the next Binop (unless that Binop is already
                    // reserved by pattern A).
                    if let Some(Instr::Binop {
                        dst: bdst,
                        op,
                        lhs,
                        rhs,
                    }) = instrs.get(i + 1)
                    {
                        if Some(i + 1) != fused_last && rhs == dst {
                            self.code
                                .push(specialize_const_binop(*op, bdst.0, lhs.0, dst.0, cidx));
                            i += 2;
                            continue;
                        }
                    }
                    self.code.push(FlatOp::LoadConst { dst: dst.0, cidx });
                }
                Instr::Mov { dst, src } => self.code.push(FlatOp::Mov {
                    dst: dst.0,
                    src: src.0,
                }),
                Instr::Unop { dst, op, src } => self.code.push(FlatOp::Unop {
                    op: *op,
                    dst: dst.0,
                    src: src.0,
                }),
                Instr::Binop { dst, op, lhs, rhs } => {
                    self.code.push(specialize_binop(*op, dst.0, lhs.0, rhs.0))
                }
                Instr::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => self.code.push(FlatOp::Select {
                    dst: dst.0,
                    cond: cond.0,
                    if_true: if_true.0,
                    if_false: if_false.0,
                }),
                Instr::Load { dst, arr, index } => self.code.push(FlatOp::Load {
                    dst: dst.0,
                    arr: arr.0,
                    index: index.0,
                }),
                Instr::Store { arr, index, src } => self.code.push(FlatOp::Store {
                    arr: arr.0,
                    index: index.0,
                    src: src.0,
                }),
                Instr::NewIntArray { dst, len } => self.code.push(FlatOp::NewIntArray {
                    dst: dst.0,
                    len: len.0,
                }),
                Instr::NewFloatArray { dst, len } => self.code.push(FlatOp::NewFloatArray {
                    dst: dst.0,
                    len: len.0,
                }),
                Instr::ArrayLen { dst, arr } => self.code.push(FlatOp::ArrayLen {
                    dst: dst.0,
                    arr: arr.0,
                }),
                Instr::ConstArray { dst, index } => self.code.push(FlatOp::ConstArrayRef {
                    dst: dst.0,
                    index: *index,
                }),
                Instr::GlobalGet { dst, global } => self.code.push(FlatOp::GlobalGet {
                    dst: dst.0,
                    global: global.0,
                }),
                Instr::GlobalSet { global, src } => self.code.push(FlatOp::GlobalSet {
                    global: global.0,
                    src: src.0,
                }),
                Instr::FuncAddr { dst, func } => self.code.push(FlatOp::FuncAddr {
                    dst: dst.0,
                    func: func.0,
                }),
                Instr::Emit { src } => self.code.push(FlatOp::Emit { src: src.0 }),
                Instr::Call { dst, func, args } => {
                    let at = self.args.len() as u32;
                    self.args.extend(args.iter().map(|r| r.0));
                    self.code.push(FlatOp::Call {
                        func: func.0,
                        args: at,
                        nargs: args.len() as u32,
                        ret: dst.map_or(NONE, |r| r.0),
                    });
                    self.code.push(FlatOp::Resume {
                        cost: seg_cost(instrs, i + 1),
                    });
                }
                Instr::CallIndirect { dst, target, args } => {
                    let at = self.args.len() as u32;
                    self.args.extend(args.iter().map(|r| r.0));
                    self.code.push(FlatOp::CallIndirect {
                        target: target.0,
                        args: at,
                        nargs: args.len() as u32,
                        ret: dst.map_or(NONE, |r| r.0),
                    });
                    self.code.push(FlatOp::Resume {
                        cost: seg_cost(instrs, i + 1),
                    });
                }
            }
            i += 1;
        }
        match &block.term {
            Terminator::Jump(t) => self.code.push(FlatOp::Jump { target: t.0 }),
            Terminator::Branch {
                cond,
                id,
                taken,
                not_taken,
            } => {
                let slot = self.branch_slot(*id);
                if let Some(fl) = fused_last {
                    let Instr::Binop { dst, op, lhs, rhs } = &instrs[fl] else {
                        unreachable!("pattern A reserves only comparison Binops");
                    };
                    #[allow(unused_mut)]
                    let (mut tk, mut nt) = (taken.0, not_taken.0);
                    // Seeded defect: swap the fused branch's control
                    // targets. Recording still follows the comparison
                    // result, so only the flat-vs-reference differential
                    // sees the divergence.
                    #[cfg(feature = "seeded-defects")]
                    if mfdefect::active("vm-flat-fuse-swapped-arms") {
                        std::mem::swap(&mut tk, &mut nt);
                    }
                    self.code.push(specialize_cmp_branch(
                        *op,
                        (dst.0, lhs.0, rhs.0),
                        (slot, tk, nt),
                    ));
                } else {
                    self.code.push(FlatOp::Branch {
                        cond: cond.0,
                        slot,
                        taken: taken.0,
                        not_taken: not_taken.0,
                    });
                }
            }
            Terminator::JumpTable {
                index,
                targets,
                default,
            } => {
                let ti = self.tables.len() as u32;
                self.tables.push(TableData {
                    targets: targets.iter().map(|t| t.0).collect(),
                    default: default.0,
                });
                self.code.push(FlatOp::JumpTable {
                    index: index.0,
                    table: ti,
                });
            }
            Terminator::Return { value } => self.code.push(FlatOp::Return {
                src: value.map_or(NONE, |r| r.0),
            }),
        }
    }
}

/// One frame of the contiguous register stack.
#[derive(Clone, Copy, Debug)]
struct FlatFrame {
    /// Code offset to resume at in the caller (points at a `Resume` op).
    ret_pc: u32,
    /// Start of this frame's register window in the shared stack.
    base: u32,
    /// Caller-window register receiving the return value, or `NONE`.
    ret_dst: u32,
    /// Current block, for coverage-edge `from` ([`ENTRY_EDGE_FROM`] until
    /// the function's entry block head runs).
    cur_block: u32,
    /// Whether the frame was entered through an indirect call.
    indirect: bool,
}

struct FlatInterp<'f, 'o> {
    fp: &'f FlatProgram,
    config: VmConfig,
    heap: Vec<HeapObject>,
    globals: Vec<GuestValue>,
    regs: Vec<GuestValue>,
    frames: Vec<FlatFrame>,
    output: Vec<GuestValue>,
    stats: RunStats,
    /// Dense per-block execution counts (slot order); folded into
    /// [`PixieCounts`] when the run finishes.
    pixie: Vec<u64>,
    /// Dense per-branch `(executed, taken)` counts (slot order); folded
    /// into the keyed [`BranchCounts`] when the run finishes. Keeps the
    /// hot loop free of the reference backend's per-branch map lookup.
    branch_hits: Vec<(u64, u64)>,
    fuel_used: u64,
    branch_trace: Vec<BranchEvent>,
    last_branch_fuel: u64,
    observer: Option<&'o mut dyn CoverageSink>,
    branch_sink: Option<&'o mut dyn crate::BranchSink>,
}

fn want_ref(v: GuestValue) -> Result<u32, RuntimeError> {
    match v {
        GuestValue::Ref(h) => Ok(h),
        v => Err(RuntimeError::TypeMismatch {
            expected: "array",
            found: v.type_name(),
        }),
    }
}

fn check_index(index: i64, len: usize) -> Result<usize, RuntimeError> {
    if index < 0 || index as usize >= len {
        Err(RuntimeError::IndexOutOfBounds { index, len })
    } else {
        Ok(index as usize)
    }
}

impl<'f, 'o> FlatInterp<'f, 'o> {
    fn new(fp: &'f FlatProgram, config: VmConfig) -> Self {
        let heap = fp
            .const_arrays
            .iter()
            .map(|a| HeapObject {
                data: ArrayData::Ints(Arc::clone(a)),
                read_only: true,
            })
            .collect();
        FlatInterp {
            fp,
            config,
            heap,
            globals: vec![GuestValue::Zero; fp.globals],
            regs: Vec::new(),
            frames: Vec::new(),
            output: Vec::new(),
            stats: RunStats::default(),
            pixie: vec![0; fp.block_shape.iter().sum()],
            branch_hits: vec![(0, 0); fp.branch_ids.len()],
            fuel_used: 0,
            branch_trace: Vec::new(),
            last_branch_fuel: 0,
            observer: None,
            branch_sink: None,
        }
    }

    fn run(mut self, inputs: &[Input]) -> Result<Run, RuntimeError> {
        let fp = self.fp;
        let entry = &fp.funcs[fp.entry as usize];
        if inputs.len() != entry.num_params as usize {
            return Err(RuntimeError::BadEntryArity {
                got: inputs.len(),
                expected: entry.num_params,
            });
        }
        self.regs.resize(entry.num_regs as usize, GuestValue::Zero);
        for (i, input) in inputs.iter().enumerate() {
            self.regs[i] = match input {
                Input::Int(v) => GuestValue::Int(*v),
                Input::Float(v) => GuestValue::Float(*v),
                Input::Ints(v) => self.alloc(ArrayData::ints(v.clone())),
                Input::Floats(v) => self.alloc(ArrayData::floats(v.clone())),
            };
        }
        // Unlike the reference, the entry block's Pixie bump and coverage
        // edge are not pre-counted here: the entry BlockHead emits both, in
        // the same observable order.
        self.frames.push(FlatFrame {
            ret_pc: NONE,
            base: 0,
            ret_dst: NONE,
            cur_block: ENTRY_EDGE_FROM,
            indirect: false,
        });
        let mut pc = entry.entry_pc as usize;
        let mut base = 0usize;
        // The current frame's block, kept in a local so the hot BlockHead
        // arm never touches the frame stack; it is saved to the caller's
        // frame on call and restored from it on return.
        let mut cur_block = ENTRY_EDGE_FROM;

        let result = loop {
            // Matching on the indexed place (not a `let`-copied value) lets
            // each arm load only the fields it uses instead of copying the
            // whole 32-byte op.
            let op = &fp.code[pc];
            pc += 1;
            match *op {
                FlatOp::BlockHead {
                    slot,
                    func,
                    block,
                    cost,
                } => {
                    self.pixie[slot as usize] += 1;
                    if let Some(obs) = self.observer.as_mut() {
                        obs.edge(FuncId(func), cur_block, block);
                    }
                    cur_block = block;
                    self.fuel_used += u64::from(cost);
                    if self.fuel_used > self.config.fuel {
                        return Err(self.finish_precise(pc, base, cost));
                    }
                }
                FlatOp::Resume { cost } => {
                    self.fuel_used += u64::from(cost);
                    if self.fuel_used > self.config.fuel {
                        return Err(self.finish_precise(pc, base, cost));
                    }
                }
                FlatOp::Jump { target } => {
                    self.stats.events.jumps += 1;
                    pc = target as usize;
                }
                FlatOp::Branch {
                    cond,
                    slot,
                    taken,
                    not_taken,
                } => {
                    let c = want_int(self.regs[base + cond as usize])?;
                    pc = self.branch_to(slot, c != 0, taken, not_taken);
                }
                FlatOp::CmpBranch {
                    op,
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(op, (dst, lhs, rhs), (slot, taken, not_taken), base)?;
                }
                FlatOp::CmpBranchEq {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::Eq,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchNe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::Ne,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchLt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::Lt,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchLe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::Le,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchGt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::Gt,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchGe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::Ge,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchFEq {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::FEq,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchFNe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::FNe,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchFLt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::FLt,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchFLe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::FLe,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchFGt {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::FGt,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::CmpBranchFGe {
                    dst,
                    lhs,
                    rhs,
                    slot,
                    taken,
                    not_taken,
                } => {
                    pc = self.op_cmp_branch(
                        BinOp::FGe,
                        (dst, lhs, rhs),
                        (slot, taken, not_taken),
                        base,
                    )?;
                }
                FlatOp::JumpTable { index, table } => {
                    self.stats.events.indirect_jumps += 1;
                    let i = want_int(self.regs[base + index as usize])?;
                    let t = &fp.tables[table as usize];
                    pc = if i >= 0 && (i as usize) < t.targets.len() {
                        t.targets[i as usize] as usize
                    } else {
                        t.default as usize
                    };
                }
                FlatOp::Call {
                    func,
                    args,
                    nargs,
                    ret,
                } => {
                    self.stats.events.direct_calls += 1;
                    self.frames.last_mut().expect("active frame").cur_block = cur_block;
                    let (npc, nbase) = self.push_call(func, (args, nargs), ret, false, pc, base)?;
                    pc = npc;
                    base = nbase;
                    cur_block = ENTRY_EDGE_FROM;
                }
                FlatOp::CallIndirect {
                    target,
                    args,
                    nargs,
                    ret,
                } => {
                    let callee = match self.regs[base + target as usize] {
                        GuestValue::Func(id) => id.0,
                        v => {
                            return Err(RuntimeError::BadIndirectTarget {
                                found: v.type_name(),
                            })
                        }
                    };
                    let callee_fn = &fp.funcs[callee as usize];
                    if nargs != callee_fn.num_params {
                        return Err(RuntimeError::IndirectArityMismatch {
                            callee: callee_fn.name.clone(),
                            got: nargs as usize,
                            expected: callee_fn.num_params,
                        });
                    }
                    self.stats.events.indirect_calls += 1;
                    self.frames.last_mut().expect("active frame").cur_block = cur_block;
                    let (npc, nbase) =
                        self.push_call(callee, (args, nargs), ret, true, pc, base)?;
                    pc = npc;
                    base = nbase;
                    cur_block = ENTRY_EDGE_FROM;
                }
                FlatOp::Return { src } => {
                    let v = if src == NONE {
                        None
                    } else {
                        Some(self.regs[base + src as usize])
                    };
                    let frame = self.frames.pop().expect("active frame");
                    if self.frames.is_empty() {
                        break v;
                    }
                    if frame.indirect {
                        self.stats.events.indirect_returns += 1;
                    } else {
                        self.stats.events.direct_returns += 1;
                    }
                    let caller = self.frames.last().expect("caller frame");
                    let caller_base = caller.base as usize;
                    cur_block = caller.cur_block;
                    self.regs.truncate(frame.base as usize);
                    if frame.ret_dst != NONE {
                        self.regs[caller_base + frame.ret_dst as usize] =
                            v.unwrap_or(GuestValue::Zero);
                    }
                    pc = frame.ret_pc as usize;
                    base = caller_base;
                }
                // Leaf ops: one arm per variant — single dispatch, no
                // second match. Every arm calls the same `#[inline(always)]`
                // helper the cold replay path uses, constant-op variants
                // with their operator as a literal.
                FlatOp::LoadConst { dst, cidx } => self.op_load_const(dst, cidx, base),
                FlatOp::Mov { dst, src } => self.op_mov(dst, src, base),
                FlatOp::Unop { op, dst, src } => self.op_unop(op, dst, src, base)?,
                FlatOp::Binop { op, dst, lhs, rhs } => self.op_binop(op, dst, lhs, rhs, base)?,
                FlatOp::BinopAdd { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Add, dst, lhs, rhs, base)?
                }
                FlatOp::BinopSub { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Sub, dst, lhs, rhs, base)?
                }
                FlatOp::BinopMul { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Mul, dst, lhs, rhs, base)?
                }
                FlatOp::BinopDiv { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Div, dst, lhs, rhs, base)?
                }
                FlatOp::BinopRem { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Rem, dst, lhs, rhs, base)?
                }
                FlatOp::BinopAnd { dst, lhs, rhs } => {
                    self.op_binop(BinOp::And, dst, lhs, rhs, base)?
                }
                FlatOp::BinopOr { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Or, dst, lhs, rhs, base)?
                }
                FlatOp::BinopXor { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Xor, dst, lhs, rhs, base)?
                }
                FlatOp::BinopShl { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Shl, dst, lhs, rhs, base)?
                }
                FlatOp::BinopShr { dst, lhs, rhs } => {
                    self.op_binop(BinOp::Shr, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFAdd { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FAdd, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFSub { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FSub, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFMul { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FMul, dst, lhs, rhs, base)?
                }
                FlatOp::BinopFDiv { dst, lhs, rhs } => {
                    self.op_binop(BinOp::FDiv, dst, lhs, rhs, base)?
                }
                FlatOp::ConstBinop {
                    op,
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(op, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopAdd {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Add, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopSub {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Sub, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopMul {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Mul, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopDiv {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Div, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopRem {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Rem, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopAnd {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::And, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopOr {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Or, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopXor {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Xor, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopShl {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Shl, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopShr {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::Shr, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFAdd {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FAdd, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFSub {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FSub, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFMul {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FMul, dst, lhs, cdst, cidx, base)?,
                FlatOp::ConstBinopFDiv {
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => self.op_const_binop(BinOp::FDiv, dst, lhs, cdst, cidx, base)?,
                FlatOp::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => self.op_select(dst, cond, if_true, if_false, base)?,
                FlatOp::Load { dst, arr, index } => self.op_load(dst, arr, index, base)?,
                FlatOp::Store { arr, index, src } => self.op_store(arr, index, src, base)?,
                FlatOp::NewIntArray { dst, len } => self.op_new_int_array(dst, len, base)?,
                FlatOp::NewFloatArray { dst, len } => self.op_new_float_array(dst, len, base)?,
                FlatOp::ArrayLen { dst, arr } => self.op_array_len(dst, arr, base)?,
                FlatOp::ConstArrayRef { dst, index } => self.op_const_array_ref(dst, index, base),
                FlatOp::GlobalGet { dst, global } => self.op_global_get(dst, global, base),
                FlatOp::GlobalSet { global, src } => self.op_global_set(global, src, base),
                FlatOp::FuncAddr { dst, func } => self.op_func_addr(dst, func, base),
                FlatOp::Emit { src } => self.op_emit(src, base),
            }
        };

        self.stats.total_instrs = self.fuel_used;
        // Fold the dense counters back into the keyed shapes the rest of
        // the system consumes. Skipping never-executed branches matches the
        // reference, whose map only gains an entry on first record.
        for (slot, &(executed, taken)) in self.branch_hits.iter().enumerate() {
            if executed > 0 {
                self.stats
                    .branches
                    .add(self.fp.branch_ids[slot], executed, taken);
            }
        }
        let mut blocks = Vec::with_capacity(self.fp.block_shape.len());
        let mut off = 0;
        for &n in &self.fp.block_shape {
            blocks.push(self.pixie[off..off + n].to_vec());
            off += n;
        }
        self.stats.pixie = PixieCounts { blocks };
        Ok(Run {
            output: self.output,
            result,
            stats: self.stats,
            branch_trace: self.branch_trace,
        })
    }

    /// Executes one non-control op for the precise fuel replay. Dispatches
    /// through [`generalize`] and the same `op_*` helpers as the hot loop,
    /// so semantics cannot diverge between them.
    fn exec_leaf(&mut self, op: FlatOp, base: usize) -> Result<(), RuntimeError> {
        match generalize(op) {
            FlatOp::LoadConst { dst, cidx } => self.op_load_const(dst, cidx, base),
            FlatOp::Mov { dst, src } => self.op_mov(dst, src, base),
            FlatOp::Unop { op, dst, src } => self.op_unop(op, dst, src, base)?,
            FlatOp::Binop { op, dst, lhs, rhs } => self.op_binop(op, dst, lhs, rhs, base)?,
            FlatOp::ConstBinop {
                op,
                dst,
                lhs,
                cdst,
                cidx,
            } => self.op_const_binop(op, dst, lhs, cdst, cidx, base)?,
            FlatOp::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => self.op_select(dst, cond, if_true, if_false, base)?,
            FlatOp::Load { dst, arr, index } => self.op_load(dst, arr, index, base)?,
            FlatOp::Store { arr, index, src } => self.op_store(arr, index, src, base)?,
            FlatOp::NewIntArray { dst, len } => self.op_new_int_array(dst, len, base)?,
            FlatOp::NewFloatArray { dst, len } => self.op_new_float_array(dst, len, base)?,
            FlatOp::ArrayLen { dst, arr } => self.op_array_len(dst, arr, base)?,
            FlatOp::ConstArrayRef { dst, index } => self.op_const_array_ref(dst, index, base),
            FlatOp::GlobalGet { dst, global } => self.op_global_get(dst, global, base),
            FlatOp::GlobalSet { global, src } => self.op_global_set(global, src, base),
            FlatOp::FuncAddr { dst, func } => self.op_func_addr(dst, func, base),
            FlatOp::Emit { src } => self.op_emit(src, base),
            // `generalize` folds every specialized variant away; the rest
            // are control ops, which never reach the leaf path.
            _ => unreachable!("control op reached exec_leaf"),
        }
        Ok(())
    }

    #[inline(always)]
    fn op_load_const(&mut self, dst: u32, cidx: u32, base: usize) {
        self.regs[base + dst as usize] = self.fp.consts[cidx as usize];
    }

    #[inline(always)]
    fn op_mov(&mut self, dst: u32, src: u32, base: usize) {
        self.regs[base + dst as usize] = self.regs[base + src as usize];
    }

    #[inline(always)]
    fn op_unop(&mut self, op: UnOp, dst: u32, src: u32, base: usize) -> Result<(), RuntimeError> {
        let v = eval_unop(op, self.regs[base + src as usize])?;
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline(always)]
    fn op_binop(
        &mut self,
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        let v = eval_binop(
            op,
            self.regs[base + lhs as usize],
            self.regs[base + rhs as usize],
        )?;
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline(always)]
    fn op_const_binop(
        &mut self,
        op: BinOp,
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        // Constant write first — matches unfused order even when
        // `lhs == cdst`.
        self.regs[base + cdst as usize] = self.fp.consts[cidx as usize];
        let v = eval_binop(
            op,
            self.regs[base + lhs as usize],
            self.regs[base + cdst as usize],
        )?;
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    /// Fused comparison + conditional branch: evaluates the comparison,
    /// writes `dst` (visible to later blocks), records the branch, and
    /// returns the destination code offset.
    #[inline(always)]
    fn op_cmp_branch(
        &mut self,
        op: BinOp,
        regs: (u32, u32, u32),
        ctl: (u32, u32, u32),
        base: usize,
    ) -> Result<usize, RuntimeError> {
        let (dst, lhs, rhs) = regs;
        let (slot, taken, not_taken) = ctl;
        let v = eval_binop(
            op,
            self.regs[base + lhs as usize],
            self.regs[base + rhs as usize],
        )?;
        self.regs[base + dst as usize] = v;
        // Comparison results are always Int(0|1), so the branch itself can
        // never type-fault.
        let is_taken = matches!(v, GuestValue::Int(i) if i != 0);
        Ok(self.branch_to(slot, is_taken, taken, not_taken))
    }

    #[inline]
    fn op_select(
        &mut self,
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        self.stats.events.selects += 1;
        let c = want_int(self.regs[base + cond as usize])?;
        let v = if c != 0 {
            self.regs[base + if_true as usize]
        } else {
            self.regs[base + if_false as usize]
        };
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_load(&mut self, dst: u32, arr: u32, index: u32, base: usize) -> Result<(), RuntimeError> {
        let h = want_ref(self.regs[base + arr as usize])?;
        let i = want_int(self.regs[base + index as usize])?;
        let v = match &self.heap[h as usize].data {
            ArrayData::Ints(v) => GuestValue::Int(v[check_index(i, v.len())?]),
            ArrayData::Floats(v) => GuestValue::Float(v[check_index(i, v.len())?]),
        };
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_store(
        &mut self,
        arr: u32,
        index: u32,
        src: u32,
        base: usize,
    ) -> Result<(), RuntimeError> {
        let h = want_ref(self.regs[base + arr as usize])?;
        let i = want_int(self.regs[base + index as usize])?;
        let v = self.regs[base + src as usize];
        let obj = &mut self.heap[h as usize];
        if obj.read_only {
            return Err(RuntimeError::ReadOnlyStore);
        }
        match &mut obj.data {
            ArrayData::Ints(data) => {
                let idx = check_index(i, data.len())?;
                Arc::make_mut(data)[idx] = want_int(v)?;
            }
            ArrayData::Floats(data) => {
                let idx = check_index(i, data.len())?;
                Arc::make_mut(data)[idx] = want_float(v)?;
            }
        }
        Ok(())
    }

    #[inline]
    fn op_new_int_array(&mut self, dst: u32, len: u32, base: usize) -> Result<(), RuntimeError> {
        let n = self.check_alloc_len(self.regs[base + len as usize])?;
        let v = self.alloc(ArrayData::ints(vec![0; n]));
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_new_float_array(&mut self, dst: u32, len: u32, base: usize) -> Result<(), RuntimeError> {
        let n = self.check_alloc_len(self.regs[base + len as usize])?;
        let v = self.alloc(ArrayData::floats(vec![0.0; n]));
        self.regs[base + dst as usize] = v;
        Ok(())
    }

    #[inline]
    fn op_array_len(&mut self, dst: u32, arr: u32, base: usize) -> Result<(), RuntimeError> {
        let h = want_ref(self.regs[base + arr as usize])?;
        let len = self.heap[h as usize].data.len() as i64;
        self.regs[base + dst as usize] = GuestValue::Int(len);
        Ok(())
    }

    #[inline(always)]
    fn op_const_array_ref(&mut self, dst: u32, index: u32, base: usize) {
        self.regs[base + dst as usize] = GuestValue::Ref(index);
    }

    #[inline(always)]
    fn op_global_get(&mut self, dst: u32, global: u32, base: usize) {
        self.regs[base + dst as usize] = self.globals[global as usize];
    }

    #[inline(always)]
    fn op_global_set(&mut self, global: u32, src: u32, base: usize) {
        self.globals[global as usize] = self.regs[base + src as usize];
    }

    #[inline(always)]
    fn op_func_addr(&mut self, dst: u32, func: u32, base: usize) {
        self.regs[base + dst as usize] = GuestValue::Func(FuncId(func));
    }

    #[inline(always)]
    fn op_emit(&mut self, src: u32, base: usize) {
        let v = self.regs[base + src as usize];
        self.output.push(v);
    }

    /// Records a conditional branch (counters and optional trace) and
    /// returns the code offset control moves to. Mirrors the reference
    /// terminator arm, including the seeded-defect hooks that perturb only
    /// the aggregate counters.
    fn branch_to(&mut self, slot: u32, is_taken: bool, taken: u32, not_taken: u32) -> usize {
        if let Some(sink) = self.branch_sink.as_mut() {
            sink.branch(self.fp.branch_ids[slot as usize], is_taken);
        }
        #[cfg(feature = "seeded-defects")]
        let recorded = if mfdefect::active("vm-branch-count-polarity") {
            Some(!is_taken)
        } else if mfdefect::active("vm-profile-drop-increment") && !is_taken {
            None
        } else {
            Some(is_taken)
        };
        #[cfg(not(feature = "seeded-defects"))]
        let recorded = Some(is_taken);
        if let Some(direction) = recorded {
            let hit = &mut self.branch_hits[slot as usize];
            hit.0 += 1;
            if direction {
                hit.1 += 1;
            }
        }
        if self.config.record_branch_trace {
            self.branch_trace.push(BranchEvent {
                id: self.fp.branch_ids[slot as usize],
                taken: is_taken,
                gap: self.fuel_used - self.last_branch_fuel,
            });
            self.last_branch_fuel = self.fuel_used;
        }
        (if is_taken { taken } else { not_taken }) as usize
    }

    fn push_call(
        &mut self,
        callee: u32,
        args: (u32, u32),
        ret_dst: u32,
        indirect: bool,
        ret_pc: usize,
        base: usize,
    ) -> Result<(usize, usize), RuntimeError> {
        if self.frames.len() >= self.config.max_stack {
            return Err(RuntimeError::StackOverflow {
                limit: self.config.max_stack,
            });
        }
        let (args_at, nargs) = args;
        let f = &self.fp.funcs[callee as usize];
        let new_base = self.regs.len();
        self.regs
            .resize(new_base + f.num_regs as usize, GuestValue::Zero);
        for k in 0..nargs as usize {
            let src = self.fp.args[args_at as usize + k] as usize;
            self.regs[new_base + k] = self.regs[base + src];
        }
        // The callee's entry BlockHead emits the Pixie bump and the
        // ENTRY_EDGE_FROM coverage edge (cur_block starts at the sentinel),
        // exactly like the reference's push_call.
        self.frames.push(FlatFrame {
            ret_pc: ret_pc as u32,
            base: new_base as u32,
            ret_dst,
            cur_block: ENTRY_EDGE_FROM,
            indirect,
        });
        Ok((f.entry_pc as usize, new_base))
    }

    fn spend(&mut self) -> Result<(), RuntimeError> {
        self.fuel_used += 1;
        if self.fuel_used > self.config.fuel {
            Err(RuntimeError::OutOfFuel {
                limit: self.config.fuel,
            })
        } else {
            Ok(())
        }
    }

    fn alloc(&mut self, data: ArrayData) -> GuestValue {
        let idx = self.heap.len() as u32;
        self.heap.push(HeapObject {
            data,
            read_only: false,
        });
        GuestValue::Ref(idx)
    }

    fn check_alloc_len(&self, v: GuestValue) -> Result<usize, RuntimeError> {
        let n = want_int(v)?;
        if n < 0 || n > self.config.max_alloc {
            Err(RuntimeError::BadArrayLength { len: n })
        } else {
            Ok(n as usize)
        }
    }

    /// Precise replay of one fuel segment whose bulk charge overshot the
    /// limit: the charge is rolled back and the segment re-executes charging
    /// one fuel per component (fused ops decompose) with the limit checked
    /// before each, reproducing the reference backend's exact fault point
    /// and error — a `DivideByZero` or `TypeMismatch` mid-segment preempts
    /// `OutOfFuel` just as it would per-instruction.
    ///
    /// The segment entry condition (`fuel_before + cost > limit`) guarantees
    /// the charge for the segment's final component — a call or the
    /// terminator — always trips, so control never leaves the segment.
    #[cold]
    fn finish_precise(&mut self, mut pc: usize, base: usize, bulk: u32) -> RuntimeError {
        self.fuel_used -= u64::from(bulk);
        loop {
            let op = generalize(self.fp.code[pc]);
            pc += 1;
            match op {
                FlatOp::ConstBinop {
                    op,
                    dst,
                    lhs,
                    cdst,
                    cidx,
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    self.regs[base + cdst as usize] = self.fp.consts[cidx as usize];
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    match eval_binop(
                        op,
                        self.regs[base + lhs as usize],
                        self.regs[base + cdst as usize],
                    ) {
                        Ok(v) => self.regs[base + dst as usize] = v,
                        Err(e) => return e,
                    }
                }
                FlatOp::CmpBranch {
                    op, dst, lhs, rhs, ..
                } => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    match eval_binop(
                        op,
                        self.regs[base + lhs as usize],
                        self.regs[base + rhs as usize],
                    ) {
                        Ok(v) => self.regs[base + dst as usize] = v,
                        Err(e) => return e,
                    }
                    return match self.spend() {
                        Err(e) => e,
                        Ok(()) => unreachable!("fuel replay must trip at the final component"),
                    };
                }
                FlatOp::Call { .. }
                | FlatOp::CallIndirect { .. }
                | FlatOp::Jump { .. }
                | FlatOp::Branch { .. }
                | FlatOp::JumpTable { .. }
                | FlatOp::Return { .. } => {
                    return match self.spend() {
                        Err(e) => e,
                        Ok(()) => unreachable!("fuel replay must trip at the final component"),
                    };
                }
                FlatOp::BlockHead { .. } | FlatOp::Resume { .. } => {
                    unreachable!("block heads never appear inside a fuel segment")
                }
                leaf => {
                    if let Err(e) = self.spend() {
                        return e;
                    }
                    if let Err(e) = self.exec_leaf(leaf, base) {
                        return e;
                    }
                }
            }
        }
    }
}
