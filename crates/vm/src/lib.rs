#![warn(missing_docs)]

//! # trace-vm
//!
//! A deterministic interpreter for [`trace_ir`] programs that plays the role
//! of the Multiflow Trace 14/300 in the Fisher & Freudenberger experiments —
//! plus both of the paper's measurement tools at once:
//!
//! * **MFPixie**: the VM counts how many times every basic block executes
//!   ([`PixieCounts`]), giving exact dynamic RISC-level instruction
//!   frequencies.
//! * **IFPROBBER**: the VM counts, for every conditional branch (keyed by its
//!   stable source-level [`trace_ir::BranchId`]), how many times it executed
//!   and how many times it was taken ([`BranchCounts`]).
//! * **Breaks in control**: every control-transfer event is tallied by kind
//!   ([`BreakEvents`]) so the paper's instructions-per-break metrics can be
//!   computed under any accounting convention.
//!
//! Execution is fully deterministic: same program + same inputs ⇒ same
//! output, same counts, bit for bit.
//!
//! ```
//! use trace_ir::builder::{FunctionBuilder, ProgramBuilder};
//! use trace_ir::BinOp;
//! use trace_vm::{Vm, Input};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 2);
//! let sum = f.binop(BinOp::Add, f.param(0), f.param(1));
//! f.emit_value(sum);
//! f.ret(Some(sum));
//! pb.add_function(f.finish());
//! let program = pb.finish("main")?;
//!
//! let run = Vm::new(&program).run(&[Input::Int(2), Input::Int(40)])?;
//! assert_eq!(run.output_ints(), vec![42]);
//! assert!(run.stats.total_instrs > 0);
//! # Ok(())
//! # }
//! ```

mod counters;
mod error;
mod flat;
mod machine;
mod value;

pub use counters::{BranchCounts, BreakEvents, PixieCounts, RunStats};
pub use error::RuntimeError;
pub use flat::{confidence_digest, FlatProgram, TraceConfig};
pub use machine::{
    run_program, Backend, BranchEvent, BranchSink, CoverageSink, Run, Vm, VmConfig, ENTRY_EDGE_FROM,
};
pub use value::{GuestValue, Input};
