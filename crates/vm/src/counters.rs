//! The measurement side of the VM: IFPROBBER branch counters, MFPixie
//! instruction counters, and break-in-control event tallies.

use std::collections::BTreeMap;

use trace_ir::{BranchId, FuncId, Program};

/// Per-branch `(executed, taken)` counters — the IFPROBBER record.
///
/// Keyed by the stable source-level [`BranchId`], so counts collected on one
/// compilation of a program apply to any other compilation of the same
/// source.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchCounts {
    counts: BTreeMap<BranchId, (u64, u64)>,
}

impl BranchCounts {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        BranchCounts::default()
    }

    /// Records one execution of `id`, taken or not.
    pub fn record(&mut self, id: BranchId, taken: bool) {
        let e = self.counts.entry(id).or_insert((0, 0));
        e.0 += 1;
        if taken {
            e.1 += 1;
        }
    }

    /// Adds `executed`/`taken` in bulk (used when merging databases).
    pub fn add(&mut self, id: BranchId, executed: u64, taken: u64) {
        debug_assert!(taken <= executed, "taken count exceeds executed count");
        let e = self.counts.entry(id).or_insert((0, 0));
        e.0 += executed;
        e.1 += taken;
    }

    /// `(executed, taken)` for a branch; `(0, 0)` if never seen.
    pub fn get(&self, id: BranchId) -> (u64, u64) {
        self.counts.get(&id).copied().unwrap_or((0, 0))
    }

    /// Iterates `(BranchId, executed, taken)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, u64, u64)> + '_ {
        self.counts.iter().map(|(&id, &(e, t))| (id, e, t))
    }

    /// Number of distinct branches that executed at least once.
    pub fn branches_seen(&self) -> usize {
        self.counts.values().filter(|(e, _)| *e > 0).count()
    }

    /// Total dynamic conditional-branch executions.
    pub fn total_executed(&self) -> u64 {
        self.counts.values().map(|(e, _)| e).sum()
    }

    /// Total taken executions.
    pub fn total_taken(&self) -> u64 {
        self.counts.values().map(|(_, t)| t).sum()
    }

    /// Dynamic fraction of branches that were taken, in 0..=1.
    /// Returns `None` when no branch executed.
    ///
    /// The paper reports this "percent taken" is remarkably constant across
    /// datasets of one program (within 9%) — except for spice2g6.
    pub fn percent_taken(&self) -> Option<f64> {
        let e = self.total_executed();
        (e > 0).then(|| self.total_taken() as f64 / e as f64)
    }

    /// True if no branch executed.
    pub fn is_empty(&self) -> bool {
        self.total_executed() == 0
    }
}

impl FromIterator<(BranchId, u64, u64)> for BranchCounts {
    fn from_iter<I: IntoIterator<Item = (BranchId, u64, u64)>>(iter: I) -> Self {
        let mut c = BranchCounts::new();
        for (id, e, t) in iter {
            c.add(id, e, t);
        }
        c
    }
}

impl Extend<(BranchId, u64, u64)> for BranchCounts {
    fn extend<I: IntoIterator<Item = (BranchId, u64, u64)>>(&mut self, iter: I) {
        for (id, e, t) in iter {
            self.add(id, e, t);
        }
    }
}

/// Dynamic tallies of every control-transfer event, by the paper's taxonomy.
///
/// Conditional-branch executions live in [`BranchCounts`]; everything else is
/// here. "Indirect returns" are returns from functions that were entered via
/// an indirect call — together with indirect calls and indirect jumps these
/// are the paper's *unavoidable* breaks in control.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakEvents {
    /// Unconditional jumps executed (avoidable: assumed removed by layout).
    pub jumps: u64,
    /// Jump-table (indirect multi-way) transfers executed — unavoidable.
    pub indirect_jumps: u64,
    /// Direct calls executed (avoidable via inlining).
    pub direct_calls: u64,
    /// Returns from directly-called functions (avoidable via inlining).
    pub direct_returns: u64,
    /// Indirect calls executed — unavoidable.
    pub indirect_calls: u64,
    /// Returns from indirectly-called functions — unavoidable.
    pub indirect_returns: u64,
    /// `select` instructions executed (reported as a sanity ratio; the paper
    /// saw 0.2–0.7% of all instructions).
    pub selects: u64,
}

impl BreakEvents {
    /// The paper's *unavoidable* breaks: indirect jumps, indirect calls, and
    /// their returns.
    pub fn unavoidable(&self) -> u64 {
        self.indirect_jumps + self.indirect_calls + self.indirect_returns
    }

    /// Direct call/return traffic (Figure 1's white-bar addition).
    pub fn call_return_traffic(&self) -> u64 {
        self.direct_calls + self.direct_returns
    }
}

/// MFPixie equivalent: per-basic-block execution counts.
///
/// Block counts are exact dynamic instruction frequencies: every instruction
/// in a block executes exactly as many times as the block does.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PixieCounts {
    /// `blocks[f][b]` = executions of block `b` of function `f`.
    pub blocks: Vec<Vec<u64>>,
}

impl PixieCounts {
    /// Creates counters shaped for `program`.
    pub fn for_program(program: &Program) -> Self {
        PixieCounts {
            blocks: program
                .functions
                .iter()
                .map(|f| vec![0; f.blocks.len()])
                .collect(),
        }
    }

    /// Executions of one block.
    pub fn block_count(&self, func: FuncId, block: usize) -> u64 {
        self.blocks[func.index()][block]
    }

    /// Recomputes the total dynamic instruction count from block counts —
    /// must equal the VM's running total (checked in tests).
    pub fn total_instrs(&self, program: &Program) -> u64 {
        let mut total = 0;
        for (f, func) in program.functions.iter().enumerate() {
            for (b, block) in func.blocks.iter().enumerate() {
                total += self.blocks[f][b] * block.instr_cost();
            }
        }
        total
    }

    /// Per-function dynamic instruction counts, in function order.
    pub fn per_function_instrs(&self, program: &Program) -> Vec<(String, u64)> {
        program
            .functions
            .iter()
            .enumerate()
            .map(|(f, func)| {
                let total = func
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(b, block)| self.blocks[f][b] * block.instr_cost())
                    .sum();
                (func.name.clone(), total)
            })
            .collect()
    }
}

/// Everything measured during one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Total RISC-level instructions executed (each `Instr` and each
    /// terminator counts 1).
    pub total_instrs: u64,
    /// IFPROBBER branch counters.
    pub branches: BranchCounts,
    /// Break-in-control event tallies.
    pub events: BreakEvents,
    /// MFPixie block counters.
    pub pixie: PixieCounts,
}

impl RunStats {
    /// Fraction of executed instructions that were `select`s.
    pub fn select_ratio(&self) -> f64 {
        if self.total_instrs == 0 {
            0.0
        } else {
            self.events.selects as f64 / self.total_instrs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let mut c = BranchCounts::new();
        c.record(BranchId(3), true);
        c.record(BranchId(3), false);
        c.record(BranchId(3), true);
        assert_eq!(c.get(BranchId(3)), (3, 2));
        assert_eq!(c.get(BranchId(0)), (0, 0));
        assert_eq!(c.branches_seen(), 1);
        assert_eq!(c.total_executed(), 3);
        assert_eq!(c.total_taken(), 2);
    }

    #[test]
    fn percent_taken() {
        let mut c = BranchCounts::new();
        assert_eq!(c.percent_taken(), None);
        c.add(BranchId(0), 4, 1);
        assert_eq!(c.percent_taken(), Some(0.25));
    }

    #[test]
    fn from_and_extend() {
        let c: BranchCounts = vec![(BranchId(0), 2, 1), (BranchId(1), 5, 5)]
            .into_iter()
            .collect();
        assert_eq!(c.get(BranchId(1)), (5, 5));
        let mut c2 = c.clone();
        c2.extend(vec![(BranchId(0), 1, 0)]);
        assert_eq!(c2.get(BranchId(0)), (3, 1));
    }

    #[test]
    fn iter_is_ordered() {
        let mut c = BranchCounts::new();
        c.add(BranchId(5), 1, 0);
        c.add(BranchId(1), 1, 1);
        let ids: Vec<_> = c.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids, vec![BranchId(1), BranchId(5)]);
    }

    #[test]
    fn break_event_sums() {
        let e = BreakEvents {
            jumps: 10,
            indirect_jumps: 1,
            direct_calls: 5,
            direct_returns: 5,
            indirect_calls: 2,
            indirect_returns: 2,
            selects: 3,
        };
        assert_eq!(e.unavoidable(), 5);
        assert_eq!(e.call_return_traffic(), 10);
    }

    #[test]
    fn select_ratio_handles_zero() {
        let s = RunStats::default();
        assert_eq!(s.select_ratio(), 0.0);
    }
}
