//! Run-time values, inputs and the heap.

use std::fmt;

use trace_ir::FuncId;

/// A value held in a register, global slot, or array element.
///
/// Registers are untyped at the IR level; the `mflang` type checker
/// guarantees well-typed programs, and the VM re-checks dynamically so that
/// hand-built IR fails cleanly instead of corrupting a run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum GuestValue {
    /// A 64-bit signed integer (also booleans: 0 = false).
    #[default]
    Zero,
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
    /// A reference to a heap array.
    Ref(u32),
    /// A function value (indirect-call target).
    Func(FuncId),
}

impl GuestValue {
    /// Integer view; `Zero` reads as 0.
    pub fn as_int(self) -> Option<i64> {
        match self {
            GuestValue::Zero => Some(0),
            GuestValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Float view; `Zero` reads as 0.0 so zero-initialized registers work for
    /// both types.
    pub fn as_float(self) -> Option<f64> {
        match self {
            GuestValue::Zero => Some(0.0),
            GuestValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Short type tag used in error messages.
    pub fn type_name(self) -> &'static str {
        match self {
            GuestValue::Zero => "zero",
            GuestValue::Int(_) => "int",
            GuestValue::Float(_) => "float",
            GuestValue::Ref(_) => "array",
            GuestValue::Func(_) => "function",
        }
    }
}

impl fmt::Display for GuestValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestValue::Zero => write!(f, "0"),
            GuestValue::Int(i) => write!(f, "{i}"),
            GuestValue::Float(x) => write!(f, "{x}"),
            GuestValue::Ref(r) => write!(f, "arr@{r}"),
            GuestValue::Func(id) => write!(f, "&{id}"),
        }
    }
}

/// One entry-point argument: a dataset element handed to the guest program.
///
/// Array inputs are materialized on the heap before the run starts and passed
/// by reference; the allocation is not charged to the guest's instruction
/// count (it models the dataset file already sitting in memory).
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// A scalar integer.
    Int(i64),
    /// A scalar float.
    Float(f64),
    /// An integer array (e.g. the bytes of an input file).
    Ints(Vec<i64>),
    /// A float array.
    Floats(Vec<f64>),
}

impl Input {
    /// Builds an integer-array input from a text file's bytes.
    pub fn from_text(text: &str) -> Self {
        Input::Ints(text.bytes().map(i64::from).collect())
    }

    /// The number of scalar elements in this input (1 for scalars).
    pub fn len(&self) -> usize {
        match self {
            Input::Int(_) | Input::Float(_) => 1,
            Input::Ints(v) => v.len(),
            Input::Floats(v) => v.len(),
        }
    }

    /// True when an array input is empty. Scalars are never empty.
    pub fn is_empty(&self) -> bool {
        match self {
            Input::Int(_) | Input::Float(_) => false,
            Input::Ints(v) => v.is_empty(),
            Input::Floats(v) => v.is_empty(),
        }
    }
}

/// Array storage: homogeneous int or float payload.
///
/// Payloads sit behind `Arc` so interned constant arrays can be mapped
/// into a run's heap by reference instead of cloned per run; mutable
/// arrays are uniquely owned, so the copy-on-write in `Store` never
/// actually copies (read-only arrays reject stores before reaching it).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum ArrayData {
    Ints(std::sync::Arc<Vec<i64>>),
    Floats(std::sync::Arc<Vec<f64>>),
}

impl ArrayData {
    pub(crate) fn ints(v: Vec<i64>) -> Self {
        ArrayData::Ints(std::sync::Arc::new(v))
    }

    pub(crate) fn floats(v: Vec<f64>) -> Self {
        ArrayData::Floats(std::sync::Arc::new(v))
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            ArrayData::Ints(v) => v.len(),
            ArrayData::Floats(v) => v.len(),
        }
    }
}

/// A heap object: an array plus a read-only flag (interned literals).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct HeapObject {
    pub data: ArrayData,
    pub read_only: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_reads_as_both_types() {
        assert_eq!(GuestValue::Zero.as_int(), Some(0));
        assert_eq!(GuestValue::Zero.as_float(), Some(0.0));
        assert_eq!(GuestValue::Int(5).as_int(), Some(5));
        assert_eq!(GuestValue::Int(5).as_float(), None);
        assert_eq!(GuestValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(GuestValue::Ref(0).as_int(), None);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(GuestValue::default(), GuestValue::Zero);
    }

    #[test]
    fn input_from_text() {
        let i = Input::from_text("AB");
        assert_eq!(i, Input::Ints(vec![65, 66]));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        assert!(Input::Ints(Vec::new()).is_empty());
        assert!(!Input::Int(0).is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(GuestValue::Int(3).to_string(), "3");
        assert_eq!(GuestValue::Ref(2).to_string(), "arr@2");
        assert_eq!(GuestValue::Func(FuncId(1)).to_string(), "&fn1");
        assert_eq!(GuestValue::Zero.to_string(), "0");
    }
}
