//! Superblock trace planning and the trace-scoped fact engine.
//!
//! Planning decides, per function, the order in which block *copies* are
//! emitted and which copies are tail duplicates; it never touches the op
//! stream itself. The [`Facts`] engine tracks what a trace's single-entry
//! prefix proves about register values so the flattener can replace
//! branches whose outcome is implied with side-exit-free fallthroughs.

use std::collections::{BTreeSet, HashMap};

use mfcheck::{Cfg, DomTree, LoopForest};
use trace_ir::{BinOp, BranchId, Function, Instr, Terminator};

use crate::counters::BranchCounts;

/// Trace-formation configuration, keyed into
/// [`crate::VmConfig`]/`RunKey`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceConfig {
    /// Enables superblock formation: loop-header trace seeding, budgeted
    /// tail duplication of side-entrance blocks, and implied-branch
    /// elimination. When off, the flattener still emits profile-guided (or
    /// BTFN) fall-through chains of whole blocks, as the layout-only
    /// backend did.
    pub enabled: bool,
    /// Per-function tail-duplication budget, in fuel components (one
    /// component per duplicated instruction or terminator).
    pub tail_dup_budget: u32,
    /// Digest of the low-confidence branch set handed to
    /// [`crate::FlatProgram::compile_with_confidence`] (see
    /// [`confidence_digest`]); `0` when every profiled site is trusted.
    /// Carried here so run keys distinguish otherwise-identical
    /// compilations whose degraded-site sets differ.
    pub confidence_digest: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            tail_dup_budget: 192,
            confidence_digest: 0,
        }
    }
}

/// FNV-1a digest of a low-confidence branch set, for
/// [`TraceConfig::confidence_digest`]. Order-insensitive (ids are folded
/// sorted and deduplicated); the empty set digests to `0` so "no degraded
/// sites" and "confidence unused" key identically — they compile
/// identically too.
pub fn confidence_digest(low_confidence: &[BranchId]) -> u64 {
    let sorted: BTreeSet<BranchId> = low_confidence.iter().copied().collect();
    if sorted.is_empty() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in sorted {
        for b in u64::from(id.0).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Hard cap on copies per trace (defends against degenerate growth).
const MAX_TRACE_LEN: usize = 64;

/// How a planned copy transfers control to the *next* copy of its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Link {
    /// Unconditional jump.
    Jump,
    /// Conditional branch; payload is the predicted direction (`true` =
    /// taken arm chains to the next copy).
    Branch(bool),
    /// Jump table, chaining through the default arm.
    Table,
}

/// One emitted copy of a source block.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PlannedCopy {
    /// Source block index within the function.
    pub block: usize,
    /// True if this is a tail duplicate (the block's canonical copy lives
    /// elsewhere); a duplicate is reachable only through the preceding
    /// copy's link arm.
    pub dup: bool,
    /// Control link to the next copy of the trace (`None` for the last).
    pub link: Option<Link>,
}

/// An ordered list of copies emitted contiguously.
#[derive(Clone, Debug)]
pub(crate) struct PlannedTrace {
    pub copies: Vec<PlannedCopy>,
}

/// Plans the traces of one function.
///
/// With `cfg.enabled`: seeds at the function entry, then loop headers
/// (innermost first — their bodies are the hottest), then any remaining
/// blocks; grows each trace along the predicted edge (profile `2·taken >
/// executed`, falling back to backward-taken/forward-not-taken); tail-
/// duplicates already-placed successors while `tail_dup_budget` lasts.
///
/// With `cfg.enabled` off this degenerates to the legacy layout: greedy
/// fall-through chains seeded in block order, no duplication.
///
/// Every block receives exactly one canonical (non-dup) copy, so every
/// jump-table target and side-exit arm has a landing site.
pub(crate) fn plan_traces(
    func: &Function,
    profile: Option<&BranchCounts>,
    tcfg: TraceConfig,
    low_confidence: &BTreeSet<BranchId>,
) -> Vec<PlannedTrace> {
    let nblocks = func.blocks.len();
    let mut placed = vec![false; nblocks];
    let mut traces = Vec::new();

    // Trace mode: one CFG/dominator/loop-forest pass drives both the BTFN
    // backward-edge test and the loop-header seed schedule.
    type BackwardEdgeTest = Option<Box<dyn Fn(usize, usize) -> bool>>;
    let (rpo_backward, seeds): (BackwardEdgeTest, Vec<usize>) = if tcfg.enabled {
        let cfg = Cfg::new(func);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let mut headers: Vec<(u32, usize)> = forest
            .loops
            .iter()
            .map(|l| (l.depth, l.header.index()))
            .collect();
        // Innermost loops first: their bodies execute the most.
        headers.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut seeds = vec![0usize];
        seeds.extend(headers.into_iter().map(|(_, h)| h));
        seeds.extend(0..nblocks);
        let pos: Vec<Option<usize>> = (0..nblocks)
            .map(|b| cfg.rpo_pos(trace_ir::BlockId(b as u32)))
            .collect();
        // Prefer the taken arm when it jumps backward in reverse
        // post-order, i.e. closes a loop.
        let back = move |from: usize, to: usize| match (pos[to], pos[from]) {
            (Some(t), Some(f)) => t <= f,
            _ => false,
        };
        (
            Some(Box::new(back) as Box<dyn Fn(usize, usize) -> bool>),
            seeds,
        )
    } else {
        (None, (0..nblocks).collect())
    };

    let mut budget = tcfg.tail_dup_budget;
    for seed in seeds {
        if placed[seed] {
            continue;
        }
        let mut copies = Vec::new();
        let mut cur = seed;
        placed[cur] = true;
        loop {
            let link = predicted_link(func, cur, profile, low_confidence, rpo_backward.as_deref());
            let Some((link, next)) = link else {
                copies.push(PlannedCopy {
                    block: cur,
                    dup: false,
                    link: None,
                });
                break;
            };
            let in_this_trace =
                next == seed || copies.iter().any(|c: &PlannedCopy| c.block == next);
            if copies.len() + 1 >= MAX_TRACE_LEN {
                copies.push(PlannedCopy {
                    block: cur,
                    dup: false,
                    link: None,
                });
                break;
            }
            if !placed[next] {
                copies.push(PlannedCopy {
                    block: cur,
                    dup: false,
                    link: Some(link),
                });
                placed[next] = true;
                cur = next;
                continue;
            }
            // Successor already placed. Tail-duplicate it if trace formation
            // is on, it is not a loop closure back into this very trace, and
            // the budget allows — otherwise end the trace here.
            let cost = (func.blocks[next].instrs.len() + 1) as u32;
            if tcfg.enabled && !in_this_trace && budget >= cost {
                budget -= cost;
                copies.push(PlannedCopy {
                    block: cur,
                    dup: false,
                    link: Some(link),
                });
                // The duplicate continues the trace: grow through it too.
                cur = usize::MAX; // marker replaced below
                let mut dup_cur = next;
                loop {
                    let dlink = predicted_link(
                        func,
                        dup_cur,
                        profile,
                        low_confidence,
                        rpo_backward.as_deref(),
                    );
                    let stop_link = match dlink {
                        Some((l, dnext)) if copies.len() + 1 < MAX_TRACE_LEN && !placed[dnext] => {
                            // Duplicate chains into an unplaced block: place
                            // it canonically and continue the outer loop.
                            copies.push(PlannedCopy {
                                block: dup_cur,
                                dup: true,
                                link: Some(l),
                            });
                            placed[dnext] = true;
                            cur = dnext;
                            break;
                        }
                        Some((l, dnext))
                            if copies.len() + 1 < MAX_TRACE_LEN
                                && budget >= (func.blocks[dnext].instrs.len() + 1) as u32
                                && dnext != seed
                                && !copies.iter().any(|c| c.block == dnext && !c.dup) =>
                        {
                            // Chain of duplicates.
                            budget -= (func.blocks[dnext].instrs.len() + 1) as u32;
                            copies.push(PlannedCopy {
                                block: dup_cur,
                                dup: true,
                                link: Some(l),
                            });
                            dup_cur = dnext;
                            continue;
                        }
                        _ => None::<Link>,
                    };
                    copies.push(PlannedCopy {
                        block: dup_cur,
                        dup: true,
                        link: stop_link,
                    });
                    break;
                }
                if cur == usize::MAX {
                    break; // duplicate chain ended the trace
                }
                continue;
            }
            copies.push(PlannedCopy {
                block: cur,
                dup: false,
                link: None,
            });
            break;
        }
        traces.push(PlannedTrace { copies });
    }
    traces
}

/// The predicted outgoing edge of `block`: the link kind and successor the
/// trace grows along. `None` for returns.
fn predicted_link(
    func: &Function,
    block: usize,
    profile: Option<&BranchCounts>,
    low_confidence: &BTreeSet<BranchId>,
    rpo_backward: Option<&dyn Fn(usize, usize) -> bool>,
) -> Option<(Link, usize)> {
    match &func.blocks[block].term {
        Terminator::Jump(t) => Some((Link::Jump, t.index())),
        Terminator::Branch {
            id,
            taken,
            not_taken,
            ..
        } => {
            // A degraded (low-confidence) site's recorded counts are not
            // trusted: it predicts exactly as if unprofiled.
            let trusted = profile.filter(|_| !low_confidence.contains(id));
            let prefer_taken = match trusted {
                Some(p) => {
                    let (executed, taken_n) = p.get(*id);
                    executed > 0 && 2 * taken_n > executed
                }
                // BTFN in trace mode; plain fall-through otherwise.
                None => rpo_backward.is_some_and(|back| back(block, taken.index())),
            };
            if prefer_taken {
                Some((Link::Branch(true), taken.index()))
            } else {
                Some((Link::Branch(false), not_taken.index()))
            }
        }
        Terminator::JumpTable { default, .. } => Some((Link::Table, default.index())),
        Terminator::Return { .. } => None,
    }
}

/// Three-bit order mask over an ordered integer register pair: any subset
/// of {LT, EQ, GT} still possible.
const LT: u8 = 1;
const EQ: u8 = 2;
const GT: u8 = 4;
const ANY: u8 = LT | EQ | GT;

/// The {LT,EQ,GT} outcomes for which an integer comparison yields true.
fn true_mask(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => EQ,
        BinOp::Ne => LT | GT,
        BinOp::Lt => LT,
        BinOp::Le => LT | EQ,
        BinOp::Gt => GT,
        BinOp::Ge => GT | EQ,
        _ => unreachable!("not an integer comparison"),
    }
}

fn is_int_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn is_float_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::FEq | BinOp::FNe | BinOp::FLt | BinOp::FLe | BinOp::FGt | BinOp::FGe
    )
}

/// Mirror of a float comparison: `a op b` ≡ `b mirror(op) a` (exact under
/// IEEE semantics, NaN included).
fn float_mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::FEq => BinOp::FEq,
        BinOp::FNe => BinOp::FNe,
        BinOp::FLt => BinOp::FGt,
        BinOp::FLe => BinOp::FGe,
        BinOp::FGt => BinOp::FLt,
        BinOp::FGe => BinOp::FLe,
        _ => unreachable!("not a float comparison"),
    }
}

/// What one copy's terminator contributes as an edge constraint once a
/// direction is fixed.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EdgeCond {
    /// Fused comparison `dst = lhs op rhs` branching on `dst`.
    Cmp {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Plain branch on `cond`'s truthiness.
    Truthy { cond: u32 },
}

/// Facts proven on the single-entry path into the current trace position.
///
/// * `int_rel` — for a normalized register pair `(a, b)` with `a < b`, the
///   set of still-possible signed orders of `(value(a), value(b))`. Sound
///   for implication only because observing an executed integer comparison
///   also proves both operands were integers.
/// * `float_cmp` — exact observed float comparison outcomes, keyed by
///   `(operator, lhs, rhs)`. Stored with the mirrored operand order too;
///   complements are deliberately *not* derived (NaN makes `!(a < b)`
///   weaker than `a >= b`).
/// * `truthy` — registers known to hold integer zero (`false`) / a
///   non-zero integer (`true`).
#[derive(Clone, Debug, Default)]
pub(crate) struct Facts {
    int_rel: HashMap<(u32, u32), u8>,
    float_cmp: HashMap<(u32, u32, u32), bool>,
    truthy: HashMap<u32, bool>,
}

impl Facts {
    pub fn new() -> Self {
        Facts::default()
    }

    /// Forgets everything involving `reg`.
    pub fn kill(&mut self, reg: u32) {
        self.int_rel.retain(|&(a, b), _| a != reg && b != reg);
        self.float_cmp.retain(|&(_, l, r), _| l != reg && r != reg);
        self.truthy.remove(&reg);
    }

    fn normalized(l: u32, r: u32) -> ((u32, u32), bool) {
        if l <= r {
            ((l, r), false)
        } else {
            ((r, l), true)
        }
    }

    /// Swaps the operand order of an integer order mask.
    fn flip(mask: u8) -> u8 {
        (mask & EQ) | (if mask & LT != 0 { GT } else { 0 }) | (if mask & GT != 0 { LT } else { 0 })
    }

    /// Is the outcome of `lhs op rhs` implied? (`op` must be a comparison.)
    pub fn query_cmp(&self, op: BinOp, lhs: u32, rhs: u32) -> Option<bool> {
        if lhs == rhs {
            // Could be float registers (where Eq would trap on type grounds
            // in this IR? No — same-register compares are simply not worth
            // special-casing without type knowledge).
            return None;
        }
        if is_int_cmp(op) {
            let (key, swapped) = Self::normalized(lhs, rhs);
            let mut mask = *self.int_rel.get(&key)?;
            if swapped {
                mask = Self::flip(mask);
            }
            let t = true_mask(op);
            if mask & !t == 0 {
                Some(true)
            } else if mask & t == 0 {
                Some(false)
            } else {
                None
            }
        } else if is_float_cmp(op) {
            self.float_cmp.get(&(op as u32, lhs, rhs)).copied()
        } else {
            None
        }
    }

    /// Is `reg`'s truthiness known?
    pub fn query_truthy(&self, reg: u32) -> Option<bool> {
        self.truthy.get(&reg).copied()
    }

    /// Records that `lhs op rhs` evaluated to `outcome` (both operand
    /// registers still hold the compared values).
    fn gain_cmp(&mut self, op: BinOp, lhs: u32, rhs: u32, outcome: bool) {
        if lhs == rhs {
            return;
        }
        if is_int_cmp(op) {
            let (key, swapped) = Self::normalized(lhs, rhs);
            let mut constraint = if outcome {
                true_mask(op)
            } else {
                ANY & !true_mask(op)
            };
            if swapped {
                constraint = Self::flip(constraint);
            }
            let entry = self.int_rel.entry(key).or_insert(ANY);
            *entry &= constraint;
        } else if is_float_cmp(op) {
            self.float_cmp.insert((op as u32, lhs, rhs), outcome);
            self.float_cmp
                .insert((float_mirror(op) as u32, rhs, lhs), outcome);
        }
    }

    /// Applies the knowledge-transfer of one straight-line instruction:
    /// kill the written register, then record what the write proves. A
    /// comparison whose outcome is already implied seeds the destination's
    /// truthiness (re-compare elimination across blocks).
    pub fn step(&mut self, instr: &Instr) {
        match instr {
            Instr::Const { dst, value } => {
                let d = dst.0;
                self.kill(d);
                if let trace_ir::Value::Int(i) = value {
                    self.truthy.insert(d, *i != 0);
                }
            }
            Instr::Binop { dst, op, lhs, rhs } if op.is_comparison() => {
                let known = self.query_cmp(*op, lhs.0, rhs.0);
                self.kill(dst.0);
                if let Some(v) = known {
                    self.truthy.insert(dst.0, v);
                }
            }
            other => {
                if let Some(dst) = other.dst() {
                    self.kill(dst.0);
                }
            }
        }
    }

    /// Applies the constraint of taking direction `dir` through a
    /// conditional branch guarded by `cond`.
    pub fn apply_edge(&mut self, cond: EdgeCond, dir: bool) {
        match cond {
            EdgeCond::Cmp { op, dst, lhs, rhs } => {
                // The comparison wrote `dst`: any older fact mentioning it is
                // stale. If it overwrote one of its own operands the relation
                // no longer holds between live registers either.
                self.kill(dst);
                if dst != lhs && dst != rhs {
                    self.gain_cmp(op, lhs, rhs, dir);
                }
                self.truthy.insert(dst, dir);
            }
            EdgeCond::Truthy { cond } => {
                self.truthy.insert(cond, dir);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_masks_compose_and_imply() {
        let mut f = Facts::new();
        // r1 <= r2 and r1 >= r2  ⇒  r1 == r2.
        f.gain_cmp(BinOp::Le, 1, 2, true);
        f.gain_cmp(BinOp::Ge, 1, 2, true);
        assert_eq!(f.query_cmp(BinOp::Eq, 1, 2), Some(true));
        assert_eq!(f.query_cmp(BinOp::Ne, 2, 1), Some(false));
        assert_eq!(f.query_cmp(BinOp::Lt, 1, 2), Some(false));
    }

    #[test]
    fn int_complement_is_exact() {
        let mut f = Facts::new();
        // !(a < b) ⇒ a >= b for integers.
        f.gain_cmp(BinOp::Lt, 3, 4, false);
        assert_eq!(f.query_cmp(BinOp::Ge, 3, 4,), Some(true));
        assert_eq!(f.query_cmp(BinOp::Le, 4, 3), Some(true));
        assert_eq!(f.query_cmp(BinOp::Eq, 3, 4), None);
    }

    #[test]
    fn float_facts_mirror_but_never_complement() {
        let mut f = Facts::new();
        f.gain_cmp(BinOp::FLt, 1, 2, true);
        assert_eq!(f.query_cmp(BinOp::FLt, 1, 2), Some(true));
        assert_eq!(f.query_cmp(BinOp::FGt, 2, 1), Some(true));
        // NaN: FLt(a,b) = false would NOT imply FGe(a,b); and a true FLt
        // does not let us answer a different operator.
        assert_eq!(f.query_cmp(BinOp::FGe, 1, 2), None);
        let mut g = Facts::new();
        g.gain_cmp(BinOp::FLt, 1, 2, false);
        assert_eq!(g.query_cmp(BinOp::FGe, 1, 2), None);
        assert_eq!(g.query_cmp(BinOp::FLt, 1, 2), Some(false));
    }

    #[test]
    fn writes_kill_facts() {
        let mut f = Facts::new();
        f.gain_cmp(BinOp::Lt, 1, 2, true);
        f.step(&Instr::Const {
            dst: trace_ir::Reg(2),
            value: trace_ir::Value::Int(7),
        });
        assert_eq!(f.query_cmp(BinOp::Lt, 1, 2), None);
        assert_eq!(f.query_truthy(2), Some(true));
    }

    #[test]
    fn implied_recompare_seeds_truthiness() {
        let mut f = Facts::new();
        f.apply_edge(
            EdgeCond::Cmp {
                op: BinOp::Lt,
                dst: 5,
                lhs: 1,
                rhs: 2,
            },
            true,
        );
        assert_eq!(f.query_truthy(5), Some(true));
        // A later re-compare of the same pair is implied...
        f.step(&Instr::Binop {
            dst: trace_ir::Reg(6),
            op: BinOp::Le,
            lhs: trace_ir::Reg(1),
            rhs: trace_ir::Reg(2),
        });
        assert_eq!(f.query_truthy(6), Some(true));
    }
}
