//! The flat op encoding: one contiguous stream of u32-operand ops, plus the
//! edge-head side table that fuses every control transfer with its target
//! block's entry bookkeeping.
//!
//! Register operands are frame-window offsets; `tk`/`nt`/`eh` operands index
//! [`EdgeHead`]s in [`super::FlatProgram`]'s `heads` table; pool references
//! index the shared constant/argument/table pools.

use trace_ir::{BinOp, UnOp};

/// Sentinel operand meaning "absent" (no return register / no return value).
pub(crate) const NONE: u32 = u32::MAX;

/// Per-copy entry bookkeeping for one emitted block copy. Every control
/// transfer (jump, branch arm, jump-table entry) names an `EdgeHead` instead
/// of a raw code offset; taking the edge bumps the target's Pixie slot,
/// reports the coverage edge, bulk-charges the first fuel segment, and lands
/// at `body` — all without dispatching a separate block-head op.
///
/// Tail-duplicated copies of a block get their own `EdgeHead` with the same
/// `slot`/`func`/`block` (observably identical) but a private `body`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeHead {
    /// Code offset of the copy's first body op.
    pub body: u32,
    /// Dense Pixie counter slot of the block.
    pub slot: u32,
    /// Owning function (coverage-edge reporting).
    pub func: u32,
    /// Source-level block id (coverage-edge reporting).
    pub block: u32,
    /// Bulk fuel cost of the copy's first segment.
    pub cost: u32,
}

/// One op of the flat code stream.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FlatOp {
    /// Function-entry bookkeeping: bumps the Pixie counter, reports the
    /// entry coverage edge, then bulk-charges the entry block's first fuel
    /// segment. Only executed through calls — in-function transfers go
    /// through [`EdgeHead`]s, which skip past this op.
    BlockHead {
        slot: u32,
        func: u32,
        block: u32,
        cost: u32,
    },
    /// Placed immediately after a call op: bulk-charges the segment that
    /// resumes when the callee returns.
    Resume {
        cost: u32,
    },
    LoadConst {
        dst: u32,
        cidx: u32,
    },
    Mov {
        dst: u32,
        src: u32,
    },
    Unop {
        op: UnOp,
        dst: u32,
        src: u32,
    },
    Binop {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Constant-op specializations of [`FlatOp::Binop`] for the dynamically
    /// hot operators. Each arm calls the exact shared helper the generic
    /// form uses, passing the operator as a literal so the compiler folds
    /// `eval_binop`'s operator dispatch away; [`generalize`] maps every
    /// specialized op back to its generic form for the cold replay paths.
    BinopAdd {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopSub {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopMul {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopDiv {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopRem {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopAnd {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopOr {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopXor {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopShl {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopShr {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFAdd {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFSub {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFMul {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    BinopFDiv {
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Fused `Const cdst, #cidx` + `Binop dst, lhs, cdst`. The constant
    /// write happens first (still architecturally visible in `cdst`),
    /// matching the unfused execution order even when `lhs == cdst`.
    ConstBinop {
        op: BinOp,
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    /// Constant-op specializations of [`FlatOp::ConstBinop`] (see
    /// [`FlatOp::BinopAdd`] for the scheme).
    ConstBinopAdd {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopSub {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopMul {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopDiv {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopRem {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopAnd {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopOr {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopXor {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopShl {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopShr {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFAdd {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFSub {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFMul {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    ConstBinopFDiv {
        dst: u32,
        lhs: u32,
        cdst: u32,
        cidx: u32,
    },
    /// Generic paired superinstruction: two adjacent one-component ops
    /// executed under a single dispatch, strictly in order (the first op
    /// completes — including any trap — before the second starts). `ops`
    /// packs both operators ([`pack2`]); the specialized `Pair*` variants
    /// below carry the measured-hot operator combinations as literals.
    PairBB {
        ops: u32,
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    /// Unary half then `Binop` (see [`FlatOp::PairBB`]). The unary half's
    /// packed code is a [`UNOPS`] index or one of the pseudo codes
    /// ([`MOV_CODE`], [`CONST_CODE`]), so moves and constant loads pair
    /// too.
    PairUB {
        ops: u32,
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    /// `Binop` then unary half (see [`FlatOp::PairUB`]).
    PairBU {
        ops: u32,
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    /// Unary half then unary half (see [`FlatOp::PairUB`]).
    PairUU {
        ops: u32,
        d1: u32,
        s1: u32,
        d2: u32,
        s2: u32,
    },
    /// `Binop` then `Load` (see [`FlatOp::PairBB`]) — the indexed
    /// address-compute + load idiom of the FP kernels.
    PairBL {
        ops: u32,
        d1: u32,
        l1: u32,
        r1: u32,
        ld: u32,
        arr: u32,
        idx: u32,
    },
    /// `Load` then `Binop` (see [`FlatOp::PairBB`]).
    PairLB {
        ops: u32,
        ld: u32,
        arr: u32,
        idx: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    /// `Load` then `Load` (see [`FlatOp::PairBB`]).
    PairLL {
        ld1: u32,
        arr1: u32,
        idx1: u32,
        ld2: u32,
        arr2: u32,
        idx2: u32,
    },
    /// Specialized literal-operator pairs for the hot float/int arithmetic
    /// combinations (multiply-add and friends); [`generalize`] maps each
    /// back to [`FlatOp::PairBB`].
    PairFAddFAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFAddFSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFAddFMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFAddFDiv {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFSubFAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFSubFSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFSubFMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFSubFDiv {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFMulFAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFMulFSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFMulFMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFMulFDiv {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFDivFAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFDivFSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFDivFMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFDivFDiv {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairAddAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairAddSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairAddMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairSubAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairSubSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairSubMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMulAdd {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMulSub {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMulMul {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    /// Specialized move-involving pairs — a register move fused before
    /// or after a hot arithmetic op (plus the move/move shuffle), operator
    /// as a literal. [`generalize`] maps each back to the generic packed
    /// form with [`MOV_CODE`] in the unary slot.
    PairMovFAdd {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMovFSub {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMovFMul {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMovFDiv {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMovAdd {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMovSub {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairMovMul {
        d1: u32,
        s1: u32,
        d2: u32,
        l2: u32,
        r2: u32,
    },
    PairFAddMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairFSubMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairFMulMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairFDivMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairAddMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairSubMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairMulMov {
        d1: u32,
        l1: u32,
        r1: u32,
        d2: u32,
        s2: u32,
    },
    PairMovMov {
        d1: u32,
        s1: u32,
        d2: u32,
        s2: u32,
    },
    Select {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
    },
    Load {
        dst: u32,
        arr: u32,
        index: u32,
    },
    Store {
        arr: u32,
        index: u32,
        src: u32,
    },
    NewIntArray {
        dst: u32,
        len: u32,
    },
    NewFloatArray {
        dst: u32,
        len: u32,
    },
    ArrayLen {
        dst: u32,
        arr: u32,
    },
    ConstArrayRef {
        dst: u32,
        index: u32,
    },
    GlobalGet {
        dst: u32,
        global: u32,
    },
    GlobalSet {
        global: u32,
        src: u32,
    },
    FuncAddr {
        dst: u32,
        func: u32,
    },
    Emit {
        src: u32,
    },
    Call {
        func: u32,
        args: u32,
        nargs: u32,
        ret: u32,
    },
    CallIndirect {
        target: u32,
        args: u32,
        nargs: u32,
        ret: u32,
    },
    /// Unconditional transfer through an [`EdgeHead`] (counts one jump
    /// event, then enters the target copy).
    JumpHead {
        eh: u32,
    },
    /// Conditional branch; `slot` indexes the dense per-run branch counters
    /// (the source-level [`trace_ir::BranchId`] is recovered through
    /// [`super::FlatProgram`]'s `branch_ids`), `tk`/`nt` are edge heads.
    Branch {
        cond: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    /// Fused comparison + conditional branch. Writes the comparison result
    /// to `dst` (visible to later blocks), then branches on it.
    CmpBranch {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    /// Constant-op specializations of [`FlatOp::CmpBranch`] for every
    /// comparison operator (see [`FlatOp::BinopAdd`] for the scheme).
    CmpBranchEq {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchNe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchLt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchLe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchGt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchGe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchFEq {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchFNe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchFLt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchFLe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchFGt {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    CmpBranchFGe {
        dst: u32,
        lhs: u32,
        rhs: u32,
        slot: u32,
        tk: u32,
        nt: u32,
    },
    /// A conditional branch whose direction the trace optimizer proved from
    /// facts established earlier on the (single-entry) trace path: records
    /// the branch exactly like [`FlatOp::Branch`] but transfers
    /// unconditionally — a side-exit-free fallthrough. One fuel component.
    ImpliedBranch {
        slot: u32,
        taken: u32,
        eh: u32,
    },
    /// An implied [`FlatOp::CmpBranch`]: the comparison's outcome (`val`,
    /// 0 or 1) is known, so `dst` is written directly and the branch
    /// transfers unconditionally. Two fuel components (compare + branch),
    /// like the fused form it replaces.
    ImpliedCmpBranch {
        dst: u32,
        val: u32,
        slot: u32,
        eh: u32,
    },
    /// `table` indexes the shared table pool; entries are edge heads.
    JumpTable {
        index: u32,
        table: u32,
    },
    Return {
        src: u32,
    },
}

/// Packs two operator codes into one `u32` operand (low byte = first op).
pub(crate) fn pack2(a: u32, b: u32) -> u32 {
    debug_assert!(a < 256 && b < 256);
    a | (b << 8)
}

/// `BinOp` variants in declaration order — decode table for packed
/// operator codes (`op as u32` is the inverse).
pub(crate) const BINOPS: [BinOp; 28] = {
    use BinOp::*;
    [
        Add, Sub, Mul, Div, Rem, FAdd, FSub, FMul, FDiv, And, Or, Xor, Shl, Shr, Eq, Ne, Lt, Le,
        Gt, Ge, FEq, FNe, FLt, FLe, FGt, FGe, FMin, FMax,
    ]
};

/// `UnOp` variants in declaration order (see [`BINOPS`]).
pub(crate) const UNOPS: [UnOp; 14] = {
    use UnOp::*;
    [
        Neg, FNeg, Not, LNot, IntToFloat, FloatToInt, Sqrt, Sin, Cos, Exp, Log, Floor, Abs, FAbs,
    ]
};

/// Pseudo operator code extending the packed unary-op byte space past the
/// real [`UNOPS`] table: a register-to-register move riding in a pair's
/// unary slot (`src` is a register; a move can never trap).
pub(crate) const MOV_CODE: u32 = UNOPS.len() as u32;

/// Pseudo operator code for a constant load riding in a pair's unary slot
/// (`src` is a constant-pool index; a constant load can never trap).
pub(crate) const CONST_CODE: u32 = UNOPS.len() as u32 + 1;

/// Views an op as a pairable unary half — `(code, dst, src)`, where `code`
/// indexes [`UNOPS`] or is one of the pseudo codes and `src` is a register
/// ([`FlatOp::Unop`]/[`FlatOp::Mov`]) or a constant-pool index
/// ([`FlatOp::LoadConst`]).
pub(crate) fn unop_half(op: &FlatOp) -> Option<(u32, u32, u32)> {
    match *op {
        FlatOp::Unop { op, dst, src } => Some((op as u32, dst, src)),
        FlatOp::Mov { dst, src } => Some((MOV_CODE, dst, src)),
        FlatOp::LoadConst { dst, cidx } => Some((CONST_CODE, dst, cidx)),
        _ => None,
    }
}

/// Emits the constant-op specialization of a `Binop` when one exists for
/// `op`, the generic form otherwise. Inverse of [`generalize`].
pub(crate) fn specialize_binop(op: BinOp, dst: u32, lhs: u32, rhs: u32) -> FlatOp {
    match op {
        BinOp::Add => FlatOp::BinopAdd { dst, lhs, rhs },
        BinOp::Sub => FlatOp::BinopSub { dst, lhs, rhs },
        BinOp::Mul => FlatOp::BinopMul { dst, lhs, rhs },
        BinOp::Div => FlatOp::BinopDiv { dst, lhs, rhs },
        BinOp::Rem => FlatOp::BinopRem { dst, lhs, rhs },
        BinOp::And => FlatOp::BinopAnd { dst, lhs, rhs },
        BinOp::Or => FlatOp::BinopOr { dst, lhs, rhs },
        BinOp::Xor => FlatOp::BinopXor { dst, lhs, rhs },
        BinOp::Shl => FlatOp::BinopShl { dst, lhs, rhs },
        BinOp::Shr => FlatOp::BinopShr { dst, lhs, rhs },
        BinOp::FAdd => FlatOp::BinopFAdd { dst, lhs, rhs },
        BinOp::FSub => FlatOp::BinopFSub { dst, lhs, rhs },
        BinOp::FMul => FlatOp::BinopFMul { dst, lhs, rhs },
        BinOp::FDiv => FlatOp::BinopFDiv { dst, lhs, rhs },
        _ => FlatOp::Binop { op, dst, lhs, rhs },
    }
}

/// Emits the constant-op specialization of a `ConstBinop` when one exists
/// for `op`, the generic form otherwise. Inverse of [`generalize`].
pub(crate) fn specialize_const_binop(
    op: BinOp,
    dst: u32,
    lhs: u32,
    cdst: u32,
    cidx: u32,
) -> FlatOp {
    macro_rules! cb {
        ($variant:ident) => {
            FlatOp::$variant {
                dst,
                lhs,
                cdst,
                cidx,
            }
        };
    }
    match op {
        BinOp::Add => cb!(ConstBinopAdd),
        BinOp::Sub => cb!(ConstBinopSub),
        BinOp::Mul => cb!(ConstBinopMul),
        BinOp::Div => cb!(ConstBinopDiv),
        BinOp::Rem => cb!(ConstBinopRem),
        BinOp::And => cb!(ConstBinopAnd),
        BinOp::Or => cb!(ConstBinopOr),
        BinOp::Xor => cb!(ConstBinopXor),
        BinOp::Shl => cb!(ConstBinopShl),
        BinOp::Shr => cb!(ConstBinopShr),
        BinOp::FAdd => cb!(ConstBinopFAdd),
        BinOp::FSub => cb!(ConstBinopFSub),
        BinOp::FMul => cb!(ConstBinopFMul),
        BinOp::FDiv => cb!(ConstBinopFDiv),
        _ => FlatOp::ConstBinop {
            op,
            dst,
            lhs,
            cdst,
            cidx,
        },
    }
}

/// Emits the constant-op specialization of a `CmpBranch`; every comparison
/// operator has one, so the generic form only carries non-comparison ops
/// (which the flattener never fuses). Inverse of [`generalize`].
pub(crate) fn specialize_cmp_branch(
    op: BinOp,
    regs: (u32, u32, u32),
    ctl: (u32, u32, u32),
) -> FlatOp {
    let (dst, lhs, rhs) = regs;
    let (slot, tk, nt) = ctl;
    macro_rules! cbr {
        ($variant:ident) => {
            FlatOp::$variant {
                dst,
                lhs,
                rhs,
                slot,
                tk,
                nt,
            }
        };
    }
    match op {
        BinOp::Eq => cbr!(CmpBranchEq),
        BinOp::Ne => cbr!(CmpBranchNe),
        BinOp::Lt => cbr!(CmpBranchLt),
        BinOp::Le => cbr!(CmpBranchLe),
        BinOp::Gt => cbr!(CmpBranchGt),
        BinOp::Ge => cbr!(CmpBranchGe),
        BinOp::FEq => cbr!(CmpBranchFEq),
        BinOp::FNe => cbr!(CmpBranchFNe),
        BinOp::FLt => cbr!(CmpBranchFLt),
        BinOp::FLe => cbr!(CmpBranchFLe),
        BinOp::FGt => cbr!(CmpBranchFGt),
        BinOp::FGe => cbr!(CmpBranchFGe),
        _ => FlatOp::CmpBranch {
            op,
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        },
    }
}

/// Emits the literal-operator specialization of a `Binop`+`Binop` pair when
/// one exists for the combination, the generic packed form otherwise.
/// Inverse of [`generalize`].
pub(crate) fn specialize_pair_bb(
    op1: BinOp,
    op2: BinOp,
    (d1, l1, r1): (u32, u32, u32),
    (d2, l2, r2): (u32, u32, u32),
) -> FlatOp {
    macro_rules! p {
        ($variant:ident) => {
            FlatOp::$variant {
                d1,
                l1,
                r1,
                d2,
                l2,
                r2,
            }
        };
    }
    use BinOp::*;
    match (op1, op2) {
        (FAdd, FAdd) => p!(PairFAddFAdd),
        (FAdd, FSub) => p!(PairFAddFSub),
        (FAdd, FMul) => p!(PairFAddFMul),
        (FAdd, FDiv) => p!(PairFAddFDiv),
        (FSub, FAdd) => p!(PairFSubFAdd),
        (FSub, FSub) => p!(PairFSubFSub),
        (FSub, FMul) => p!(PairFSubFMul),
        (FSub, FDiv) => p!(PairFSubFDiv),
        (FMul, FAdd) => p!(PairFMulFAdd),
        (FMul, FSub) => p!(PairFMulFSub),
        (FMul, FMul) => p!(PairFMulFMul),
        (FMul, FDiv) => p!(PairFMulFDiv),
        (FDiv, FAdd) => p!(PairFDivFAdd),
        (FDiv, FSub) => p!(PairFDivFSub),
        (FDiv, FMul) => p!(PairFDivFMul),
        (FDiv, FDiv) => p!(PairFDivFDiv),
        (Add, Add) => p!(PairAddAdd),
        (Add, Sub) => p!(PairAddSub),
        (Add, Mul) => p!(PairAddMul),
        (Sub, Add) => p!(PairSubAdd),
        (Sub, Sub) => p!(PairSubSub),
        (Sub, Mul) => p!(PairSubMul),
        (Mul, Add) => p!(PairMulAdd),
        (Mul, Sub) => p!(PairMulSub),
        (Mul, Mul) => p!(PairMulMul),
        _ => FlatOp::PairBB {
            ops: pack2(op1 as u32, op2 as u32),
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        },
    }
}

/// Emits the literal-operator specialization of a `Mov`+`Binop` pair when
/// one exists, the generic packed form otherwise. Inverse of
/// [`generalize`].
pub(crate) fn specialize_pair_mov_b(
    op: BinOp,
    (d1, s1): (u32, u32),
    (d2, l2, r2): (u32, u32, u32),
) -> FlatOp {
    macro_rules! p {
        ($variant:ident) => {
            FlatOp::$variant { d1, s1, d2, l2, r2 }
        };
    }
    use BinOp::*;
    match op {
        FAdd => p!(PairMovFAdd),
        FSub => p!(PairMovFSub),
        FMul => p!(PairMovFMul),
        FDiv => p!(PairMovFDiv),
        Add => p!(PairMovAdd),
        Sub => p!(PairMovSub),
        Mul => p!(PairMovMul),
        _ => FlatOp::PairUB {
            ops: pack2(MOV_CODE, op as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
    }
}

/// Emits the literal-operator specialization of a `Binop`+`Mov` pair when
/// one exists, the generic packed form otherwise. Inverse of
/// [`generalize`].
pub(crate) fn specialize_pair_b_mov(
    op: BinOp,
    (d1, l1, r1): (u32, u32, u32),
    (d2, s2): (u32, u32),
) -> FlatOp {
    macro_rules! p {
        ($variant:ident) => {
            FlatOp::$variant { d1, l1, r1, d2, s2 }
        };
    }
    use BinOp::*;
    match op {
        FAdd => p!(PairFAddMov),
        FSub => p!(PairFSubMov),
        FMul => p!(PairFMulMov),
        FDiv => p!(PairFDivMov),
        Add => p!(PairAddMov),
        Sub => p!(PairSubMov),
        Mul => p!(PairMulMov),
        _ => FlatOp::PairBU {
            ops: pack2(op as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
    }
}

/// Maps every constant-op/literal-pair specialization back to its generic
/// form (identity on everything else). The cold fuel-replay path matches on
/// generic forms only, so it cannot drift from the hot loop's specialized
/// arms, which call the same helpers.
pub(crate) fn generalize(op: FlatOp) -> FlatOp {
    use FlatOp::*;
    macro_rules! bin {
        ($op:ident, $dst:ident, $lhs:ident, $rhs:ident) => {
            Binop {
                op: BinOp::$op,
                dst: $dst,
                lhs: $lhs,
                rhs: $rhs,
            }
        };
    }
    macro_rules! cbin {
        ($op:ident, $dst:ident, $lhs:ident, $cdst:ident, $cidx:ident) => {
            ConstBinop {
                op: BinOp::$op,
                dst: $dst,
                lhs: $lhs,
                cdst: $cdst,
                cidx: $cidx,
            }
        };
    }
    macro_rules! cbr {
        ($op:ident, $dst:ident, $lhs:ident, $rhs:ident, $slot:ident, $tk:ident, $nt:ident) => {
            CmpBranch {
                op: BinOp::$op,
                dst: $dst,
                lhs: $lhs,
                rhs: $rhs,
                slot: $slot,
                tk: $tk,
                nt: $nt,
            }
        };
    }
    macro_rules! pbb {
        ($op1:ident, $op2:ident, $d1:ident, $l1:ident, $r1:ident, $d2:ident, $l2:ident, $r2:ident) => {
            PairBB {
                ops: pack2(BinOp::$op1 as u32, BinOp::$op2 as u32),
                d1: $d1,
                l1: $l1,
                r1: $r1,
                d2: $d2,
                l2: $l2,
                r2: $r2,
            }
        };
    }
    match op {
        BinopAdd { dst, lhs, rhs } => bin!(Add, dst, lhs, rhs),
        BinopSub { dst, lhs, rhs } => bin!(Sub, dst, lhs, rhs),
        BinopMul { dst, lhs, rhs } => bin!(Mul, dst, lhs, rhs),
        BinopDiv { dst, lhs, rhs } => bin!(Div, dst, lhs, rhs),
        BinopRem { dst, lhs, rhs } => bin!(Rem, dst, lhs, rhs),
        BinopAnd { dst, lhs, rhs } => bin!(And, dst, lhs, rhs),
        BinopOr { dst, lhs, rhs } => bin!(Or, dst, lhs, rhs),
        BinopXor { dst, lhs, rhs } => bin!(Xor, dst, lhs, rhs),
        BinopShl { dst, lhs, rhs } => bin!(Shl, dst, lhs, rhs),
        BinopShr { dst, lhs, rhs } => bin!(Shr, dst, lhs, rhs),
        BinopFAdd { dst, lhs, rhs } => bin!(FAdd, dst, lhs, rhs),
        BinopFSub { dst, lhs, rhs } => bin!(FSub, dst, lhs, rhs),
        BinopFMul { dst, lhs, rhs } => bin!(FMul, dst, lhs, rhs),
        BinopFDiv { dst, lhs, rhs } => bin!(FDiv, dst, lhs, rhs),
        ConstBinopAdd {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Add, dst, lhs, cdst, cidx),
        ConstBinopSub {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Sub, dst, lhs, cdst, cidx),
        ConstBinopMul {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Mul, dst, lhs, cdst, cidx),
        ConstBinopDiv {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Div, dst, lhs, cdst, cidx),
        ConstBinopRem {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Rem, dst, lhs, cdst, cidx),
        ConstBinopAnd {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(And, dst, lhs, cdst, cidx),
        ConstBinopOr {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Or, dst, lhs, cdst, cidx),
        ConstBinopXor {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Xor, dst, lhs, cdst, cidx),
        ConstBinopShl {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Shl, dst, lhs, cdst, cidx),
        ConstBinopShr {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(Shr, dst, lhs, cdst, cidx),
        ConstBinopFAdd {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(FAdd, dst, lhs, cdst, cidx),
        ConstBinopFSub {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(FSub, dst, lhs, cdst, cidx),
        ConstBinopFMul {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(FMul, dst, lhs, cdst, cidx),
        ConstBinopFDiv {
            dst,
            lhs,
            cdst,
            cidx,
        } => cbin!(FDiv, dst, lhs, cdst, cidx),
        CmpBranchEq {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(Eq, dst, lhs, rhs, slot, tk, nt),
        CmpBranchNe {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(Ne, dst, lhs, rhs, slot, tk, nt),
        CmpBranchLt {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(Lt, dst, lhs, rhs, slot, tk, nt),
        CmpBranchLe {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(Le, dst, lhs, rhs, slot, tk, nt),
        CmpBranchGt {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(Gt, dst, lhs, rhs, slot, tk, nt),
        CmpBranchGe {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(Ge, dst, lhs, rhs, slot, tk, nt),
        CmpBranchFEq {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(FEq, dst, lhs, rhs, slot, tk, nt),
        CmpBranchFNe {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(FNe, dst, lhs, rhs, slot, tk, nt),
        CmpBranchFLt {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(FLt, dst, lhs, rhs, slot, tk, nt),
        CmpBranchFLe {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(FLe, dst, lhs, rhs, slot, tk, nt),
        CmpBranchFGt {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(FGt, dst, lhs, rhs, slot, tk, nt),
        CmpBranchFGe {
            dst,
            lhs,
            rhs,
            slot,
            tk,
            nt,
        } => cbr!(FGe, dst, lhs, rhs, slot, tk, nt),
        PairFAddFAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FAdd, FAdd, d1, l1, r1, d2, l2, r2),
        PairFAddFSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FAdd, FSub, d1, l1, r1, d2, l2, r2),
        PairFAddFMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FAdd, FMul, d1, l1, r1, d2, l2, r2),
        PairFAddFDiv {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FAdd, FDiv, d1, l1, r1, d2, l2, r2),
        PairFSubFAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FSub, FAdd, d1, l1, r1, d2, l2, r2),
        PairFSubFSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FSub, FSub, d1, l1, r1, d2, l2, r2),
        PairFSubFMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FSub, FMul, d1, l1, r1, d2, l2, r2),
        PairFSubFDiv {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FSub, FDiv, d1, l1, r1, d2, l2, r2),
        PairFMulFAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FMul, FAdd, d1, l1, r1, d2, l2, r2),
        PairFMulFSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FMul, FSub, d1, l1, r1, d2, l2, r2),
        PairFMulFMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FMul, FMul, d1, l1, r1, d2, l2, r2),
        PairFMulFDiv {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FMul, FDiv, d1, l1, r1, d2, l2, r2),
        PairFDivFAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FDiv, FAdd, d1, l1, r1, d2, l2, r2),
        PairFDivFSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FDiv, FSub, d1, l1, r1, d2, l2, r2),
        PairFDivFMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FDiv, FMul, d1, l1, r1, d2, l2, r2),
        PairFDivFDiv {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(FDiv, FDiv, d1, l1, r1, d2, l2, r2),
        PairAddAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Add, Add, d1, l1, r1, d2, l2, r2),
        PairAddSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Add, Sub, d1, l1, r1, d2, l2, r2),
        PairAddMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Add, Mul, d1, l1, r1, d2, l2, r2),
        PairSubAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Sub, Add, d1, l1, r1, d2, l2, r2),
        PairSubSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Sub, Sub, d1, l1, r1, d2, l2, r2),
        PairSubMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Sub, Mul, d1, l1, r1, d2, l2, r2),
        PairMulAdd {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Mul, Add, d1, l1, r1, d2, l2, r2),
        PairMulSub {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Mul, Sub, d1, l1, r1, d2, l2, r2),
        PairMulMul {
            d1,
            l1,
            r1,
            d2,
            l2,
            r2,
        } => pbb!(Mul, Mul, d1, l1, r1, d2, l2, r2),
        PairMovFAdd { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::FAdd as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairMovFSub { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::FSub as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairMovFMul { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::FMul as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairMovFDiv { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::FDiv as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairMovAdd { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::Add as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairMovSub { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::Sub as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairMovMul { d1, s1, d2, l2, r2 } => PairUB {
            ops: pack2(MOV_CODE, BinOp::Mul as u32),
            d1,
            s1,
            d2,
            l2,
            r2,
        },
        PairFAddMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::FAdd as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairFSubMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::FSub as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairFMulMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::FMul as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairFDivMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::FDiv as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairAddMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::Add as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairSubMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::Sub as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairMulMov { d1, l1, r1, d2, s2 } => PairBU {
            ops: pack2(BinOp::Mul as u32, MOV_CODE),
            d1,
            l1,
            r1,
            d2,
            s2,
        },
        PairMovMov { d1, s1, d2, s2 } => PairUU {
            ops: pack2(MOV_CODE, MOV_CODE),
            d1,
            s1,
            d2,
            s2,
        },
        other => other,
    }
}

/// Fuel components of one emitted op — the number of reference-backend
/// instructions it stands for. Fused ops (`ConstBinop*`, pairs,
/// `CmpBranch*`, `ImpliedCmpBranch`) cover two; `BlockHead`/`Resume` are
/// bookkeeping, not instructions; everything else is one.
pub(crate) fn components(op: &FlatOp) -> u32 {
    use FlatOp::*;
    match op {
        BlockHead { .. } | Resume { .. } => 0,
        ConstBinop { .. }
        | ConstBinopAdd { .. }
        | ConstBinopSub { .. }
        | ConstBinopMul { .. }
        | ConstBinopDiv { .. }
        | ConstBinopRem { .. }
        | ConstBinopAnd { .. }
        | ConstBinopOr { .. }
        | ConstBinopXor { .. }
        | ConstBinopShl { .. }
        | ConstBinopShr { .. }
        | ConstBinopFAdd { .. }
        | ConstBinopFSub { .. }
        | ConstBinopFMul { .. }
        | ConstBinopFDiv { .. }
        | PairBB { .. }
        | PairUB { .. }
        | PairBU { .. }
        | PairUU { .. }
        | PairBL { .. }
        | PairLB { .. }
        | PairLL { .. }
        | PairFAddFAdd { .. }
        | PairFAddFSub { .. }
        | PairFAddFMul { .. }
        | PairFAddFDiv { .. }
        | PairFSubFAdd { .. }
        | PairFSubFSub { .. }
        | PairFSubFMul { .. }
        | PairFSubFDiv { .. }
        | PairFMulFAdd { .. }
        | PairFMulFSub { .. }
        | PairFMulFMul { .. }
        | PairFMulFDiv { .. }
        | PairFDivFAdd { .. }
        | PairFDivFSub { .. }
        | PairFDivFMul { .. }
        | PairFDivFDiv { .. }
        | PairAddAdd { .. }
        | PairAddSub { .. }
        | PairAddMul { .. }
        | PairSubAdd { .. }
        | PairSubSub { .. }
        | PairSubMul { .. }
        | PairMulAdd { .. }
        | PairMulSub { .. }
        | PairMulMul { .. }
        | PairMovFAdd { .. }
        | PairMovFSub { .. }
        | PairMovFMul { .. }
        | PairMovFDiv { .. }
        | PairMovAdd { .. }
        | PairMovSub { .. }
        | PairMovMul { .. }
        | PairFAddMov { .. }
        | PairFSubMov { .. }
        | PairFMulMov { .. }
        | PairFDivMov { .. }
        | PairAddMov { .. }
        | PairSubMov { .. }
        | PairMulMov { .. }
        | PairMovMov { .. }
        | CmpBranch { .. }
        | CmpBranchEq { .. }
        | CmpBranchNe { .. }
        | CmpBranchLt { .. }
        | CmpBranchLe { .. }
        | CmpBranchGt { .. }
        | CmpBranchGe { .. }
        | CmpBranchFEq { .. }
        | CmpBranchFNe { .. }
        | CmpBranchFLt { .. }
        | CmpBranchFLe { .. }
        | CmpBranchFGt { .. }
        | CmpBranchFGe { .. }
        | ImpliedCmpBranch { .. } => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_op_stays_one_half_cache_line() {
        assert!(std::mem::size_of::<FlatOp>() <= 32);
    }

    #[test]
    fn op_code_tables_round_trip() {
        for (i, &op) in BINOPS.iter().enumerate() {
            assert_eq!(op as usize, i);
        }
        for (i, &op) in UNOPS.iter().enumerate() {
            assert_eq!(op as usize, i);
        }
    }

    #[test]
    fn specialized_pairs_generalize_to_packed_bb() {
        let p = specialize_pair_bb(BinOp::FMul, BinOp::FAdd, (1, 2, 3), (4, 5, 6));
        assert!(matches!(p, FlatOp::PairFMulFAdd { .. }));
        match generalize(p) {
            FlatOp::PairBB {
                ops,
                d1,
                l1,
                r1,
                d2,
                l2,
                r2,
            } => {
                assert_eq!(ops, pack2(BinOp::FMul as u32, BinOp::FAdd as u32));
                assert_eq!((d1, l1, r1, d2, l2, r2), (1, 2, 3, 4, 5, 6));
            }
            other => panic!("expected PairBB, got {other:?}"),
        }
        assert_eq!(components(&p), 2);
    }
}
