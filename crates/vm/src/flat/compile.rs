//! IR → flat-code compilation: trace-planned emission, intra-block fusion,
//! pair peepholing, implied-branch elimination, and fuel-cost assignment.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use trace_ir::{BinOp, Block, BranchId, Function, Instr, Program, Terminator, Value};

use super::ops::{
    components, pack2, specialize_binop, specialize_cmp_branch, specialize_const_binop,
    specialize_pair_b_mov, specialize_pair_bb, specialize_pair_mov_b, unop_half, EdgeHead, FlatOp,
    MOV_CODE, NONE,
};
use super::trace::{plan_traces, EdgeCond, Facts, Link, PlannedCopy, TraceConfig};
use super::{FlatFunc, FlatProgram, TableData};
use crate::counters::BranchCounts;
use crate::value::GuestValue;
use mfcheck::Cfg;

pub(super) struct Flattener<'p> {
    program: &'p Program,
    profile: Option<&'p BranchCounts>,
    /// Branch sites whose profile counts are not trusted (degraded by a
    /// version-skew remap): trace growth treats them as unprofiled.
    low_confidence: BTreeSet<BranchId>,
    tcfg: TraceConfig,
    code: Vec<FlatOp>,
    heads: Vec<EdgeHead>,
    consts: Vec<GuestValue>,
    const_map: HashMap<(u8, u64), u32>,
    args: Vec<u32>,
    tables: Vec<TableData>,
    funcs: Vec<FlatFunc>,
    branch_ids: Vec<BranchId>,
    branch_slots: HashMap<u32, u32>,
    /// Seeded defect `vm-trace-sidexit-counter-drift` fires on the first
    /// eligible side exit only.
    #[cfg(feature = "seeded-defects")]
    drift_done: bool,
}

impl<'p> Flattener<'p> {
    pub(super) fn new(
        program: &'p Program,
        profile: Option<&'p BranchCounts>,
        tcfg: TraceConfig,
    ) -> Self {
        Self::with_confidence(program, profile, &[], tcfg)
    }

    pub(super) fn with_confidence(
        program: &'p Program,
        profile: Option<&'p BranchCounts>,
        low_confidence: &[BranchId],
        tcfg: TraceConfig,
    ) -> Self {
        Flattener {
            program,
            profile,
            low_confidence: low_confidence.iter().copied().collect(),
            tcfg,
            code: Vec::new(),
            heads: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            args: Vec::new(),
            tables: Vec::new(),
            funcs: Vec::new(),
            branch_ids: Vec::new(),
            branch_slots: HashMap::new(),
            #[cfg(feature = "seeded-defects")]
            drift_done: false,
        }
    }

    pub(super) fn build(mut self) -> FlatProgram {
        let mut pixie_base = 0u32;
        for (fi, func) in self.program.functions.iter().enumerate() {
            self.flatten_function(fi, func, pixie_base);
            pixie_base += func.blocks.len() as u32;
        }
        let prealloc_regs = self
            .program
            .functions
            .iter()
            .map(|f| f.num_regs as usize)
            .sum::<usize>()
            .min(1 << 14);
        if std::env::var_os("MFVM_DEBUG_OPS").is_some() {
            let mut hist: HashMap<&'static str, usize> = HashMap::new();
            for op in &self.code {
                let name: &'static str = match op {
                    FlatOp::PairFMulFAdd { .. } => "PairFMulFAdd",
                    FlatOp::PairFMulFSub { .. } => "PairFMulFSub",
                    FlatOp::PairFMulFMul { .. } => "PairFMulFMul",
                    FlatOp::PairFAddFSub { .. } => "PairFAddFSub",
                    o if components(o) == 2
                        && matches!(super::ops::generalize(*o), FlatOp::PairBB { .. }) =>
                    {
                        "PairBB-other"
                    }
                    FlatOp::PairUB { .. } => "PairUB",
                    FlatOp::PairBU { .. } => "PairBU",
                    FlatOp::PairUU { .. } => "PairUU",
                    FlatOp::PairLL { .. } => "PairLL",
                    FlatOp::PairLB { .. } => "PairLB",
                    FlatOp::PairBL { .. } => "PairBL",
                    FlatOp::ImpliedBranch { .. } => "ImpliedBranch",
                    FlatOp::ImpliedCmpBranch { .. } => "ImpliedCmpBranch",
                    FlatOp::Unop { .. } => "Unop",
                    FlatOp::Mov { .. } => "Mov",
                    FlatOp::LoadConst { .. } => "LoadConst",
                    o if matches!(super::ops::generalize(*o), FlatOp::ConstBinop { .. }) => {
                        "ConstBinop*"
                    }
                    o if matches!(super::ops::generalize(*o), FlatOp::Binop { .. }) => "Binop*",
                    o if matches!(super::ops::generalize(*o), FlatOp::CmpBranch { .. }) => {
                        "CmpBranch*"
                    }
                    _ => "other",
                };
                *hist.entry(name).or_insert(0) += 1;
            }
            let mut rows: Vec<_> = hist.into_iter().collect();
            rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            eprintln!("MFVM op histogram ({} ops): {rows:?}", self.code.len());
        }
        FlatProgram {
            code: self.code,
            heads: self.heads,
            consts: self.consts,
            args: self.args,
            tables: self.tables,
            funcs: self.funcs,
            entry: self.program.entry.0,
            globals: self.program.globals.len(),
            const_arrays: self.program.const_arrays.iter().map(Arc::clone).collect(),
            block_shape: self
                .program
                .functions
                .iter()
                .map(|f| f.blocks.len())
                .collect(),
            branch_ids: self.branch_ids,
            prealloc_regs,
        }
    }

    /// Dense counter slot for a source-level branch id. Distinct lowered
    /// branches can share one [`BranchId`] (pass-duplicated code), so the
    /// mapping is memoized, not positional.
    fn branch_slot(&mut self, id: BranchId) -> u32 {
        if let Some(&slot) = self.branch_slots.get(&id.0) {
            return slot;
        }
        let slot = self.branch_ids.len() as u32;
        self.branch_ids.push(id);
        self.branch_slots.insert(id.0, slot);
        slot
    }

    fn intern(&mut self, value: Value) -> u32 {
        let key = match value {
            Value::Int(i) => (0u8, i as u64),
            Value::Float(f) => (1u8, f.to_bits()),
        };
        if let Some(&idx) = self.const_map.get(&key) {
            return idx;
        }
        let idx = self.consts.len() as u32;
        self.consts.push(match value {
            Value::Int(i) => GuestValue::Int(i),
            Value::Float(f) => GuestValue::Float(f),
        });
        self.const_map.insert(key, idx);
        idx
    }

    fn flatten_function(&mut self, fi: usize, func: &Function, pixie_base: u32) {
        let cfg = Cfg::new(func);
        let traces = plan_traces(func, self.profile, self.tcfg, &self.low_confidence);

        // Assign an edge-head index to every planned copy up front so
        // terminators can name forward targets without a patch pass, and
        // count emitted copies per block for the fact-flow tests below.
        let head_base = self.heads.len() as u32;
        let mut canonical_eh = vec![u32::MAX; func.blocks.len()];
        let mut copies_per_block = vec![0u32; func.blocks.len()];
        let mut idx = 0u32;
        for t in &traces {
            for c in &t.copies {
                if !c.dup {
                    canonical_eh[c.block] = head_base + idx;
                }
                copies_per_block[c.block] += 1;
                self.heads.push(EdgeHead {
                    body: 0,
                    slot: pixie_base + c.block as u32,
                    func: fi as u32,
                    block: c.block as u32,
                    cost: 0,
                });
                idx += 1;
            }
        }
        debug_assert!(canonical_eh.iter().all(|&e| e != u32::MAX));

        let mut entry_pc = 0u32;
        let mut idx = 0u32;
        for t in &traces {
            let mut facts = Facts::new();
            for (pos, c) in t.copies.iter().enumerate() {
                let eh = head_base + idx;
                idx += 1;
                let chain = t.copies.get(pos + 1).map(|n| (n, eh + 1));
                let is_entry_copy = !c.dup && c.block == 0;
                if is_entry_copy {
                    entry_pc = self.code.len() as u32;
                }
                let edge_cond = self.emit_copy(fi, func, c, eh, chain, &canonical_eh, &mut facts);

                // Decide what the next copy may assume. Accumulated facts
                // survive only when this copy's exit is provably the sole
                // entrance of the next copy; the branch-edge constraint
                // additionally needs an unambiguous arm direction.
                if let Some((next, _)) = chain {
                    let link = c.link.expect("chained copies carry a link");
                    let (accum_ok, edge_ok) = if next.dup {
                        // A duplicate is reachable only through this link arm.
                        (true, matches!(link, Link::Branch(_)))
                    } else {
                        let preds = cfg.preds(trace_ir::BlockId(next.block as u32));
                        let sole_pred = !preds.is_empty()
                            && preds.iter().all(|p| p.index() == c.block)
                            && next.block != 0;
                        let arms_distinct = match &func.blocks[c.block].term {
                            Terminator::Branch {
                                taken, not_taken, ..
                            } => taken != not_taken,
                            _ => false,
                        };
                        (
                            sole_pred && copies_per_block[c.block] == 1,
                            sole_pred && arms_distinct && matches!(link, Link::Branch(_)),
                        )
                    };
                    if !accum_ok {
                        facts = Facts::new();
                    }
                    match (link, edge_cond) {
                        (Link::Branch(dir), Some(cond)) if edge_ok => {
                            facts.apply_edge(cond, dir);
                        }
                        // Even without an edge constraint, a fused compare
                        // terminator wrote its destination register, so
                        // surviving facts about it are stale.
                        (_, Some(EdgeCond::Cmp { dst, .. })) if accum_ok => {
                            facts.kill(dst);
                        }
                        _ => {}
                    }
                }
            }
        }

        self.funcs.push(FlatFunc {
            entry_pc,
            num_regs: func.num_regs,
            num_params: func.num_params,
            name: func.name.clone(),
        });
    }

    /// Emits one planned copy of a block: straight-line ops (with the two
    /// intra-block fusion patterns and pair peepholing), then the
    /// terminator (implied-branch elimination, seeded defects, edge-head
    /// arm resolution), then assigns bulk fuel costs to the copy's
    /// segments. Returns the terminator's edge condition, if conditional.
    #[allow(clippy::too_many_arguments)]
    fn emit_copy(
        &mut self,
        fi: usize,
        func: &Function,
        copy: &PlannedCopy,
        eh: u32,
        chain: Option<(&PlannedCopy, u32)>,
        canonical_eh: &[u32],
        facts: &mut Facts,
    ) -> Option<EdgeCond> {
        let bi = copy.block;
        let block: &Block = &func.blocks[bi];
        let instrs = &block.instrs;
        let is_entry_copy = !copy.dup && bi == 0;
        let track_facts = self.tcfg.enabled;

        let mut buf: Vec<FlatOp> = Vec::with_capacity(instrs.len() + 2);
        if is_entry_copy {
            buf.push(FlatOp::BlockHead {
                slot: self.heads[eh as usize].slot,
                func: fi as u32,
                block: bi as u32,
                cost: 0,
            });
        }

        // Fusion pattern A: a comparison Binop whose result feeds the
        // block's own conditional branch is folded into the terminator.
        let fused_last = match (&block.term, instrs.last()) {
            (Terminator::Branch { cond, .. }, Some(Instr::Binop { dst, op, .. }))
                if op.is_comparison() && dst == cond =>
            {
                Some(instrs.len() - 1)
            }
            _ => None,
        };

        let mut i = 0;
        while i < instrs.len() {
            if Some(i) == fused_last {
                i += 1;
                continue;
            }
            if track_facts {
                facts.step(&instrs[i]);
            }
            match &instrs[i] {
                Instr::Const { dst, value } => {
                    let cidx = self.intern(*value);
                    // Fusion pattern B: a Const consumed as the right-hand
                    // side of the next Binop (unless that Binop is already
                    // reserved by pattern A).
                    if let Some(Instr::Binop {
                        dst: bdst,
                        op,
                        lhs,
                        rhs,
                    }) = instrs.get(i + 1)
                    {
                        if Some(i + 1) != fused_last && rhs == dst {
                            if track_facts {
                                facts.step(&instrs[i + 1]);
                            }
                            buf.push(specialize_const_binop(*op, bdst.0, lhs.0, dst.0, cidx));
                            i += 2;
                            continue;
                        }
                    }
                    buf.push(FlatOp::LoadConst { dst: dst.0, cidx });
                }
                Instr::Mov { dst, src } => buf.push(FlatOp::Mov {
                    dst: dst.0,
                    src: src.0,
                }),
                Instr::Unop { dst, op, src } => buf.push(FlatOp::Unop {
                    op: *op,
                    dst: dst.0,
                    src: src.0,
                }),
                Instr::Binop { dst, op, lhs, rhs } => {
                    buf.push(specialize_binop(*op, dst.0, lhs.0, rhs.0))
                }
                Instr::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => buf.push(FlatOp::Select {
                    dst: dst.0,
                    cond: cond.0,
                    if_true: if_true.0,
                    if_false: if_false.0,
                }),
                Instr::Load { dst, arr, index } => buf.push(FlatOp::Load {
                    dst: dst.0,
                    arr: arr.0,
                    index: index.0,
                }),
                Instr::Store { arr, index, src } => buf.push(FlatOp::Store {
                    arr: arr.0,
                    index: index.0,
                    src: src.0,
                }),
                Instr::NewIntArray { dst, len } => buf.push(FlatOp::NewIntArray {
                    dst: dst.0,
                    len: len.0,
                }),
                Instr::NewFloatArray { dst, len } => buf.push(FlatOp::NewFloatArray {
                    dst: dst.0,
                    len: len.0,
                }),
                Instr::ArrayLen { dst, arr } => buf.push(FlatOp::ArrayLen {
                    dst: dst.0,
                    arr: arr.0,
                }),
                Instr::ConstArray { dst, index } => buf.push(FlatOp::ConstArrayRef {
                    dst: dst.0,
                    index: *index,
                }),
                Instr::GlobalGet { dst, global } => buf.push(FlatOp::GlobalGet {
                    dst: dst.0,
                    global: global.0,
                }),
                Instr::GlobalSet { global, src } => buf.push(FlatOp::GlobalSet {
                    global: global.0,
                    src: src.0,
                }),
                Instr::FuncAddr { dst, func } => buf.push(FlatOp::FuncAddr {
                    dst: dst.0,
                    func: func.0,
                }),
                Instr::Emit { src } => buf.push(FlatOp::Emit { src: src.0 }),
                Instr::Call { dst, func, args } => {
                    let at = self.args.len() as u32;
                    self.args.extend(args.iter().map(|r| r.0));
                    buf.push(FlatOp::Call {
                        func: func.0,
                        args: at,
                        nargs: args.len() as u32,
                        ret: dst.map_or(NONE, |r| r.0),
                    });
                    buf.push(FlatOp::Resume { cost: 0 });
                }
                Instr::CallIndirect { dst, target, args } => {
                    let at = self.args.len() as u32;
                    self.args.extend(args.iter().map(|r| r.0));
                    buf.push(FlatOp::CallIndirect {
                        target: target.0,
                        args: at,
                        nargs: args.len() as u32,
                        ret: dst.map_or(NONE, |r| r.0),
                    });
                    buf.push(FlatOp::Resume { cost: 0 });
                }
            }
            i += 1;
        }

        // Resolves a terminator arm to an edge head: the arm chaining to a
        // tail duplicate lands on the duplicate's private head, every other
        // reference lands on the target block's canonical copy.
        let resolve = |arm_block: usize, arm_is_link: bool| -> u32 {
            match chain {
                Some((n, neh)) if n.dup && arm_is_link => neh,
                _ => canonical_eh[arm_block],
            }
        };

        let mut edge_cond = None;
        match &block.term {
            Terminator::Jump(t) => {
                buf.push(FlatOp::JumpHead {
                    eh: resolve(t.index(), matches!(copy.link, Some(Link::Jump))),
                });
            }
            Terminator::Branch {
                cond,
                id,
                taken,
                not_taken,
            } => {
                #[allow(unused_mut)]
                let mut slot = self.branch_slot(*id);
                // Seeded defect: the first conditional side exit emitted
                // into a tail-duplicated copy tallies into the previous
                // branch slot. Control flow is untouched — only the
                // flat-vs-reference branch-count differential can see it.
                #[cfg(feature = "seeded-defects")]
                if copy.dup
                    && !self.drift_done
                    && slot > 0
                    && mfdefect::active("vm-trace-sidexit-counter-drift")
                {
                    slot -= 1;
                    self.drift_done = true;
                }
                if let Some(fl) = fused_last {
                    let Instr::Binop { dst, op, lhs, rhs } = &instrs[fl] else {
                        unreachable!("pattern A reserves only comparison Binops");
                    };
                    edge_cond = Some(EdgeCond::Cmp {
                        op: *op,
                        dst: dst.0,
                        lhs: lhs.0,
                        rhs: rhs.0,
                    });
                    let implied = if track_facts {
                        facts.query_cmp(*op, lhs.0, rhs.0)
                    } else {
                        None
                    };
                    if let Some(val) = implied {
                        let arm = if val { taken } else { not_taken };
                        let arm_is_link = copy.link == Some(Link::Branch(val));
                        buf.push(FlatOp::ImpliedCmpBranch {
                            dst: dst.0,
                            val: val as u32,
                            slot,
                            eh: resolve(arm.index(), arm_is_link),
                        });
                    } else {
                        #[allow(unused_mut)]
                        let (mut tk, mut nt) = (
                            resolve(taken.index(), copy.link == Some(Link::Branch(true))),
                            resolve(not_taken.index(), copy.link == Some(Link::Branch(false))),
                        );
                        // Seeded defect: swap the fused branch's control
                        // targets. Recording still follows the comparison
                        // result, so only the flat-vs-reference differential
                        // sees the divergence.
                        #[cfg(feature = "seeded-defects")]
                        if mfdefect::active("vm-flat-fuse-swapped-arms") {
                            std::mem::swap(&mut tk, &mut nt);
                        }
                        buf.push(specialize_cmp_branch(
                            *op,
                            (dst.0, lhs.0, rhs.0),
                            (slot, tk, nt),
                        ));
                    }
                } else {
                    edge_cond = Some(EdgeCond::Truthy { cond: cond.0 });
                    let implied = if track_facts {
                        facts.query_truthy(cond.0)
                    } else {
                        None
                    };
                    if let Some(val) = implied {
                        let arm = if val { taken } else { not_taken };
                        buf.push(FlatOp::ImpliedBranch {
                            slot,
                            taken: val as u32,
                            eh: resolve(arm.index(), copy.link == Some(Link::Branch(val))),
                        });
                    } else {
                        buf.push(FlatOp::Branch {
                            cond: cond.0,
                            slot,
                            tk: resolve(taken.index(), copy.link == Some(Link::Branch(true))),
                            nt: resolve(not_taken.index(), copy.link == Some(Link::Branch(false))),
                        });
                    }
                }
            }
            Terminator::JumpTable {
                index,
                targets,
                default,
            } => {
                let ti = self.tables.len() as u32;
                self.tables.push(TableData {
                    targets: targets.iter().map(|t| canonical_eh[t.index()]).collect(),
                    default: resolve(default.index(), matches!(copy.link, Some(Link::Table))),
                });
                buf.push(FlatOp::JumpTable {
                    index: index.0,
                    table: ti,
                });
            }
            Terminator::Return { value } => buf.push(FlatOp::Return {
                src: value.map_or(NONE, |r| r.0),
            }),
        }

        let buf = peephole_pairs(buf);

        // Append to the code stream and assign bulk fuel: the copy's first
        // segment charges at its edge head (and the entry `BlockHead`),
        // each later segment at the `Resume` op that opens it. Segment
        // boundaries fall after every call, exactly as the reference
        // backend's per-instruction accounting implies.
        let start = self.code.len();
        self.heads[eh as usize].body = (start + usize::from(is_entry_copy)) as u32;
        self.code.extend(buf);
        let mut sink: Option<usize> = None; // None = head, Some(pc) = Resume
        let mut acc = 0u32;
        let mut total = 0u32;
        for j in start..self.code.len() {
            if matches!(self.code[j], FlatOp::Resume { .. }) {
                self.assign_cost(eh, start, sink, acc, is_entry_copy);
                sink = Some(j);
                acc = 0;
            } else {
                let c = components(&self.code[j]);
                acc += c;
                total += c;
            }
        }
        self.assign_cost(eh, start, sink, acc, is_entry_copy);
        debug_assert_eq!(
            total as usize,
            instrs.len() + 1,
            "copy of block {bi} must cover its component count"
        );

        edge_cond
    }

    fn assign_cost(&mut self, eh: u32, start: usize, sink: Option<usize>, cost: u32, entry: bool) {
        match sink {
            None => {
                self.heads[eh as usize].cost = cost;
                if entry {
                    let FlatOp::BlockHead { cost: c, .. } = &mut self.code[start] else {
                        unreachable!("entry copy starts with its BlockHead");
                    };
                    *c = cost;
                }
            }
            Some(pc) => {
                let FlatOp::Resume { cost: c } = &mut self.code[pc] else {
                    unreachable!("segment sink is a Resume op");
                };
                *c = cost;
            }
        }
    }
}

/// Extracts `(op, dst, lhs, rhs)` from any single-component binop form.
fn as_binop(op: &FlatOp) -> Option<(BinOp, u32, u32, u32)> {
    match super::ops::generalize(*op) {
        FlatOp::Binop { op, dst, lhs, rhs } => Some((op, dst, lhs, rhs)),
        _ => None,
    }
}

/// Merges adjacent one-component ALU/load ops into paired superinstructions
/// (one dispatch for two reference instructions). Pairing never crosses a
/// call, branch, or fused op — those are not pairable — so segment shapes
/// and trap order are unchanged: a pair executes its first half to
/// completion before starting the second.
fn peephole_pairs(buf: Vec<FlatOp>) -> Vec<FlatOp> {
    let mut out = Vec::with_capacity(buf.len());
    let mut i = 0;
    while i < buf.len() {
        if i + 1 < buf.len() {
            if let Some(p) = try_pair(&buf[i], &buf[i + 1]) {
                out.push(p);
                i += 2;
                continue;
            }
        }
        out.push(buf[i]);
        i += 1;
    }
    out
}

fn try_pair(a: &FlatOp, b: &FlatOp) -> Option<FlatOp> {
    use FlatOp::Load;
    // Unary halves first: a `Unop`, `Mov`, or `LoadConst` in either slot
    // pairs with any other unary half or any plain `Binop`.
    match (unop_half(a), unop_half(b)) {
        (Some((o1, d1, s1)), Some((o2, d2, s2))) => {
            if o1 == MOV_CODE && o2 == MOV_CODE {
                return Some(FlatOp::PairMovMov { d1, s1, d2, s2 });
            }
            return Some(FlatOp::PairUU {
                ops: pack2(o1, o2),
                d1,
                s1,
                d2,
                s2,
            });
        }
        (Some((o1, d1, s1)), None) => {
            if let Some((o2, d2, l2, r2)) = as_binop(b) {
                if o1 == MOV_CODE {
                    return Some(specialize_pair_mov_b(o2, (d1, s1), (d2, l2, r2)));
                }
                return Some(FlatOp::PairUB {
                    ops: pack2(o1, o2 as u32),
                    d1,
                    s1,
                    d2,
                    l2,
                    r2,
                });
            }
        }
        (None, Some((o2, d2, s2))) => {
            if let Some((o1, d1, l1, r1)) = as_binop(a) {
                if o2 == MOV_CODE {
                    return Some(specialize_pair_b_mov(o1, (d1, l1, r1), (d2, s2)));
                }
                return Some(FlatOp::PairBU {
                    ops: pack2(o1 as u32, o2),
                    d1,
                    l1,
                    r1,
                    d2,
                    s2,
                });
            }
        }
        (None, None) => {}
    }
    match (a, b) {
        (
            &Load {
                dst: ld1,
                arr: arr1,
                index: idx1,
            },
            &Load {
                dst: ld2,
                arr: arr2,
                index: idx2,
            },
        ) => Some(FlatOp::PairLL {
            ld1,
            arr1,
            idx1,
            ld2,
            arr2,
            idx2,
        }),
        (
            &Load {
                dst: ld,
                arr,
                index,
            },
            second,
        ) => {
            let (o2, d2, l2, r2) = as_binop(second)?;
            Some(FlatOp::PairLB {
                ops: pack2(0, o2 as u32),
                ld,
                arr,
                idx: index,
                d2,
                l2,
                r2,
            })
        }
        (
            first,
            &Load {
                dst: ld,
                arr,
                index,
            },
        ) => {
            let (o1, d1, l1, r1) = as_binop(first)?;
            Some(FlatOp::PairBL {
                ops: pack2(o1 as u32, 0),
                d1,
                l1,
                r1,
                ld,
                arr,
                idx: index,
            })
        }
        (first, second) => {
            let (o1, d1, l1, r1) = as_binop(first)?;
            let (o2, d2, l2, r2) = as_binop(second)?;
            Some(specialize_pair_bb(o1, o2, (d1, l1, r1), (d2, l2, r2)))
        }
    }
}
